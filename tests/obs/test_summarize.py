"""Tests for trace aggregation and the ``python -m repro.obs`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceSchemaError
from repro.obs import records
from repro.obs.__main__ import main as obs_main
from repro.obs.clock import TickClock
from repro.obs.records import TraceEvent
from repro.obs.summarize import (
    read_trace,
    render_summary,
    summarize,
    summary_to_json,
)
from repro.obs.tracer import JsonlSink, Tracer


def consistent_stream():
    """A hand-built trace whose sweep.end deltas match its event counts."""
    tracer = Tracer(clock=TickClock())
    tracer.emit(records.SWEEP_BEGIN, jobs=3, policy="retry")
    tracer.emit(records.CACHE_HIT, key="aa")
    tracer.emit(records.CACHE_MISS, key="bb")
    tracer.emit(records.CACHE_MISS, key="cc")
    tracer.emit(records.DISPATCH, job="slow", index=1, attempt=0)
    tracer.emit(records.DISPATCH, job="fast", index=2, attempt=0)
    tracer.emit(records.HARVEST, job="fast", index=2, attempt=0, ok=True)
    tracer.emit(records.RETRY, job="slow", index=1, attempt=0, delay_s=0.5,
                error="InjectedTransientError")
    tracer.emit(records.DISPATCH, job="slow", index=1, attempt=1)
    tracer.emit(records.HARVEST, job="slow", index=1, attempt=1, ok=True)
    tracer.emit(records.CACHE_STORE, key="bb")
    tracer.emit(records.CACHE_STORE, key="cc")
    tracer.emit(records.SWEEP_END, jobs=3, hits=1, misses=2, stores=2,
                failures=0, retries=1)
    return tracer.events


class TestSummarize:
    def test_counts_every_kind(self):
        summary = summarize(consistent_stream())
        assert summary.events == 13
        assert summary.sweeps == 1
        assert summary.jobs == 3
        assert summary.cache_hits == 1
        assert summary.cache_misses == 2
        assert summary.cache_stores == 2
        assert summary.dispatches == 3
        assert summary.harvests == 2
        assert summary.retries == 1
        assert summary.failures == 0
        assert summary.cache_lookups == 3
        assert summary.hit_rate == pytest.approx(1 / 3)

    def test_per_job_wall_time_from_clock(self):
        summary = summarize(consistent_stream())
        slow = summary.timings["slow"]
        fast = summary.timings["fast"]
        # TickClock stamps seq order: slow spans dispatch@4 .. harvest@9.
        assert slow.wall_time == pytest.approx(9.0 - 4.0)
        assert slow.dispatches == 2 and slow.harvests == 1
        assert fast.wall_time == pytest.approx(6.0 - 5.0)

    def test_slowest_orders_by_wall_time_then_job(self):
        summary = summarize(consistent_stream())
        assert [t.job for t in summary.slowest(5)] == ["slow", "fast"]
        assert [t.job for t in summary.slowest(1)] == ["slow"]

    def test_no_clock_means_no_wall_times(self):
        events = [TraceEvent.make(0, records.DISPATCH, job="x", index=0,
                                  attempt=0),
                  TraceEvent.make(1, records.HARVEST, job="x", index=0,
                                  attempt=0, ok=True)]
        summary = summarize(events)
        assert summary.timings["x"].wall_time is None
        assert summary.slowest() == []

    @pytest.mark.parametrize("field,delta", [("hits", 1), ("misses", -1),
                                             ("retries", 1)])
    def test_cross_check_rejects_inconsistent_traces(self, field, delta):
        events = list(consistent_stream())
        end = events[-1].fields_dict()
        end[field] += delta
        events[-1] = TraceEvent.make(events[-1].seq, records.SWEEP_END,
                                     t=events[-1].t, **end)
        with pytest.raises(TraceSchemaError, match="inconsistent"):
            summarize(events)

    def test_cross_check_skipped_without_sweep_end(self):
        # A trace cut before sweep.end (e.g. a crashed run) still
        # summarizes -- there is no reported total to disagree with.
        summary = summarize(list(consistent_stream())[:-1])
        assert summary.cache_hits == 1

    def test_summary_to_json_round_trips(self):
        record = summary_to_json(summarize(consistent_stream()), slowest=2)
        assert record == json.loads(json.dumps(record))
        assert record["cache"]["hits"] == 1
        assert [s["job"] for s in record["slowest"]] == ["slow", "fast"]

    def test_render_summary_mentions_the_essentials(self):
        text = render_summary(summarize(consistent_stream()))
        assert "cache hit rate    33.3%" in text
        assert "retries           1" in text
        assert "slowest cells:" in text and "slow" in text

    def test_render_summary_empty_trace(self):
        assert "cache hit rate    n/a" in render_summary(summarize([]))


class TestReadTrace:
    def write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_reads_a_tracer_written_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=(JsonlSink(path),))
        tracer.emit(records.SWEEP_BEGIN, jobs=1, policy="raise")
        tracer.emit(records.SWEEP_END, jobs=1, hits=0, misses=0, stores=0,
                    failures=0, retries=0)
        tracer.close()
        events = read_trace(path)
        assert [e.kind for e in events] == ["sweep.begin", "sweep.end"]
        assert events == list(tracer.events)

    def test_blank_lines_are_skipped(self, tmp_path):
        line = TraceEvent.make(0, records.CACHE_HIT, key="k").to_jsonl()
        path = self.write(tmp_path, [line, "", line.replace('"seq":0',
                                                           '"seq":1')])
        assert len(read_trace(path)) == 2

    def test_invalid_json_reports_line_number(self, tmp_path):
        good = TraceEvent.make(0, records.CACHE_HIT, key="k").to_jsonl()
        path = self.write(tmp_path, [good, "{not json"])
        with pytest.raises(TraceSchemaError, match=r"trace\.jsonl:2:"):
            read_trace(path)

    def test_schema_violation_reports_line_number(self, tmp_path):
        path = self.write(tmp_path, ['{"schema":1,"seq":0,"kind":"nope"}'])
        with pytest.raises(TraceSchemaError, match=r"trace\.jsonl:1:"):
            read_trace(path)


class TestCli:
    def write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=TickClock(), sinks=(JsonlSink(path),))
        for event in consistent_stream():
            tracer.emit(event.kind, **event.fields_dict())
        tracer.close()
        return path

    def test_summarize_text_exits_zero(self, tmp_path, capsys):
        assert obs_main(["summarize", str(self.write_trace(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "events            13" in out
        assert "cache hit rate    33.3%" in out

    def test_summarize_json_exits_zero(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        assert obs_main(["summarize", str(path), "--json",
                         "--slowest", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cache"]["hits"] == 1
        assert len(record["slowest"]) == 1

    def test_schema_error_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":1,"seq":0,"kind":"nope"}\n')
        assert obs_main(["summarize", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
