"""Tests for counters, gauges, histograms and the metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SCHEMA_VERSION,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        counter.inc(0)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(1.5)
        gauge.set(0.25)
        assert gauge.value == 0.25


class TestHistogram:
    def test_bounds_are_inclusive_upper_edges(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(1.0)    # first bucket (<= 1.0)
        hist.observe(1.001)  # second bucket
        hist.observe(10.0)   # second bucket (<= 10.0)
        hist.observe(10.5)   # overflow
        assert hist.to_json()["buckets"] == [1, 2, 1]

    def test_tracks_count_sum_min_max_mean(self):
        hist = Histogram("h", bounds=(1.0,))
        for value in (0.5, 2.0, 3.5):
            hist.observe(value)
        record = hist.to_json()
        assert hist.count == 3
        assert record["sum"] == pytest.approx(6.0)
        assert record["min"] == 0.5
        assert record["max"] == 3.5
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram(self):
        hist = Histogram("h", bounds=(1.0,))
        assert hist.count == 0
        assert hist.mean == 0.0

    @pytest.mark.parametrize("bounds", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_rejects_bad_bounds(self, bounds):
        with pytest.raises(ConfigurationError, match="bounds"):
            Histogram("h", bounds=bounds)

    def test_default_bounds_are_valid(self):
        Histogram("h", bounds=DEFAULT_BOUNDS)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_type_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="Counter"):
            registry.gauge("x")
        with pytest.raises(ConfigurationError, match="Counter"):
            registry.histogram("x")

    def test_rejects_empty_names(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")

    def test_len_contains_value(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("rate").set(0.5)
        assert len(registry) == 2
        assert "hits" in registry and "nope" not in registry
        assert registry.value("hits") == 3
        assert registry.value("rate") == 0.5

    def test_to_json_groups_and_sorts(self):
        registry = MetricsRegistry()
        registry.gauge("z.gauge").set(1.0)
        registry.counter("b.counter").inc(2)
        registry.counter("a.counter").inc(1)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        record = registry.to_json()
        assert record["schema"] == SCHEMA_VERSION
        assert list(record["counters"]) == ["a.counter", "b.counter"]
        assert record["gauges"] == {"z.gauge": 1.0}
        assert record["histograms"]["h"]["count"] == 1

    def test_export_is_byte_identical_for_identical_values(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("hits").inc(7)
            registry.gauge("rate").set(0.875)
            registry.histogram("lat", bounds=(1.0, 10.0)).observe(2.0)
            return registry.to_json_text()

        assert build() == build()

    def test_to_json_text_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        text = registry.to_json_text()
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  indent=2) + "\n"

    def test_write_json_creates_parents(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        path = registry.write_json(tmp_path / "deep" / "metrics.json")
        assert json.loads(path.read_text())["counters"] == {"hits": 1}

    def test_describe(self):
        registry = MetricsRegistry()
        assert registry.describe() == "metrics: empty"
        registry.counter("hits").inc(2)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        assert registry.describe() == "metrics: hits=2, lat[n=1]"
