"""Schema tests for :mod:`repro.obs.records`."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import TraceSchemaError
from repro.obs import records
from repro.obs.records import KINDS, SCHEMA_VERSION, TraceEvent, validate_event


class TestTraceEvent:
    def test_make_sorts_payload_fields(self):
        event = TraceEvent.make(0, records.CACHE_HIT, zebra=1, alpha=2)
        assert event.fields == (("alpha", 2), ("zebra", 1))

    def test_to_json_is_flat_with_envelope(self):
        event = TraceEvent.make(3, records.RETRY, t=1.5, job="Auth-G",
                                attempt=1)
        record = event.to_json()
        assert record == {"schema": SCHEMA_VERSION, "seq": 3,
                          "kind": "retry.backoff", "t": 1.5,
                          "job": "Auth-G", "attempt": 1}

    def test_to_jsonl_is_canonical(self):
        event = TraceEvent.make(0, records.SWEEP_BEGIN, jobs=4,
                                policy="raise")
        line = event.to_jsonl()
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))
        assert "\n" not in line

    def test_from_json_round_trip(self):
        original = TraceEvent.make(7, records.DISPATCH, t=2.0,
                                   job="x", index=3, attempt=0)
        assert TraceEvent.from_json(json.loads(original.to_jsonl())) == \
            original

    def test_events_pickle(self):
        event = TraceEvent.make(1, records.HARVEST, job="x", ok=True)
        assert pickle.loads(pickle.dumps(event)) == event

    def test_events_are_frozen_and_hashable(self):
        event = TraceEvent.make(0, records.CACHE_MISS, key="abc")
        with pytest.raises(Exception):
            event.seq = 5
        assert event in {event}

    def test_t_defaults_to_none(self):
        assert TraceEvent.make(0, records.SWEEP_END).t is None


class TestValidateEvent:
    def good(self, **overrides):
        record = {"schema": SCHEMA_VERSION, "seq": 0,
                  "kind": records.CACHE_HIT, "t": None, "key": "ab12"}
        record.update(overrides)
        return record

    def test_good_record_passes(self):
        validate_event(self.good())

    def test_rejects_non_mapping(self):
        with pytest.raises(TraceSchemaError, match="JSON object"):
            validate_event(["schema", 1])

    @pytest.mark.parametrize("missing", ["schema", "seq", "kind"])
    def test_rejects_missing_envelope_key(self, missing):
        record = self.good()
        del record[missing]
        with pytest.raises(TraceSchemaError, match=missing):
            validate_event(record)

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(TraceSchemaError, match="schema"):
            validate_event(self.good(schema=99))

    @pytest.mark.parametrize("seq", [-1, 1.5, "3", True])
    def test_rejects_bad_seq(self, seq):
        with pytest.raises(TraceSchemaError, match="seq"):
            validate_event(self.good(seq=seq))

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceSchemaError, match="unknown trace event"):
            validate_event(self.good(kind="cache.warmed"))

    def test_rejects_non_numeric_t(self):
        with pytest.raises(TraceSchemaError, match="t must be"):
            validate_event(self.good(t="noon"))

    def test_rejects_non_scalar_payload(self):
        with pytest.raises(TraceSchemaError, match="JSON scalar"):
            validate_event(self.good(extra=[1, 2]))

    def test_make_rejects_non_scalar_payload_at_emission(self):
        with pytest.raises(TraceSchemaError):
            TraceEvent.make(0, records.CACHE_HIT, payload={"nested": 1})

    def test_make_rejects_unknown_kind_at_emission(self):
        with pytest.raises(TraceSchemaError):
            TraceEvent.make(0, "bogus.kind")


def test_vocabulary_is_closed_and_dotted():
    assert len(KINDS) == 27
    for kind in KINDS:
        assert "." in kind
        assert kind == kind.lower()
