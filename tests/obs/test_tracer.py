"""Tests for :class:`Tracer`, its sinks, and the injectable clocks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import records
from repro.obs.clock import FrozenClock, TickClock
from repro.obs.tracer import (
    DEFAULT_MEMORY_LIMIT,
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_seq_increases_by_one_per_event(self):
        tracer = Tracer()
        for expected in range(5):
            event = tracer.emit(records.CACHE_MISS, key="k")
            assert event.seq == expected
        assert tracer.events_emitted == 5

    def test_counts_by_kind_sorted(self):
        tracer = Tracer()
        tracer.emit(records.CACHE_MISS, key="k")
        tracer.emit(records.CACHE_HIT, key="k")
        tracer.emit(records.CACHE_HIT, key="k")
        assert tracer.counts == {"cache.hit": 2, "cache.miss": 1}
        assert list(tracer.counts) == sorted(tracer.counts)

    def test_no_clock_means_null_timestamps(self):
        tracer = Tracer()
        assert tracer.emit(records.SWEEP_BEGIN, jobs=1, policy="raise").t \
            is None

    def test_injected_clock_stamps_every_event(self):
        tracer = Tracer(clock=TickClock(start=10.0, step=0.5))
        assert tracer.emit(records.SWEEP_BEGIN, jobs=0, policy="raise").t \
            == 10.0
        assert tracer.emit(records.SWEEP_END, jobs=0).t == 10.5

    def test_two_tracers_same_actions_same_records_modulo_t(self):
        def drive(tracer):
            tracer.emit(records.SWEEP_BEGIN, jobs=2, policy="raise")
            tracer.emit(records.CACHE_MISS, key="aa")
            tracer.emit(records.SWEEP_END, jobs=2)
            return [e for e in tracer.events]

        a = drive(Tracer())
        b = drive(Tracer(clock=TickClock()))
        assert [(e.seq, e.kind, e.fields) for e in a] == \
            [(e.seq, e.kind, e.fields) for e in b]
        assert [e.t for e in a] != [e.t for e in b]

    def test_memory_window_is_bounded(self):
        tracer = Tracer(memory_limit=3)
        for _ in range(10):
            tracer.emit(records.CACHE_HIT, key="k")
        assert len(tracer.events) == 3
        assert [e.seq for e in tracer.events] == [7, 8, 9]
        assert tracer.counts == {"cache.hit": 10}

    def test_default_memory_limit(self):
        assert DEFAULT_MEMORY_LIMIT == 65536

    def test_describe(self):
        tracer = Tracer()
        assert tracer.describe() == "obs: no events"
        tracer.emit(records.CACHE_HIT, key="k")
        tracer.emit(records.CACHE_HIT, key="k")
        tracer.emit(records.CACHE_MISS, key="k")
        assert tracer.describe() == \
            "obs: 3 events (cache.hit=2, cache.miss=1)"

    def test_enabled_flag(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False


class TestSinks:
    def test_events_fan_out_to_every_sink(self):
        extra = MemorySink()
        tracer = Tracer(sinks=(extra,))
        event = tracer.emit(records.CACHE_STORE, key="k")
        assert extra.events == (event,)
        assert tracer.events == (event,)

    def test_memory_sink_rejects_zero_limit(self):
        with pytest.raises(ConfigurationError):
            MemorySink(limit=0)

    def test_jsonl_sink_writes_canonical_lines(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        tracer = Tracer(sinks=(JsonlSink(path),))
        tracer.emit(records.SWEEP_BEGIN, jobs=1, policy="raise")
        tracer.emit(records.SWEEP_END, jobs=1)
        tracer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))

    def test_jsonl_sink_rejects_writes_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError, match="closed"):
            Tracer(sinks=(sink,)).emit(records.CACHE_HIT, key="k")

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(sinks=(JsonlSink(tmp_path / "t.jsonl"),))
        tracer.close()
        tracer.close()


class TestNullTracer:
    def test_emit_is_a_no_op(self):
        tracer = NullTracer()
        assert tracer.emit(records.CACHE_HIT, key="k") is None
        assert tracer.events == ()
        assert tracer.events_emitted == 0
        assert tracer.counts == {}

    def test_describe(self):
        assert NullTracer().describe() == "obs: disabled"


class TestClocks:
    def test_tick_clock_sequence(self):
        clock = TickClock(start=2.0, step=3.0)
        assert [clock() for _ in range(3)] == [2.0, 5.0, 8.0]

    def test_tick_clock_rejects_nonpositive_step(self):
        with pytest.raises(ConfigurationError):
            TickClock(step=0.0)
        with pytest.raises(ConfigurationError):
            TickClock(step=-1.0)

    def test_frozen_clock_never_advances(self):
        clock = FrozenClock(now=42.0)
        assert [clock() for _ in range(3)] == [42.0, 42.0, 42.0]

    def test_identical_tick_clocks_give_identical_readings(self):
        a, b = TickClock(), TickClock()
        assert [a() for _ in range(5)] == [b() for _ in range(5)]
