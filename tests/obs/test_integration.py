"""End-to-end observability: traced sweeps cross-checked against stats.

These tests drive real :func:`repro.engine.sweep` batches (over the
millisecond-cheap fake provider) with tracing wired the way the CLI wires
it, then assert the three acceptance properties of the trace layer:

* the summarized trace agrees with the engine's ``SweepStats`` *exactly*;
* identical re-runs produce identical traces modulo the injected clock;
* observability never perturbs ``Job.key()`` (tracing cannot split the
  result cache).
"""

from __future__ import annotations

import tests.engine.fake_provider  # noqa: F401  (registers diff_numeric)
from repro.engine import FailurePolicy, configure, sweep
from repro.engine.job import Job
from repro.experiments.common import RunConfig
from repro.obs.clock import FrozenClock, TickClock
from repro.obs.summarize import read_trace, summarize
from repro.workloads.suite import suite_subset

PROVIDER = "tests.engine.fake_provider"
CFG = RunConfig(invocations=2, warmup=1, seed=5)


def grid_jobs():
    profiles = suite_subset(["Auth-G", "ProdL-G"])
    return [Job.make(p, None, CFG, "diff_numeric", provider=PROVIDER,
                     scale=s)
            for p in profiles for s in (1.0, 2.0)]


def strip_t(events):
    """The clock-independent projection of a trace."""
    return [(e.seq, e.kind, e.fields) for e in events]


class TestTraceMatchesSweepStats:
    def assert_trace_agrees(self, trace_path, stats, cached=True):
        summary = summarize(read_trace(trace_path))
        assert summary.jobs == stats.jobs
        assert summary.cache_hits == stats.hits
        assert summary.retries == stats.retries
        assert summary.failures == stats.failures
        if cached:
            # With a result cache every simulated cell leaves a miss and
            # (when it succeeds) a store record.
            assert summary.cache_misses == stats.misses
            assert summary.cache_stores == stats.stores
        else:
            assert summary.cache_lookups == 0

    def test_cold_then_warm_cached_sweeps(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with configure(cache_dir=tmp_path / "cache", trace_path=trace,
                       clock=TickClock()) as ctx:
            sweep(grid_jobs())
            sweep(grid_jobs())
        # 4 misses then 4 hits; the summarize() cross-check against the
        # two sweep.end records runs implicitly inside assert_trace_agrees.
        assert ctx.stats.hits == 4 and ctx.stats.misses == 4
        self.assert_trace_agrees(trace, ctx.stats)

    def test_retried_fault_appears_in_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with configure(trace_path=trace, faults="fail:#1",
                       policy=FailurePolicy.retrying(retries=1)) as ctx:
            sweep(grid_jobs())
        assert ctx.stats.retries == 1
        self.assert_trace_agrees(trace, ctx.stats, cached=False)
        kinds = [e.kind for e in read_trace(trace)]
        assert kinds.count("retry.backoff") == 1
        assert kinds.count("executor.dispatch") == 5  # 4 cells + 1 retry

    def test_uncached_sweep_traces_dispatch_per_cell(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with configure(trace_path=trace) as ctx:
            sweep(grid_jobs())
        self.assert_trace_agrees(trace, ctx.stats, cached=False)
        summary = summarize(read_trace(trace))
        assert summary.dispatches == summary.harvests == 4
        assert summary.cache_lookups == 0  # no cache configured

    def test_metrics_registry_agrees_with_stats(self, tmp_path):
        with configure(cache_dir=tmp_path / "cache") as ctx:
            sweep(grid_jobs())
            sweep(grid_jobs())
        metrics = ctx.metrics
        assert metrics.value("engine.sweeps") == 2
        assert metrics.value("engine.jobs") == ctx.stats.jobs == 8
        assert metrics.value("engine.hits") == ctx.stats.hits == 4
        assert metrics.value("engine.misses") == ctx.stats.misses == 4
        assert metrics.value("engine.stores") == ctx.stats.stores == 4
        assert metrics.value("engine.retries") == ctx.stats.retries == 0
        assert metrics.value("engine.hit_rate") == ctx.stats.hit_rate


class TestTraceDeterminism:
    def run_traced(self, tmp_path, label, clock):
        trace = tmp_path / f"{label}.jsonl"
        with configure(cache_dir=tmp_path / f"cache-{label}",
                       trace_path=trace, clock=clock):
            sweep(grid_jobs())
        return trace

    def test_identical_runs_identical_traces_with_identical_clocks(
            self, tmp_path):
        a = self.run_traced(tmp_path, "a", TickClock())
        b = self.run_traced(tmp_path, "b", TickClock())
        assert a.read_bytes() == b.read_bytes()

    def test_different_clocks_differ_only_in_t(self, tmp_path):
        a = read_trace(self.run_traced(tmp_path, "a", TickClock()))
        b = read_trace(self.run_traced(tmp_path, "c", FrozenClock(100.0)))
        assert strip_t(a) == strip_t(b)
        assert [e.t for e in a] != [e.t for e in b]

    def test_warm_reruns_are_trace_identical(self, tmp_path):
        cache = tmp_path / "cache"
        with configure(cache_dir=cache):
            sweep(grid_jobs())  # populate

        def warm_run(label):
            trace = tmp_path / f"{label}.jsonl"
            with configure(cache_dir=cache, trace_path=trace,
                           clock=TickClock()) as ctx:
                sweep(grid_jobs())
                assert ctx.stats.hits == 4
            return trace

        assert warm_run("w1").read_bytes() == warm_run("w2").read_bytes()


class TestTracingNeverPerturbsJobs:
    def test_job_keys_are_tracer_independent(self, tmp_path):
        baseline = [job.key() for job in grid_jobs()]
        with configure(trace_path=tmp_path / "trace.jsonl",
                       clock=TickClock()):
            traced = [job.key() for job in grid_jobs()]
            sweep(grid_jobs())
            after_sweep = [job.key() for job in grid_jobs()]
        assert baseline == traced == after_sweep

    def test_traced_results_match_untraced(self, tmp_path):
        with configure():
            plain = sweep(grid_jobs())
        with configure(trace_path=tmp_path / "trace.jsonl",
                       clock=TickClock()):
            traced = sweep(grid_jobs())
        assert plain == traced


class TestAlwaysOnCollector:
    def test_default_context_tracer_counts_without_any_wiring(self):
        with configure() as ctx:
            sweep(grid_jobs())
        counts = ctx.tracer.counts
        assert counts["sweep.begin"] == counts["sweep.end"] == 1
        assert counts["executor.dispatch"] == 4
        assert "obs: " in ctx.tracer.describe()

    def test_footer_counters_survive_context_exit(self, tmp_path):
        with configure(trace_path=tmp_path / "t.jsonl") as ctx:
            sweep(grid_jobs())
        # The JSONL sink is closed on exit, but the in-memory collector
        # (what the runner footer reads) is still intact.
        assert ctx.tracer.events_emitted == len(ctx.tracer.events) == 10
