"""Tests for plain-text report rendering."""

import pytest

from repro.analysis.report import (
    format_bars,
    format_percent,
    format_stacked_bars,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["A", "LongHeader"], [["x", 1.0], ["yy", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:1])
        assert "LongHeader" in lines[0]
        assert "22.50" in lines[3]

    def test_title(self):
        out = format_table(["A"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]])
        assert "3.14" in out
        assert "3.1415" not in out


class TestFormatBars:
    def test_bar_lengths_proportional(self):
        out = format_bars(["a", "b"], [1.0, 2.0])
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[1] == 2 * bars[0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        out = format_bars(["a"], [5.0], unit="%")
        assert "5.00%" in out

    def test_zero_values_no_crash(self):
        out = format_bars(["a"], [0.0])
        assert "0.00" in out


class TestFormatStackedBars:
    def test_legend_and_totals(self):
        stacks = [{"x": 1.0, "y": 1.0}]
        out = format_stacked_bars(["row"], stacks, order=["x", "y"],
                                  title="T")
        assert "T" in out
        assert "2.00" in out

    def test_symbols_used(self):
        stacks = [{"x": 1.0, "y": 1.0}]
        out = format_stacked_bars(["row"], stacks, order=["x", "y"],
                                  symbols={"x": "X", "y": "Y"})
        assert "X" in out and "Y" in out

    def test_segment_proportions(self):
        stacks = [{"x": 3.0, "y": 1.0}]
        out = format_stacked_bars(["row"], stacks, order=["x", "y"],
                                  symbols={"x": "X", "y": "Y"})
        row = out.splitlines()[-1]
        assert row.count("X") == 3 * row.count("Y")


class TestFormatPercent:
    def test_signed(self):
        assert format_percent(0.187) == "+18.7%"
        assert format_percent(-0.05) == "-5.0%"

    def test_unsigned(self):
        assert format_percent(0.187, signed=False) == "18.7%"
