"""Tests for analysis metrics, including Jaccard properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    geomean,
    geomean_speedup,
    jaccard_index,
    mpki,
    pairwise_jaccard,
    percent_change,
    speedup,
    summarize_distribution,
)
from repro.errors import ConfigurationError

sets = st.sets(st.integers(min_value=0, max_value=60), max_size=30)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_index({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_index({1}, {2}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_index({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_sets_identical(self):
        assert jaccard_index(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard_index({1}, set()) == 0.0

    @settings(max_examples=50)
    @given(sets, sets)
    def test_symmetric(self, a, b):
        assert jaccard_index(a, b) == jaccard_index(b, a)

    @settings(max_examples=50)
    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard_index(a, b) <= 1.0

    @settings(max_examples=50)
    @given(sets)
    def test_self_similarity(self, a):
        assert jaccard_index(a, a) == 1.0

    @settings(max_examples=50)
    @given(sets, sets)
    def test_subset_equals_ratio(self, a, b):
        both = a | b
        if both:
            assert jaccard_index(a, both) == pytest.approx(len(a) / len(both))

    def test_pairwise_count(self):
        """25 invocations -> 300 pairs (Sec. 2.5)."""
        footprints = [{i} for i in range(25)]
        assert len(pairwise_jaccard(footprints)) == 300


class TestSpeedup:
    def test_definition(self):
        assert speedup(1187.0, 1000.0) == pytest.approx(0.187)

    def test_slowdown_is_negative(self):
        assert speedup(900.0, 1000.0) < 0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            speedup(100.0, 0.0)


class TestGeomean:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_speedup_roundtrip(self):
        assert geomean_speedup([0.1, 0.1]) == pytest.approx(0.1)

    def test_geomean_speedup_mixes(self):
        result = geomean_speedup([0.0, 0.21])
        assert 0.0 < result < 0.21

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geomean([1.0, 0.0])

    @settings(max_examples=40)
    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) <= g * (1 + 1e-9)
        assert g <= max(values) * (1 + 1e-9)


class TestMisc:
    def test_mpki(self):
        assert mpki(50, 1000) == 50.0
        assert mpki(50, 0) == 0.0

    def test_percent_change_reduction(self):
        assert percent_change(100, 26) == pytest.approx(-74.0)

    def test_percent_change_zero_base(self):
        assert percent_change(0, 10) == 0.0

    def test_summarize_distribution(self):
        summary = summarize_distribution([1.0, 2.0, 3.0, 10.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0
        assert summary["median"] == 2.5

    def test_summarize_empty(self):
        assert summarize_distribution([])["mean"] == 0.0

    def test_summarize_odd_median(self):
        assert summarize_distribution([3.0, 1.0, 2.0])["median"] == 2.0
