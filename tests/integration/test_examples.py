"""Smoke tests: the example scripts run end-to-end and print results."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 400) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestQuickstart:
    def test_runs_and_reports_speedup(self):
        out = run_example("quickstart.py")
        assert "lukewarm baseline" in out
        assert "vs. baseline" in out
        assert "jukebox replay" in out


class TestPrefetcherComparison:
    def test_fast_mode(self):
        out = run_example("prefetcher_comparison.py", "--fast")
        assert "GEOMEAN" in out
        for config in ("PIF", "PIF-ideal", "Jukebox", "Perfect I$"):
            assert config in out


@pytest.mark.parametrize("script", ["server_characterization.py",
                                    "custom_function.py"])
def test_other_examples_run(script):
    out = run_example(script)
    assert "|" in out  # produced at least one table
