"""End-to-end integration tests on real suite functions (reduced scale).

These assert the paper's *qualitative* results hold through the full
pipeline: workload generation -> hierarchy simulation -> Jukebox
record/replay -> analysis.
"""

import pytest

from repro.analysis.metrics import speedup
from repro.core.jukebox import Jukebox
from repro.experiments.common import (
    RunConfig,
    make_traces,
    run_baseline,
    run_jukebox,
    run_perfect_icache,
    run_reference,
)
from repro.sim.core import Simulator
from repro.sim.params import JukeboxParams, broadwell, skylake
from repro.units import KB
from repro.workloads.suite import get_profile

CFG = RunConfig(invocations=4, warmup=2, instruction_scale=0.35)


@pytest.fixture(scope="module")
def auth_g_runs():
    profile = get_profile("Auth-G")
    m = skylake()
    return {
        "reference": run_reference(profile, m, CFG),
        "baseline": run_baseline(profile, m, CFG),
        "jukebox": run_jukebox(profile, m, CFG),
        "perfect": run_perfect_icache(profile, m, CFG),
    }


class TestLukewarmPhenomenon:
    def test_interleaving_slows_execution(self, auth_g_runs):
        ratio = auth_g_runs["baseline"].cpi / auth_g_runs["reference"].cpi
        assert ratio > 1.15

    def test_front_end_is_the_bottleneck(self, auth_g_runs):
        base = auth_g_runs["baseline"]
        ref = auth_g_runs["reference"]
        extra_fl = sum(r.topdown.fetch_latency for r in base.results) \
            - sum(r.topdown.fetch_latency for r in ref.results)
        extra_total = base.cycles - ref.cycles
        assert extra_fl > 0.4 * extra_total

    def test_reference_has_no_llc_instruction_misses(self, auth_g_runs):
        assert auth_g_runs["reference"].mean_mpki("llc", "inst") < 1.0

    def test_interleaved_misses_llc_for_instructions(self, auth_g_runs):
        assert auth_g_runs["baseline"].mean_mpki("llc", "inst") > 5.0


class TestJukeboxEffectiveness:
    def test_speedup_ordering(self, auth_g_runs):
        jb = speedup(auth_g_runs["baseline"].cycles,
                     auth_g_runs["jukebox"].cycles)
        pf = speedup(auth_g_runs["baseline"].cycles,
                     auth_g_runs["perfect"].cycles)
        assert 0.05 < jb < pf

    def test_jukebox_recovers_majority_of_opportunity(self, auth_g_runs):
        jb = speedup(auth_g_runs["baseline"].cycles,
                     auth_g_runs["jukebox"].cycles)
        pf = speedup(auth_g_runs["baseline"].cycles,
                     auth_g_runs["perfect"].cycles)
        assert jb / pf > 0.45

    def test_l2_instruction_misses_mostly_covered(self, auth_g_runs):
        base_mpki = auth_g_runs["baseline"].mean_mpki("l2", "inst")
        jb_mpki = auth_g_runs["jukebox"].mean_mpki("l2", "inst")
        assert jb_mpki < 0.4 * base_mpki

    def test_metadata_within_paper_budget(self, auth_g_runs):
        """Go functions fit the 16KB budget (Sec. 5.3)."""
        for report in auth_g_runs["jukebox"].jukebox_reports:
            assert report.recorded_bytes <= 16 * KB
            assert report.recorded_dropped == 0

    def test_bandwidth_overhead_bounded(self, auth_g_runs):
        jb = auth_g_runs["jukebox"]
        over_lines = sum(r.replay.overpredicted for r in jb.jukebox_reports)
        meta = sum(r.replay.metadata_bytes_read + r.recorded_bytes
                   for r in jb.jukebox_reports)
        demand = sum(r.stats.memory.demand_inst + r.stats.memory.demand_data
                     for r in jb.results)
        overhead = (over_lines * 64 + meta) / demand
        assert overhead < 0.35


class TestLanguageEffects:
    def test_python_metadata_exceeds_budget(self):
        """Python/NodeJS metadata truncates at 16KB (Figs. 8 and 11)."""
        jb = run_jukebox(get_profile("Email-P"), skylake(), CFG)
        assert any(r.recorded_dropped > 0 or r.recorded_bytes > 15 * KB
                   for r in jb.jukebox_reports)

    def test_go_coverage_exceeds_python_coverage(self):
        m = skylake()

        def coverage(abbrev):
            profile = get_profile(abbrev)
            base = run_baseline(profile, m, CFG)
            jb = run_jukebox(profile, m, CFG)
            covered = sum(r.replay.covered for r in jb.jukebox_reports)
            misses = sum(r.stats.l2.inst_misses for r in base.results)
            return covered / misses

        assert coverage("Auth-G") > coverage("Pay-N")


class TestBroadwellEffect:
    def test_small_l2_keeps_misses_but_llc_covers(self):
        """Table 3: prefetches conflict-evicted from a 256KB L2 are still
        served by the LLC."""
        from repro.sim.params import MODE_EVALUATION
        profile = get_profile("Email-P")
        m = broadwell(mode=MODE_EVALUATION)
        base = run_baseline(profile, m, CFG)
        jb = run_jukebox(profile, m, CFG)
        l2_reduction = 1 - jb.mean_mpki("l2", "inst") / base.mean_mpki("l2", "inst")
        llc_reduction = 1 - jb.mean_mpki("llc", "inst") / base.mean_mpki("llc", "inst")
        assert llc_reduction > 0.6
        assert l2_reduction < 0.5


class TestRecordReplayStability:
    def test_steady_state_speedup_does_not_decay(self):
        """Invocations 2..N must all stay fast (no covered/uncovered
        oscillation -- the record-on-prefetched-hit rule)."""
        profile = get_profile("Auth-G")
        cfg = RunConfig(invocations=6, warmup=1, instruction_scale=0.35)
        m = skylake()
        core = Simulator(m)
        jb = Jukebox(JukeboxParams())
        traces = make_traces(profile, cfg)
        cycles = []
        for trace in traces:
            core.flush_microarch_state()
            jb.begin_invocation(core.hierarchy)
            result = core.run(trace)
            jb.end_invocation(core.hierarchy, result)
            cycles.append(result.cycles)
        steady = cycles[2:]
        assert max(steady) < 1.15 * min(steady)
        assert max(steady) < 0.95 * cycles[0]
