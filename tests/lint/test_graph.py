"""Property/fixture tests for the whole-program import graph.

Synthetic module trees exercise the resolution corners the analyzer must
get right for closure digests to be trustworthy: import cycles, relative
imports at every level, re-exports through ``__init__``, and stdlib names
shadowed by project modules.  The property battery builds seeded random
dependency graphs and checks the analyzer's closure against an
independent reference computation.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint.graph import ProjectGraph


def _write_package(root: Path, files: dict) -> Path:
    """Materialize ``{relative_path: source}`` under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def _graph(tmp_path: Path, files: dict, package: str = "pkg"
           ) -> ProjectGraph:
    root = _write_package(tmp_path / package, files)
    return ProjectGraph.from_package(root, package)


class TestDiscovery:
    def test_modules_named_by_dotted_path(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "",
            "sub/__init__.py": "",
            "sub/b.py": "",
        })
        assert set(graph.modules) == {"pkg", "pkg.a", "pkg.sub", "pkg.sub.b"}

    def test_unparsable_file_is_skipped_not_fatal(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "ok.py": "X = 1\n",
            "broken.py": "def f(:\n",
        })
        assert "pkg.ok" in graph.modules
        assert "pkg.broken" not in graph.modules

    def test_missing_root_is_typed_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ProjectGraph.from_package(tmp_path / "nope", "nope")


class TestImportResolution:
    def test_absolute_import(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "import pkg.b\n",
            "b.py": "",
        })
        assert "pkg.b" in graph.modules["pkg.a"].internal_deps

    def test_importing_submodule_depends_on_parent_inits(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "import pkg.sub.deep\n",
            "sub/__init__.py": "",
            "sub/deep.py": "",
        })
        deps = graph.modules["pkg.a"].internal_deps
        assert {"pkg", "pkg.sub", "pkg.sub.deep"} <= deps

    def test_relative_import_single_dot(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "",
            "sub/a.py": "from . import b\n",
            "sub/b.py": "",
        })
        assert "pkg.sub.b" in graph.modules["pkg.sub.a"].internal_deps

    def test_relative_import_two_dots(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "other.py": "THING = 1\n",
            "sub/__init__.py": "",
            "sub/a.py": "from ..other import THING\n",
        })
        assert "pkg.other" in graph.modules["pkg.sub.a"].internal_deps

    def test_relative_import_from_package_init(self, tmp_path):
        # An __init__'s `from . import x` anchors at the package itself.
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "sub/__init__.py": "from . import a\n",
            "sub/a.py": "",
        })
        assert "pkg.sub.a" in graph.modules["pkg.sub"].internal_deps

    def test_external_imports_are_not_internal_deps(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "import os\nfrom collections import deque\n",
        })
        node = graph.modules["pkg.a"]
        assert not node.internal_deps
        assert "os" in node.external_deps
        assert "collections" in node.external_deps

    def test_lazy_function_level_import_still_counts(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "def f():\n    from pkg import b\n    return b\n",
            "b.py": "",
        })
        assert "pkg.b" in graph.modules["pkg.a"].internal_deps


class TestShadowedStdlibNames:
    def test_project_json_module_vs_stdlib_json(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "json.py": "def dumps(x):\n    return str(x)\n",
            "absolute.py": "import json\n",       # stdlib: absolute import
            "relative.py": "from . import json\n",  # project module
            "explicit.py": "from pkg import json\n",
        })
        assert not graph.modules["pkg.absolute"].internal_deps
        assert "json" in graph.modules["pkg.absolute"].external_deps
        assert "pkg.json" in graph.modules["pkg.relative"].internal_deps
        assert "pkg.json" in graph.modules["pkg.explicit"].internal_deps

    def test_shadowed_module_resolves_calls_internally(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "json.py": "def dumps(x):\n    return str(x)\n",
            "user.py": ("from pkg import json\n"
                        "def emit(x):\n    return json.dumps(x)\n"),
        })
        info = graph.functions()["pkg.user:emit"]
        assert "pkg.json:dumps" in info.calls


class TestReexports:
    FILES = {
        "__init__.py": "from pkg.impl import Thing, make_thing\n",
        "impl.py": ("class Thing:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def make_thing():\n"
                    "    return Thing()\n"),
        "user.py": ("from pkg import Thing, make_thing\n"
                    "def build():\n"
                    "    t = Thing()\n"
                    "    return make_thing()\n"),
    }

    def test_resolve_export_follows_init(self, tmp_path):
        graph = _graph(tmp_path, self.FILES)
        assert graph.resolve_export("pkg", "Thing") == ("pkg.impl", "Thing")
        assert graph.resolve_export("pkg", "make_thing") == (
            "pkg.impl", "make_thing")

    def test_resolve_export_submodule(self, tmp_path):
        graph = _graph(tmp_path, self.FILES)
        assert graph.resolve_export("pkg", "impl") == ("pkg.impl", None)

    def test_calls_resolve_through_reexport(self, tmp_path):
        graph = _graph(tmp_path, self.FILES)
        info = graph.functions()["pkg.user:build"]
        assert "pkg.impl:make_thing" in info.calls
        assert "pkg.impl:Thing" in info.calls

    def test_chained_reexport(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "from pkg.middle import deep_fn\n",
            "middle.py": "from pkg.deep import deep_fn\n",
            "deep.py": "def deep_fn():\n    return 1\n",
            "user.py": ("from pkg import deep_fn\n"
                        "def go():\n    return deep_fn()\n"),
        })
        assert graph.resolve_export("pkg", "deep_fn") == (
            "pkg.deep", "deep_fn")
        assert "pkg.deep:deep_fn" in graph.functions()["pkg.user:go"].calls

    def test_reexport_cycle_terminates(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "from pkg.b import ghost\n",
            "b.py": "from pkg.a import ghost\n",
        })
        assert graph.resolve_export("pkg.a", "ghost") is None


class TestClosures:
    def test_closure_includes_self_and_is_sorted(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "from pkg import c\nfrom pkg import b\n",
            "b.py": "",
            "c.py": "",
        })
        closure = graph.closure("pkg.a")
        assert closure == tuple(sorted(closure))
        assert set(closure) == {"pkg", "pkg.a", "pkg.b", "pkg.c"}

    def test_cycle_safe(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "a.py": "from pkg import b\n",
            "b.py": "from pkg import c\n",
            "c.py": "from pkg import a\n",
        })
        expected = {"pkg", "pkg.a", "pkg.b", "pkg.c"}
        for module in ("pkg.a", "pkg.b", "pkg.c"):
            assert set(graph.closure(module)) == expected

    def test_closure_of_unknown_module_is_error(self, tmp_path):
        graph = _graph(tmp_path, {"__init__.py": ""})
        with pytest.raises(ConfigurationError):
            graph.closure("pkg.missing")

    def test_stable_across_rebuilds(self, tmp_path):
        files = {
            "__init__.py": "",
            "a.py": "from pkg import b\nimport pkg.c\n",
            "b.py": "from pkg import c\n",
            "c.py": "",
        }
        root = _write_package(tmp_path / "pkg", files)
        first = ProjectGraph.from_package(root, "pkg")
        second = ProjectGraph.from_package(root, "pkg")
        for module in sorted(first.modules):
            assert first.closure(module) == second.closure(module)

    def test_importers_of_inverts_closure(self, tmp_path):
        graph = _graph(tmp_path, {
            "__init__.py": "",
            "helper.py": "",
            "user.py": "from pkg import helper\n",
            "loner.py": "",
        })
        importers = graph.importers_of("pkg.helper")
        assert "pkg.user" in importers
        assert "pkg.loner" not in importers


class TestClosureProperties:
    """Seeded-random dependency graphs vs an independent reference BFS."""

    def _random_tree(self, seed: int, n: int = 12) -> dict:
        rng = random.Random(seed)
        files = {"__init__.py": ""}
        for i in range(n):
            deps = [j for j in range(n) if j != i and rng.random() < 0.3]
            body = "".join(f"from pkg import m{j}\n" for j in deps)
            files[f"m{i}.py"] = body or "X = 1\n"
        return files

    def _reference_closure(self, files: dict, module: str) -> set:
        """Closure computed straight from the source dict, no analyzer."""
        import re

        deps = {}
        for rel, body in files.items():
            if rel == "__init__.py":
                name = "pkg"
            else:
                name = "pkg." + rel[:-3]
            deps[name] = set(re.findall(r"from pkg import (m\d+)", body))
        visited, stack = set(), [module]
        while stack:
            cur = stack.pop()
            if cur in visited:
                continue
            visited.add(cur)
            # `from pkg import x` also executes pkg's __init__.
            if cur != "pkg":
                visited.add("pkg") if deps.get(cur) else None
            for dep in deps.get(cur, ()):
                stack.append(f"pkg.{dep}")
            if deps.get(cur):
                stack.append("pkg")
        return visited

    @pytest.mark.parametrize("seed", [1, 7, 42, 1337])
    def test_matches_reference(self, tmp_path, seed):
        files = self._random_tree(seed)
        graph = _graph(tmp_path, files, package="pkg")
        for i in range(12):
            module = f"pkg.m{i}"
            got = set(graph.closure(module))
            want = self._reference_closure(files, module)
            assert got == want, f"closure mismatch for {module} (seed={seed})"

    @pytest.mark.parametrize("seed", [3, 99])
    def test_closure_is_transitively_consistent(self, tmp_path, seed):
        """Every member's closure is a subset of the owner's closure."""
        graph = _graph(tmp_path, self._random_tree(seed))
        for module in graph.modules:
            closure = set(graph.closure(module))
            for member in closure:
                assert set(graph.closure(member)) <= closure
