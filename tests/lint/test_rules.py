"""Rule-by-rule tests of the REPRO00x static analyses over fixtures.

Each rule has at least one positive fixture (must fire) and one negative
fixture (must stay silent); suppression comments are covered separately.
"""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Violation, get_rule, lint_paths, scope_key
from repro.lint.engine import apply_fixes, lint_file

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fixture_violations():
    """Lint the whole fixture tree once; tests slice it by file."""
    return lint_paths([FIXTURES])


def _for_file(violations, name):
    return [v for v in violations if Path(v.path).name == name]


class TestRegistry:
    def test_six_rules_with_unique_ids(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6
        assert ids == sorted(ids)

    def test_every_rule_documented(self):
        for rule in ALL_RULES:
            assert rule.description
            assert rule.severity in ("error", "warning")
            assert isinstance(rule.autofixable, bool)

    def test_get_rule(self):
        assert get_rule("REPRO001").id == "REPRO001"
        with pytest.raises(KeyError):
            get_rule("REPRO999")


class TestScopeKey:
    def test_strips_repro_package_prefix(self):
        key = scope_key(Path("/x/repo/src/repro/sim/cache.py"))
        assert key == "sim/cache.py"

    def test_fixture_tree_relative_to_root(self):
        key = scope_key(FIXTURES / "sim" / "bad_float_eq.py", root=FIXTURES)
        assert key == "sim/bad_float_eq.py"

    def test_scoped_rule_applies(self):
        rule = get_rule("REPRO002")
        assert rule.applies_to("sim/core.py")
        assert rule.applies_to("analysis/metrics.py")
        assert not rule.applies_to("server/keepalive.py")

    def test_excluded_path_does_not_apply(self):
        rule = get_rule("REPRO003")
        assert rule.applies_to("sim/cache.py")
        assert not rule.applies_to("sim/params.py")

    def test_wallclock_covers_engine(self):
        # The sweep engine must never read host time (its timing comes
        # from an injected clock), so REPRO006 polices it too.
        rule = get_rule("REPRO006")
        assert rule.applies_to("engine/executors.py")
        assert rule.applies_to("engine/sweep.py")

    def test_wallclock_covers_simulate_consumers(self):
        # Since the simulate() migration, stressors and experiment
        # builders sit directly on the simulation path; the CLI runner is
        # in scope too and carries explicit disables at its two
        # wall-clock *reporting* sites.
        rule = get_rule("REPRO006")
        assert rule.applies_to("server/stressor.py")
        assert rule.applies_to("experiments/common.py")
        assert rule.applies_to("experiments/runner.py")

    def test_wallclock_covers_obs(self):
        # Trace timestamps come only from injected clocks, so the
        # observability layer is under the same rule as the simulator.
        rule = get_rule("REPRO006")
        assert rule.applies_to("obs/tracer.py")
        assert rule.applies_to("obs/clock.py")

    def test_wallclock_covers_fleet(self):
        # Fleet shard results are content-addressed cache entries; a
        # host-clock read anywhere in the region simulator poisons them.
        rule = get_rule("REPRO006")
        assert rule.applies_to("fleet/region.py")
        assert rule.applies_to("fleet/balancer.py")

    def test_wallclock_covers_coldstart(self):
        # Restore/init charges land inside memoized spectrum cells, so
        # the cold-start package must stay pure arithmetic.
        rule = get_rule("REPRO006")
        assert rule.applies_to("coldstart/pages.py")
        assert rule.applies_to("coldstart/model.py")


class TestREPRO001:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_random.py")
        assert {v.rule_id for v in found} == {"REPRO001"}
        assert len(found) == 5  # random.random/randint, np.rand, 2 unseeded

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_random.py")

    def test_unseeded_placement_policy_flagged(self, fixture_violations):
        # A fleet placement policy drawing from ambient RNG state (or the
        # host clock) would make two shards plan the same region
        # differently; both analyses must fire on it.
        found = _for_file(fixture_violations, "bad_unseeded_policy.py")
        assert {v.rule_id for v in found} == {"REPRO001", "REPRO006"}
        assert sum(v.rule_id == "REPRO001" for v in found) == 3
        assert sum(v.rule_id == "REPRO006" for v in found) == 1

    def test_seeded_placement_policy_clean(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_seeded_policy.py")


class TestREPRO002:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_float_eq.py")
        assert {v.rule_id for v in found} == {"REPRO002"}
        assert len(found) == 2

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_float_eq.py")

    def test_out_of_scope_directory_is_silent(self, tmp_path):
        wild = tmp_path / "server" / "free_floats.py"
        wild.parent.mkdir()
        wild.write_text("def f(x):\n    return x == 1.0\n")
        assert lint_paths([tmp_path]) == []


class TestREPRO003:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_magic.py")
        assert {v.rule_id for v in found} == {"REPRO003"}
        assert len(found) == 2
        assert all(v.severity == "warning" for v in found)

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_magic.py")


class TestREPRO004:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_mutable_default.py")
        assert {v.rule_id for v in found} == {"REPRO004"}
        assert len(found) == 3  # two defaults + one class attribute

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_mutable_default.py")


class TestREPRO005:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_except.py")
        assert {v.rule_id for v in found} == {"REPRO005"}
        assert len(found) == 2
        messages = " ".join(v.message for v in found)
        assert "bare except" in messages
        assert "discards" in messages

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_except.py")


class TestREPRO006:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_wallclock.py")
        assert {v.rule_id for v in found} == {"REPRO006"}
        assert len(found) == 2

    def test_negative(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_wallclock.py")

    def test_autofix_wraps_listing_in_sorted(self):
        path = FIXTURES / "sim" / "bad_wallclock.py"
        violations = lint_file(path, root=FIXTURES)
        source = path.read_text(encoding="utf-8")
        fixed_source, applied = apply_fixes(source, violations)
        assert applied == 1  # os.listdir is fixable, time.time is not
        assert "sorted(os.listdir(directory))" in fixed_source


class TestREPRO007:
    def test_positive(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_broad_except.py")
        assert {v.rule_id for v in found} == {"REPRO007"}
        assert len(found) == 3  # except Exception, tuple BaseException, bare
        messages = " ".join(v.message for v in found)
        assert "Exception" in messages
        assert "bare except" in messages

    def test_sanctioned_capture_point_is_exempt(self, fixture_violations):
        assert not _for_file(fixture_violations, "resilience.py")

    def test_scoped_to_engine_and_obs_only(self):
        rule = get_rule("REPRO007")
        assert rule.applies_to("engine/executors.py")
        assert rule.applies_to("engine/sweep.py")
        assert rule.applies_to("obs/tracer.py")
        assert not rule.applies_to("engine/resilience.py")
        assert not rule.applies_to("experiments/runner.py")
        assert not rule.applies_to("core/keepalive.py")

    def test_broad_except_in_obs_fires(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_obs_except.py")
        assert {v.rule_id for v in found} == {"REPRO007"}
        assert len(found) == 1

    def test_wallclock_in_obs_fires(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_obs_wallclock.py")
        assert {v.rule_id for v in found} == {"REPRO006"}
        assert len(found) == 1


class TestREPRO011:
    def test_argless_blocking_waits_fire(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_blocking_wait.py")
        assert {v.rule_id for v in found} == {"REPRO011"}
        assert len(found) == 3  # .get(), .wait(), .acquire()
        messages = " ".join(v.message for v in found)
        assert "deadline guard" in messages

    def test_bounded_waits_and_dict_get_are_silent(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_blocking_wait.py")

    def test_scoped_to_engine_only(self):
        rule = get_rule("REPRO011")
        assert rule.applies_to("engine/executors.py")
        assert rule.applies_to("engine/cache.py")
        assert not rule.applies_to("obs/tracer.py")
        assert not rule.applies_to("experiments/runner.py")


class TestREPRO008:
    def test_module_level_singletons_fire(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_global_tracer.py")
        assert {v.rule_id for v in found} == {"REPRO008"}
        assert len(found) == 2  # Tracer() and MetricsRegistry()
        messages = " ".join(v.message for v in found)
        assert "singleton" in messages

    def test_injected_construction_is_silent(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_injected_tracer.py")

    def test_fires_everywhere_not_just_obs(self):
        rule = get_rule("REPRO008")
        assert rule.applies_to("engine/sweep.py")
        assert rule.applies_to("obs/tracer.py")
        assert rule.applies_to("experiments/runner.py")

    def test_module_level_coldstart_model_fires(self, fixture_violations):
        # A spectrum model's recorded page trace is per-simulation state;
        # module-level construction is the same ambient-singleton defect
        # as a global tracer.
        found = _for_file(fixture_violations, "bad_global_model.py")
        assert {v.rule_id for v in found} == {"REPRO008"}
        assert len(found) == 3  # SpectrumColdStart, PageReplayState,
        #                         make_coldstart_model

    def test_injected_coldstart_model_is_silent(self, fixture_violations):
        assert not _for_file(fixture_violations, "good_injected_model.py")

    def test_wallclock_in_coldstart_fires(self, fixture_violations):
        found = _for_file(fixture_violations, "bad_coldstart_wallclock.py")
        assert {v.rule_id for v in found} == {"REPRO006"}
        assert len(found) == 2  # two perf_counter reads


class TestSuppression:
    def test_inline_disable(self, fixture_violations):
        assert not _for_file(fixture_violations, "suppressed.py")

    def test_file_wide_disable(self, fixture_violations):
        assert not _for_file(fixture_violations, "suppressed_file.py")

    def test_disable_only_silences_named_rule(self, tmp_path):
        target = tmp_path / "sim" / "mixed.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n"
            "def f(x):\n"
            "    return x == 1.0, time.time()  # repro-lint: disable=REPRO002\n"
        )
        found = lint_paths([tmp_path])
        assert {v.rule_id for v in found} == {"REPRO006"}


class TestEngineEdges:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        found = lint_paths([tmp_path])
        assert len(found) == 1
        assert found[0].rule_id == "REPRO000"
        assert found[0].severity == "error"

    def test_violations_are_formatted_with_location(self, fixture_violations):
        violation = _for_file(fixture_violations, "bad_float_eq.py")[0]
        assert isinstance(violation, Violation)
        text = violation.format()
        assert "bad_float_eq.py" in text
        assert "REPRO002" in text
        assert ":" in text
