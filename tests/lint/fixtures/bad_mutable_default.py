"""REPRO004 positive fixture: shared mutable defaults and class attrs."""


def collect(item, acc=[]):
    acc.append(item)
    return acc


def index(key, table={}):
    return table.setdefault(key, len(table))


class SimState:
    history = []

    def push(self, value):
        self.history.append(value)
