"""REPRO003 negative fixture: named constants and repro.units."""

from repro.units import KB

L2_CAPACITY_BYTES = 262144  # ALL_CAPS module constant: naming it is the fix.


def metadata_budget():
    return 16 * KB


def small_numbers(x):
    return x + 64 + 512 + 1000
