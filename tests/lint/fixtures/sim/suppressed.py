"""Suppression fixture: every violation carries an inline disable."""

import time


def stamp():
    return time.time()  # repro-lint: disable=REPRO006


def threshold(x):
    return x == 1.0  # repro-lint: disable=all
