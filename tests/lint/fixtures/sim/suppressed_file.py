"""File-wide suppression fixture."""
# repro-lint: disable-file=REPRO002


def a(x):
    return x == 1.0


def b(y):
    return y != 2.5
