"""REPRO002 negative fixture: tolerant comparisons and int equality."""

import math


def converged(cycles):
    return math.isclose(cycles, 0.0, abs_tol=1e-9)


def needs_scaling(scale):
    return not math.isclose(scale, 1.0)


def exact_int(count):
    return count == 0
