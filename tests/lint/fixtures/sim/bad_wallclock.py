"""REPRO006 positive fixture: host clocks and unsorted listings."""

import os
import time


def stamp():
    return time.time()


def trace_files(directory):
    return os.listdir(directory)
