"""REPRO006 negative fixture: simulated time and sorted listings."""

import os


def stamp(cycle):
    return cycle


def trace_files(directory):
    return sorted(os.listdir(directory))
