"""REPRO002 positive fixture: exact float comparisons on metrics."""


def converged(cycles):
    return cycles == 0.0


def needs_scaling(scale):
    return scale != 1.0
