"""REPRO003 positive fixture: magic size literals inside sim code."""


def l2_capacity_bytes():
    return 262144


def metadata_budget():
    budget = 16 * 1024
    return budget
