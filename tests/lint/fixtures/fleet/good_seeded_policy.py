"""REPRO001/REPRO006 negative fixture: the same policy with explicitly
seeded generators and simulated time only."""

import random

import numpy as np


class SeededRandomBalancer:
    def __init__(self, nodes, seed):
        self.nodes = nodes
        self.coin = random.Random(seed)
        self.rng = np.random.default_rng(seed + 1)

    def place(self, function_id):
        if self.coin.random() < 0.5:
            return self.coin.randrange(self.nodes)
        return int(self.rng.integers(self.nodes))

    def stamp(self, now_ms):
        return now_ms
