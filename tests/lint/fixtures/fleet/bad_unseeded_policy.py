"""REPRO001/REPRO006 positive fixture: a placement policy drawing from
unseeded global RNG state and stamping decisions with the host clock.
Either defect makes two shards of the same region plan disagree."""

import random
import time

import numpy as np


class SloppyRandomBalancer:
    def __init__(self, nodes):
        self.nodes = nodes
        self.rng = np.random.default_rng()

    def place(self, function_id):
        if random.random() < 0.5:
            return random.randrange(self.nodes)
        return int(self.rng.integers(self.nodes))

    def stamp(self):
        return time.time()
