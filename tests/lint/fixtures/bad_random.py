"""REPRO001 positive fixture: unseeded randomness everywhere."""

import random

import numpy as np


def sample():
    x = random.random()
    y = random.randint(0, 10)
    z = np.random.rand(4)
    rng = np.random.default_rng()
    local = random.Random()
    return x, y, z, rng, local
