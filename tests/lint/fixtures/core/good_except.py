"""REPRO005 negative fixture: specific handlers that act on the error."""


def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise RuntimeError(f"cannot read metadata from {path}") from exc


def parse_or_default(text, default):
    try:
        return int(text)
    except ValueError:
        return default
