"""REPRO005 positive fixture: bare and swallowed exception handlers."""


def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:
        return None


def fire_and_forget(callback):
    try:
        callback()
    except Exception:
        pass
