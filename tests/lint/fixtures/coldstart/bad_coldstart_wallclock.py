"""REPRO006 positive inside coldstart/: restore charges are arithmetic,
never host-time measurements."""

import time


def measure_restore(state):
    begin = time.perf_counter()
    state.restore()
    return time.perf_counter() - begin
