"""REPRO008 positive: module-level cold-start model singletons.

A spectrum model's recorded page traces are per-simulation state; built
at import time they would leak one run's working set into the next.
"""

from repro.coldstart import (ColdStartSpec, PageReplayState,
                             SpectrumColdStart, make_coldstart_model)

MODEL = SpectrumColdStart(ColdStartSpec(kind="spectrum"))
PAGES: PageReplayState = PageReplayState(pages=4096)
DEFAULT = make_coldstart_model(ColdStartSpec(kind="constant"))
