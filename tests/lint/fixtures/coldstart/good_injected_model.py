"""REPRO008 negative: cold-start models built per simulation."""

from dataclasses import dataclass, field

from repro.coldstart import (ColdStartSpec, PageReplayState,
                             SpectrumColdStart, make_coldstart_model)


def make_model(spec: ColdStartSpec):
    return make_coldstart_model(spec)


@dataclass
class Simulation:
    model: SpectrumColdStart = field(
        default_factory=lambda: SpectrumColdStart(
            ColdStartSpec(kind="spectrum")))

    def fresh_pages(self, pages: int) -> PageReplayState:
        return PageReplayState(pages=pages)
