"""REPRO011 negative fixture: every wait states its bound or mode."""

POLL_INTERVAL_S = 0.05


def harvest(result, options):
    value = result.get(POLL_INTERVAL_S)
    retries = options.get("retries", 0)
    fallback = options.get("fallback")
    return value, retries, fallback


def rendezvous(event, lock):
    event.wait(timeout=POLL_INTERVAL_S)
    lock.acquire(blocking=True)
    try:
        return True
    finally:
        lock.release()
