"""REPRO007 positive fixture: broad exception handlers in engine code."""


def collect(results, source):
    try:
        results.append(source())
    except Exception:
        results.append(None)


def drain(queue):
    try:
        return queue.pop()
    except (ValueError, BaseException):
        return None


def shutdown(pool):
    try:
        pool.terminate()
    except:  # noqa: E722
        return False
    return True
