"""REPRO007 negative fixture: ``engine/resilience.py`` is the sanctioned
broad-capture point, so the same handlers must stay silent here."""


def execute(task, capture):
    try:
        return task()
    except Exception as exc:
        return capture(exc)
