"""REPRO011 positive fixture: argument-less blocking waits in engine code."""


def harvest(result):
    return result.get()


def rendezvous(event, lock):
    event.wait()
    lock.acquire()
    try:
        return True
    finally:
        lock.release()
