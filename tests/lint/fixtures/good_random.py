"""REPRO001 negative fixture: every generator is explicitly seeded."""

from random import Random

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    sequence = np.random.SeedSequence(entropy=(seed, 104729))
    local = Random(seed)
    return rng.random(), sequence, local.random()
