"""REPRO004 negative fixture: None defaults and default_factory fields."""

from dataclasses import dataclass, field
from typing import List


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc


@dataclass
class SimState:
    history: List[int] = field(default_factory=list)

    _KNOWN_KINDS = frozenset({"load", "store"})
