"""REPRO006 positive inside obs/: host time never timestamps a trace."""

import time


def emit_now():
    return time.time()
