"""REPRO008 negative: tracers built per context, never at import time."""

from dataclasses import dataclass, field

from repro.obs.tracer import Tracer


def make_tracer(clock=None):
    return Tracer(clock=clock)


@dataclass
class Context:
    tracer: Tracer = field(default_factory=Tracer)
