"""REPRO007 positive inside obs/: broad capture would hide sink failures."""


def swallow(sink, event):
    try:
        sink.write(event)
    except Exception:
        return None
