"""REPRO008 positive: module-level observability singletons."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

TRACER = Tracer()
METRICS: MetricsRegistry = MetricsRegistry()
