"""Sanctioned boundary: the one module allowed to read host time."""

import time


class TickClock:
    def now(self):
        return time.time()
