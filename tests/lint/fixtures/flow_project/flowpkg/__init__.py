"""Synthetic sim-path package for interprocedural taint-flow tests."""
