"""Second hop: the actual taint sources."""

import os
import time


def read_time():
    return time.time()


def raw_listing(root):
    return os.listdir(root)


def sorted_listing(root):
    return sorted(os.listdir(root))
