"""Entry points mirroring the sim hot loop of the real package."""

from flowpkg import hop1
from flowpkg.obs.clock import TickClock


def run_invocation(trace):
    """Reaches time.time() through two call hops (hop1 -> hop2)."""
    scale = hop1.jitter()
    return [block * scale for block in trace]


def run_clocked(trace):
    """Reads time only through the sanctioned obs.clock boundary."""
    clock = TickClock()
    start = clock.now()
    return [(block, start) for block in trace]


def run_listing(root):
    """Filesystem-order nondeterminism, one hop away."""
    return hop1.spill_order(root)


def run_sorted_listing(root):
    """The sanitized twin of run_listing: sorted() at the source."""
    return hop1.stable_order(root)
