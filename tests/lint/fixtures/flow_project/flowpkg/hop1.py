"""First hop: no nondeterminism of its own."""

from flowpkg import hop2


def jitter():
    return hop2.read_time() * 2.0


def spill_order(root):
    return hop2.raw_listing(root)


def stable_order(root):
    return hop2.sorted_listing(root)
