"""Tests for cache-key soundness (REPRO009) and worker safety (REPRO010).

The centerpiece is the stale-cache acceptance test: a provider package
whose builder imports a helper module *indirectly*; editing the helper
(a) trips REPRO009 when the closure digest is bypassed, and (b) changes
the fixed ``provider_version()``, invalidating exactly that provider's
cached cells while a control provider's cells stay warm.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine.cache import ResultCache
from repro.engine.job import (
    Job,
    invalidate_fingerprint_caches,
    provider_closure,
    provider_version,
)
from repro.lint import soundness
from repro.lint.graph import ProjectGraph


def _write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


PROVIDER_FILES = {
    "__init__.py": "",
    "provider.py": ("from provpkg import helper\n"
                    "def build(cfg):\n"
                    "    return helper.scale(cfg)\n"),
    "helper.py": ("SCALE = 2\n"
                  "def scale(cfg):\n"
                  "    return cfg * SCALE\n"),
}

CONTROL_FILES = {
    "__init__.py": "",
    "provider.py": "def build(cfg):\n    return cfg\n",
}


@pytest.fixture()
def provider_packages(tmp_path, monkeypatch):
    """Two importable provider packages on sys.path; caches reset."""
    _write_tree(tmp_path / "provpkg", PROVIDER_FILES)
    _write_tree(tmp_path / "ctrlpkg", CONTROL_FILES)
    monkeypatch.syspath_prepend(str(tmp_path))
    invalidate_fingerprint_caches()
    yield tmp_path
    invalidate_fingerprint_caches()


class TestRepro009Synthetic:
    def _graph(self, tmp_path):
        root = _write_tree(tmp_path / "provpkg", PROVIDER_FILES)
        return ProjectGraph.from_package(root, "provpkg")

    def test_bypassed_digest_fires(self, tmp_path):
        graph = self._graph(tmp_path)
        findings = soundness.check_cache_soundness(
            graph, providers=["provpkg.provider"], covered_prefixes=(),
            digested=lambda p: (p,))  # digest only the provider file
        assert findings, "narrowed digest must trip REPRO009"
        assert all(v.rule_id == "REPRO009" for v in findings)
        messages = " ".join(v.message for v in findings)
        assert "provpkg.helper" in messages
        assert "stale" in messages

    def test_full_closure_digest_is_sound(self, tmp_path):
        graph = self._graph(tmp_path)
        findings = soundness.check_cache_soundness(
            graph, providers=["provpkg.provider"], covered_prefixes=(),
            digested=graph.closure)
        assert findings == []

    def test_covered_prefixes_substitute_for_digest(self, tmp_path):
        graph = self._graph(tmp_path)
        findings = soundness.check_cache_soundness(
            graph, providers=["provpkg.provider"],
            covered_prefixes=("provpkg",), digested=lambda p: ())
        assert findings == []

    def test_unknown_provider_is_skipped(self, tmp_path):
        graph = self._graph(tmp_path)
        assert soundness.check_cache_soundness(
            graph, providers=["provpkg.missing"], covered_prefixes=(),
            digested=lambda p: (p,)) == []

    def test_provider_discovery_via_decorator(self, tmp_path):
        root = _write_tree(tmp_path / "dpkg", {
            "__init__.py": "",
            "registry.py": ("def register_config(name):\n"
                            "    def wrap(fn):\n"
                            "        return fn\n"
                            "    return wrap\n"),
            "exp.py": ("from dpkg.registry import register_config\n"
                       "@register_config('x')\n"
                       "def build_x(cfg):\n"
                       "    return cfg\n"),
        })
        graph = ProjectGraph.from_package(root, "dpkg")
        assert soundness.discover_providers(graph) == ("dpkg.exp",)


class TestRepro009EngineCrossValidation:
    """Against the real tree, the default run audits the real engine."""

    @pytest.fixture(scope="class")
    def real_graph(self):
        src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
        return ProjectGraph.from_package(src_root, "repro")

    def test_real_engine_digests_full_closures(self, real_graph):
        assert soundness.check_cache_soundness(real_graph) == []

    def test_real_providers_are_discovered(self, real_graph):
        providers = soundness.discover_providers(real_graph)
        assert "repro.experiments.common" in providers

    def test_bypassing_the_real_digest_fires(self, real_graph):
        # Same graph, same providers -- but pretend provider_version()
        # digested only the provider's own file.  The experiments
        # helpers in each builder's closure escape coverage.
        findings = soundness.check_cache_soundness(
            real_graph, digested=lambda p: (p,))
        assert findings, ("the real providers import helpers outside the "
                          "code_version() subtrees; a single-file digest "
                          "must be flagged")
        assert all(v.rule_id == "REPRO009" for v in findings)


class TestStaleCacheHazard:
    """Acceptance: editing a helper module imported (not directly named)
    by a provider invalidates exactly that provider's cells."""

    def test_closure_includes_indirect_helper(self, provider_packages):
        closure = provider_closure("provpkg.provider")
        assert closure == ("provpkg", "provpkg.helper", "provpkg.provider")

    def test_helper_edit_changes_provider_version(self, provider_packages):
        before = provider_version("provpkg.provider")
        helper = provider_packages / "provpkg" / "helper.py"
        helper.write_text(helper.read_text().replace("SCALE = 2",
                                                     "SCALE = 3"))
        invalidate_fingerprint_caches()
        after = provider_version("provpkg.provider")
        assert before != after

    def test_helper_edit_invalidates_exactly_one_provider(
            self, provider_packages, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        edited = Job.make("fnA", None, {"n": 1}, "hot",
                          provider="provpkg.provider")
        control = Job.make("fnA", None, {"n": 1}, "hot",
                           provider="ctrlpkg.provider")
        key_edited, key_control = edited.key(), control.key()
        cache.put(key_edited, {"result": 1})
        cache.put(key_control, {"result": 2})

        helper = provider_packages / "provpkg" / "helper.py"
        helper.write_text(helper.read_text() + "\nEXTRA = 1\n")
        invalidate_fingerprint_caches()

        # The edited provider addresses a different cell now...
        assert edited.key() != key_edited
        hit, _ = cache.get(edited.key())
        assert not hit
        # ...while the control provider's cell stays warm.
        assert control.key() == key_control
        hit, value = cache.get(control.key())
        assert hit and value == {"result": 2}

    def test_lint_catches_the_same_hazard_when_digest_is_bypassed(
            self, provider_packages):
        # The lint rule and the engine agree: what the fixed engine
        # digests is exactly what the analyzer demands.
        graph = ProjectGraph.from_package(
            provider_packages / "provpkg", "provpkg")
        bypassed = soundness.check_cache_soundness(
            graph, providers=["provpkg.provider"], covered_prefixes=(),
            digested=lambda p: (p,))
        assert any("provpkg.helper" in v.message for v in bypassed)
        sound = soundness.check_cache_soundness(
            graph, providers=["provpkg.provider"], covered_prefixes=(),
            digested=provider_closure)
        assert sound == []


class TestRepro010BoundaryClasses:
    def _graph(self, tmp_path, class_body):
        root = _write_tree(tmp_path / "bpkg", {
            "__init__.py": "",
            "mod.py": class_body,
        })
        return ProjectGraph.from_package(root, "bpkg")

    def test_lambda_class_attribute_fires(self, tmp_path):
        graph = self._graph(tmp_path, (
            "class Carrier:\n"
            "    transform = lambda self, x: x + 1\n"))
        findings = soundness.check_worker_safety(
            graph, boundary=("bpkg.mod:Carrier",), entries=[])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO010"
        assert "lambda" in findings[0].message
        assert "pickle boundary" in findings[0].message

    def test_lock_instance_attribute_fires(self, tmp_path):
        graph = self._graph(tmp_path, (
            "import threading\n"
            "class Carrier:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"))
        findings = soundness.check_worker_safety(
            graph, boundary=("bpkg.mod:Carrier",), entries=[])
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message

    def test_open_handle_instance_attribute_fires(self, tmp_path):
        graph = self._graph(tmp_path, (
            "class Carrier:\n"
            "    def __init__(self, path):\n"
            "        self.fh = open(path)\n"))
        findings = soundness.check_worker_safety(
            graph, boundary=("bpkg.mod:Carrier",), entries=[])
        assert len(findings) == 1
        assert "open()" in findings[0].message

    def test_plain_dataclass_is_clean(self, tmp_path):
        graph = self._graph(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Carrier:\n"
            "    name: str = 'x'\n"
            "    weights = [1, 2, 3]\n"
            "    def __init__(self):\n"
            "        self.total = sum(self.weights)\n"))
        assert soundness.check_worker_safety(
            graph, boundary=("bpkg.mod:Carrier",), entries=[]) == []

    def test_unknown_boundary_spec_is_ignored(self, tmp_path):
        graph = self._graph(tmp_path, "class Carrier:\n    pass\n")
        assert soundness.check_worker_safety(
            graph, boundary=("bpkg.mod:Ghost", "bpkg.gone:Thing"),
            entries=[]) == []


class TestRepro010ModuleState:
    FILES = {
        "__init__.py": "",
        "state.py": ("REGISTRY = {}\n"
                     "TRACE = []\n"
                     "def register(name, value):\n"
                     "    REGISTRY[name] = value\n"),
        "work.py": ("from bpkg import state\n"
                    "from bpkg.state import register\n"
                    "def entry(job):\n"
                    "    return simulate(job)\n"
                    "def simulate(job):\n"
                    "    state.TRACE.append(job)\n"
                    "    return register('last', job)\n"
                    "def shadowed(job):\n"
                    "    TRACE = []\n"
                    "    TRACE.append(job)\n"
                    "    return TRACE\n"),
    }

    def _graph(self, tmp_path):
        root = _write_tree(tmp_path / "bpkg", self.FILES)
        return ProjectGraph.from_package(root, "bpkg")

    def test_worker_reachable_mutations_fire(self, tmp_path):
        findings = soundness.check_worker_safety(
            self._graph(tmp_path), boundary=(), entries=["work:entry"])
        assert len(findings) == 2
        messages = " ".join(v.message for v in findings)
        assert "bpkg.state.TRACE" in messages  # alias.NAME cross-module
        assert "REGISTRY" in messages          # own-module, two hops in
        assert "silently diverge" in messages

    def test_unreachable_mutations_are_silent(self, tmp_path):
        # `shadowed` is never called from the entry; and even as an
        # entry itself, its TRACE is a local, not module state.
        assert soundness.check_worker_safety(
            self._graph(tmp_path), boundary=(),
            entries=["work:shadowed"]) == []

    def test_global_declaration_unshadows(self, tmp_path):
        root = _write_tree(tmp_path / "gpkg", {
            "__init__.py": "",
            "mod.py": ("CACHE = {}\n"
                       "def entry(k, v):\n"
                       "    global CACHE\n"
                       "    CACHE = {}\n"
                       "    CACHE[k] = v\n"),
        })
        graph = ProjectGraph.from_package(root, "gpkg")
        findings = soundness.check_worker_safety(
            graph, boundary=(), entries=["mod:entry"])
        assert len(findings) == 1
        assert "CACHE" in findings[0].message

    def test_import_time_registration_is_silent(self, tmp_path):
        # Module-level registration (decorators running at import) is
        # fine: every worker replays imports identically.
        root = _write_tree(tmp_path / "ipkg", {
            "__init__.py": "",
            "mod.py": ("CONFIGS = {}\n"
                       "def register_config(name):\n"
                       "    def wrap(fn):\n"
                       "        CONFIGS[name] = fn\n"
                       "        return fn\n"
                       "    return wrap\n"
                       "@register_config('hot')\n"
                       "def build(cfg):\n"
                       "    return cfg\n"),
        })
        graph = ProjectGraph.from_package(root, "ipkg")
        # build() is an entry (decorator-marked) but register_config is
        # only called at import time, so no mutation is worker-reachable.
        assert soundness.check_worker_safety(
            graph, boundary=(), entries=[]) == []


class TestRealTreeWorkerSafety:
    def test_real_tree_is_clean(self):
        src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
        graph = ProjectGraph.from_package(src_root, "repro")
        assert soundness.check_worker_safety(graph) == []
