"""Runtime-invariant contract tests.

The acceptance bar: contracts are active in default sim runs, and a
corrupted stats object is caught (hits + misses != accesses, negative
counters, invalid Top-Down sums, cache structural damage, over-stuffed
metadata buffers).
"""

import pytest

from repro.errors import ContractViolationError
from repro.lint import contracts
from repro.core.metadata import MetadataBuffer
from repro.core.regions import RegionGeometry
from repro.sim.cache import SetAssocCache
from repro.sim.core import Simulator
from repro.sim.params import CacheParams, skylake
from repro.sim.stats import AccessStats, HierarchyStats, MemoryTraffic
from repro.sim.topdown import TopDownBreakdown
from repro.units import KB


class TestEnableDisable:
    def test_enabled_by_default(self):
        assert contracts.enabled()

    def test_disabled_context_manager(self):
        corrupt = AccessStats(inst_hits=1)
        corrupt.inst_misses = -3
        with contracts.disabled():
            corrupt.validate("l1i")  # no raise while suspended
        assert contracts.enabled()
        with pytest.raises(ContractViolationError):
            corrupt.validate("l1i")

    def test_set_enabled_returns_previous(self):
        previous = contracts.set_enabled(False)
        try:
            assert previous is True
            assert contracts.set_enabled(True) is False
        finally:
            contracts.set_enabled(True)


class TestAccessStatsContracts:
    def test_clean_stats_pass(self):
        stats = AccessStats(inst_hits=10, inst_misses=2, data_hits=5)
        stats.validate("l1i")

    def test_negative_counter_caught(self):
        stats = AccessStats(inst_hits=10)
        stats.data_misses = -1
        with pytest.raises(ContractViolationError, match="negative"):
            stats.validate("l1d")

    def test_unbalanced_accessor_caught(self):
        class LyingStats(AccessStats):
            @property
            def accesses(self):
                return 999  # disagrees with hits + misses

        with pytest.raises(ContractViolationError, match="accesses"):
            contracts.check_access_stats(LyingStats(inst_hits=1), "l2")

    def test_prefetch_hits_cannot_exceed_demand(self):
        stats = AccessStats(inst_hits=2, inst_misses=1)
        stats.inst_prefetch_hits = 7
        with pytest.raises(ContractViolationError, match="prefetch"):
            stats.validate("l2")


class TestTrafficAndTopdownContracts:
    def test_negative_demand_traffic_caught(self):
        traffic = MemoryTraffic(demand_inst=-64)
        with pytest.raises(ContractViolationError, match="demand_inst"):
            traffic.validate()

    def test_negative_topdown_component_caught(self):
        breakdown = TopDownBreakdown(retiring=10.0, backend_bound=-5.0)
        with pytest.raises(ContractViolationError, match="backend_bound"):
            contracts.check_topdown(breakdown)

    def test_corrupted_total_caught(self):
        class LyingBreakdown(TopDownBreakdown):
            @property
            def total_cycles(self):
                return 12345.0

        with pytest.raises(ContractViolationError, match="total_cycles"):
            contracts.check_topdown(LyingBreakdown(retiring=1.0))

    def test_hierarchy_validate_names_the_level(self):
        stats = HierarchyStats()
        stats.llc.data_hits = -2
        with pytest.raises(ContractViolationError, match="llc"):
            stats.validate()


class TestCacheContracts:
    def _cache(self):
        return SetAssocCache(CacheParams("L1X", size=4 * KB, assoc=4,
                                         latency=1))

    def test_clean_cache_passes_deep_check(self):
        cache = self._cache()
        for block in range(100):
            cache.insert(block)
        cache.check_invariants(deep=True)

    def test_overfull_set_caught(self):
        cache = self._cache()
        cache._sets[0].extend(range(0, 1024, 16))  # 64 lines in a 4-way set
        with pytest.raises(ContractViolationError, match="4-way"):
            cache.check_invariants()

    def test_duplicate_tag_caught(self):
        cache = self._cache()
        cache.insert(0)
        cache._sets[0].append(0)
        with pytest.raises(ContractViolationError, match="duplicate"):
            cache.check_invariants(deep=True)

    def test_stale_prefetch_ledger_caught(self):
        cache = self._cache()
        cache.insert(5, prefetch=True)
        cache._sets[5 & cache._set_mask].remove(5)  # evict behind its back
        with pytest.raises(ContractViolationError):
            cache.check_invariants(deep=True)

    def test_flush_runs_the_check(self):
        cache = self._cache()
        cache._sets[0].extend(range(0, 1024, 16))
        with pytest.raises(ContractViolationError):
            cache.flush()


class TestMetadataContracts:
    def _buffer(self, limit=1 * KB):
        return MetadataBuffer(geometry=RegionGeometry(1 * KB),
                              limit_bytes=limit)

    def test_append_rejects_empty_vector(self):
        buffer = self._buffer()
        with pytest.raises(ContractViolationError, match="at least one"):
            buffer.append((1, 0))

    def test_append_rejects_oversized_vector(self):
        buffer = self._buffer()
        with pytest.raises(ContractViolationError, match="wider"):
            buffer.append((1, 1 << 16))  # 1KB region has 16 lines

    def test_overstuffed_buffer_caught(self):
        buffer = self._buffer(limit=8)  # one 54-bit entry fits
        buffer._entries.extend((region, 1) for region in range(50))
        with pytest.raises(ContractViolationError, match="limit register"):
            buffer.validate()

    def test_replay_count_mismatch_caught(self):
        with pytest.raises(ContractViolationError, match="record phase"):
            contracts.check_replay_counts(
                entries_replayed=3, recorded_entries=4,
                lines_prefetched=10, duplicates_skipped=0, unique_blocks=10,
            )


class TestContractsActiveInDefaultRuns:
    def test_core_run_invokes_invocation_contract(self, monkeypatch):
        """Simulator.run checks every result without opting in."""
        from repro.workloads import FunctionModel, get_profile

        calls = []
        real_check = contracts.check_invocation
        monkeypatch.setattr("repro.sim.core.contracts.check_invocation",
                            lambda result: (calls.append(result),
                                            real_check(result)))
        core = Simulator(skylake())
        profile = get_profile("Auth-G").scaled(0.05)
        result = core.run(FunctionModel(profile, seed=3).invocation_trace(0))
        assert calls == [result]
