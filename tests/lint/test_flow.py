"""Tests for the interprocedural nondeterminism taint analysis.

The acceptance fixture (``tests/lint/fixtures/flow_project``) is a
miniature of the real package: entry points in ``flowpkg.entry`` reach
``time.time()`` / ``os.listdir()`` through two call hops, and a
sanctioned ``flowpkg.obs.clock`` boundary owns the one legitimate host
time read.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import flow
from repro.lint.graph import ProjectGraph

FLOW_ROOT = Path(__file__).parent / "fixtures" / "flow_project" / "flowpkg"


@pytest.fixture(scope="module")
def graph() -> ProjectGraph:
    return ProjectGraph.from_package(FLOW_ROOT, "flowpkg")


def _analyze(graph, *entries, **kwargs):
    return flow.analyze(graph, entries=list(entries), **kwargs)


class TestEntryResolution:
    def test_suffix_matched_specs(self, graph):
        entries = flow.resolve_entries(graph, ["entry:run_invocation"])
        assert entries == ("flowpkg.entry:run_invocation",)

    def test_full_module_specs(self, graph):
        entries = flow.resolve_entries(
            graph, ["flowpkg.entry:run_listing"])
        assert entries == ("flowpkg.entry:run_listing",)

    def test_unknown_spec_resolves_to_nothing(self, graph):
        assert flow.resolve_entries(graph, ["entry:no_such_fn"]) == ()

    def test_decorator_marked_entries(self, tmp_path):
        pkg = tmp_path / "deco"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "builders.py").write_text(
            "import time\n"
            "def register_config(name):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n"
            "@register_config('hot')\n"
            "def build_hot(cfg):\n"
            "    return time.time()\n"
            "def unregistered(cfg):\n"
            "    return time.time()\n")
        graph = ProjectGraph.from_package(pkg, "deco")
        entries = flow.resolve_entries(graph, [])
        assert entries == ("deco.builders:build_hot",)
        findings = flow.analyze(graph, entries=[])
        assert len(findings) == 1
        assert "build_hot" in findings[0].message


class TestTwoHopTaint:
    """Acceptance: a sim-path function reaching ``time.time()`` through
    two call hops is flagged; the same value through ``obs.clock`` is
    not."""

    def test_wall_clock_two_hops_is_flagged(self, graph):
        findings = _analyze(graph, "entry:run_invocation")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == "REPRO006"
        assert "wall-clock" in finding.message
        assert "run_invocation" in finding.message
        assert ("run_invocation -> jitter -> read_time -> time.time()"
                in finding.message)
        assert finding.path.endswith("hop2.py")

    def test_sanctioned_clock_boundary_is_silent(self, graph):
        assert _analyze(graph, "entry:run_clocked") == []

    def test_witness_chain_is_shortest(self, graph):
        paths = flow.trace_taint(graph, entries=["entry:run_invocation"])
        assert len(paths) == 1
        assert paths[0].chain == (
            "flowpkg.entry:run_invocation",
            "flowpkg.hop1:jitter",
            "flowpkg.hop2:read_time",
        )
        assert paths[0].source.kind == "wall-clock"
        assert paths[0].source.call == "time.time"

    def test_entry_inside_sanctioned_module_never_starts(self, graph):
        # The boundary's own time.time() must not be reported even when
        # the boundary itself is named as an entry point.
        assert _analyze(graph, "obs.clock:TickClock.now") == []


class TestFilesystemOrder:
    def test_raw_listing_flagged(self, graph):
        findings = _analyze(graph, "entry:run_listing")
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO006"
        assert "fs-order" in findings[0].message
        assert "os.listdir" in findings[0].message

    def test_sorted_listing_is_silent(self, graph):
        assert _analyze(graph, "entry:run_sorted_listing") == []


class TestSourceClassification:
    @pytest.mark.parametrize("dotted,kind", [
        ("time.time", "wall-clock"),
        ("time.perf_counter", "wall-clock"),
        ("datetime.datetime.now", "wall-clock"),
        ("uuid.uuid4", "wall-clock"),
        ("os.urandom", "wall-clock"),
        ("random.random", "unseeded-rng"),
        ("random.shuffle", "unseeded-rng"),
        ("numpy.random.rand", "unseeded-rng"),
        ("id", "object-identity"),
        ("hash", "str-hash"),
    ])
    def test_taint_kinds(self, dotted, kind):
        assert flow.classify_call(dotted, sanitized=False) == kind

    @pytest.mark.parametrize("dotted", [
        "random.Random", "numpy.random.default_rng", "sorted", "len",
        "math.sqrt", "json.dumps",
    ])
    def test_benign_calls(self, dotted):
        assert flow.classify_call(dotted, sanitized=False) is None

    def test_sanitized_listing_is_benign(self):
        assert flow.classify_call("os.listdir", sanitized=True) is None
        assert flow.classify_call("os.listdir", sanitized=False) == "fs-order"


def _mini_graph(tmp_path, body, package="mini"):
    pkg = tmp_path / package
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(body)
    return ProjectGraph.from_package(pkg, package)


class TestSetIteration:
    def test_iterating_a_set_literal_is_flagged(self, tmp_path):
        graph = _mini_graph(tmp_path, (
            "def walk():\n"
            "    out = []\n"
            "    for name in {'a', 'b', 'c'}:\n"
            "        out.append(name)\n"
            "    return out\n"))
        findings = flow.analyze(graph, entries=["mod:walk"])
        assert len(findings) == 1
        assert "set-iteration" in findings[0].message

    def test_iterating_named_set_is_flagged(self, tmp_path):
        graph = _mini_graph(tmp_path, (
            "def walk(items):\n"
            "    uniq = set(items)\n"
            "    for x in uniq:\n"
            "        yield x\n"))
        findings = flow.analyze(graph, entries=["mod:walk"])
        assert len(findings) == 1
        assert "iter(uniq)" in findings[0].message

    def test_iterating_sorted_set_is_silent(self, tmp_path):
        graph = _mini_graph(tmp_path, (
            "def walk(items):\n"
            "    uniq = set(items)\n"
            "    for x in sorted(uniq):\n"
            "        yield x\n"))
        assert flow.analyze(graph, entries=["mod:walk"]) == []


class TestUnseededRng:
    def test_module_level_rng_two_hops(self, tmp_path):
        pkg = tmp_path / "rng"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text(
            "from rng import b\n"
            "def entry():\n"
            "    return b.middle()\n")
        (pkg / "b.py").write_text(
            "import random\n"
            "def middle():\n"
            "    return random.random()\n")
        graph = ProjectGraph.from_package(pkg, "rng")
        findings = flow.analyze(graph, entries=["a:entry"],
                                dedup_per_file=False)
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO001"
        assert "unseeded-rng" in findings[0].message

    def test_seeded_generator_is_silent(self, tmp_path):
        graph = _mini_graph(tmp_path, (
            "import random\n"
            "def entry(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"))
        assert flow.analyze(graph, entries=["mod:entry"]) == []


class TestDedupAgainstPerFileRules:
    """Sources in files the scoped per-file pass already covers are not
    re-reported by the whole-program pass."""

    def _scoped_graph(self, tmp_path):
        # A package literally named `repro` puts sim/hot.py into the
        # `sim/` scope that the per-file WallClock rule covers.
        pkg = tmp_path / "repro"
        (pkg / "sim").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "entry.py").write_text(
            "from repro.sim import hot\n"
            "def run():\n"
            "    return hot.step()\n")
        (pkg / "sim" / "__init__.py").write_text("")
        (pkg / "sim" / "hot.py").write_text(
            "import time\n"
            "def step():\n"
            "    return time.time()\n")
        return ProjectGraph.from_package(pkg, "repro")

    def test_deduped_by_default(self, tmp_path):
        graph = self._scoped_graph(tmp_path)
        assert flow.analyze(graph, entries=["entry:run"]) == []

    def test_reported_without_dedup(self, tmp_path):
        graph = self._scoped_graph(tmp_path)
        findings = flow.analyze(graph, entries=["entry:run"],
                                dedup_per_file=False)
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO006"

    def test_fixture_tree_is_outside_per_file_scopes(self, graph):
        # flow_project files are not under sim/ etc., so dedup never
        # hides the acceptance findings.
        findings = flow.analyze(graph, entries=["entry:run_invocation"])
        assert len(findings) == 1


class TestDeterminism:
    def test_analysis_output_is_stable(self, graph):
        entries = ["entry:run_invocation", "entry:run_listing",
                   "entry:run_clocked", "entry:run_sorted_listing"]
        first = flow.analyze(graph, entries=entries)
        second = flow.analyze(graph, entries=entries)
        assert [v.message for v in first] == [v.message for v in second]
        assert len(first) == 2

    def test_real_tree_is_clean(self):
        src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
        real = ProjectGraph.from_package(src_root, "repro")
        assert flow.analyze(real) == []
