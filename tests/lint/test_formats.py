"""Tests for machine-readable output, baselines, and the CLI plumbing
that ties them together (``--format``, ``--write-baseline``,
``--changed-only``), plus the whole-program performance budget."""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

import pytest

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.cli import main
from repro.lint.engine import Violation
from repro.lint.formats import render_json, render_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


def _violation(rule="REPRO001", path="src/repro/sim/core.py", line=10,
               message="unseeded random.random()") -> Violation:
    return Violation(rule_id=rule, severity="error", path=path, line=line,
                     col=4, message=message)


class TestRenderJson:
    def test_document_shape(self):
        doc = json.loads(render_json(
            [_violation()], baselined=[_violation(line=99)],
            files=3, fixes_applied=1))
        assert doc["version"] == 1
        assert doc["files"] == 3
        assert doc["fixes_applied"] == 1
        assert doc["summary"] == {"total": 1, "errors": 1, "warnings": 0,
                                  "grandfathered": 1}
        entry = doc["violations"][0]
        assert entry["rule"] == "REPRO001"
        assert entry["line"] == 10
        assert entry["col"] == 5  # 1-indexed for humans
        assert "baselined" not in entry
        assert doc["baselined"][0]["baselined"] is True

    def test_canonical_output_is_byte_stable(self):
        violations = [_violation(), _violation(rule="REPRO006", line=2)]
        assert render_json(violations) == render_json(list(violations))


class TestRenderSarif:
    def test_document_shape(self):
        doc = json.loads(render_sarif(
            [_violation()], rule_descriptions={"REPRO001": "unseeded rng"}))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert rules["REPRO001"]["shortDescription"]["text"] == "unseeded rng"
        result = run["results"][0]
        assert result["ruleId"] == "REPRO001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"] == {"startLine": 10, "startColumn": 5}

    def test_rules_cover_descriptions_even_without_findings(self):
        doc = json.loads(render_sarif([], rule_descriptions={
            "REPRO009": "cache-key soundness"}))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["REPRO009"]
        assert doc["runs"][0]["results"] == []


class TestBaseline:
    def test_fingerprint_is_line_independent(self):
        assert fingerprint(_violation(line=10)) == \
            fingerprint(_violation(line=200))

    def test_fingerprint_distinguishes_rule_path_message(self):
        base = fingerprint(_violation())
        assert fingerprint(_violation(rule="REPRO006")) != base
        assert fingerprint(_violation(path="src/other.py")) != base
        assert fingerprint(_violation(message="different")) != base

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_write_load_roundtrip(self, tmp_path):
        violations = [_violation(), _violation(line=20),
                      _violation(rule="REPRO006")]
        path = tmp_path / "base.json"
        Baseline.from_violations(violations).write(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        fresh, grandfathered = loaded.partition(violations)
        assert fresh == []
        assert len(grandfathered) == 3

    def test_partition_respects_per_fingerprint_counts(self):
        # Two identical findings baselined; a third occurrence is fresh.
        baseline = Baseline.from_violations(
            [_violation(line=1), _violation(line=2)])
        fresh, grandfathered = baseline.partition(
            [_violation(line=1), _violation(line=2), _violation(line=3)])
        assert len(grandfathered) == 2
        assert len(fresh) == 1

    def test_written_file_is_reviewable(self, tmp_path):
        path = tmp_path / "base.json"
        Baseline.from_violations([_violation()]).write(path)
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        (entry,) = doc["findings"].values()
        assert entry["rule"] == "REPRO001"
        assert entry["count"] == 1
        assert "unseeded" in entry["message"]


BAD_SOURCE = ("import random\n"
              "def draw():\n"
              "    return random.random()\n")


@pytest.fixture()
def bad_tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


class TestCliFormats:
    def test_json_format_violating_tree(self, bad_tree, capsys):
        exit_code = main([str(bad_tree), "--format", "json",
                          "--no-baseline"])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert doc["summary"]["total"] == 1
        assert doc["violations"][0]["rule"] == "REPRO001"

    def test_json_format_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        exit_code = main([str(tmp_path), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert doc["summary"]["total"] == 0
        assert doc["files"] == 1

    def test_sarif_format(self, bad_tree, capsys):
        exit_code = main([str(bad_tree), "--format", "sarif",
                          "--no-baseline"])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["REPRO001"]


class TestCliBaseline:
    def test_write_then_pass(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_tree), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # Grandfathered finding no longer fails the gate...
        exit_code = main([str(bad_tree), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "grandfathered" in out
        # ...unless the baseline is disabled.
        assert main([str(bad_tree), "--baseline", str(baseline),
                     "--no-baseline"]) == 1

    def test_new_finding_still_fails(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(bad_tree), "--write-baseline",
                     "--baseline", str(baseline)]) == 0
        (bad_tree / "worse.py").write_text(
            "import random\ndef roll():\n    return random.randint(1, 6)\n")
        capsys.readouterr()
        exit_code = main([str(bad_tree), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "worse.py" in out
        assert "bad.py" not in out  # grandfathered, not re-reported

    def test_json_reports_grandfathered(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(bad_tree), "--write-baseline", "--baseline",
              str(baseline)])
        capsys.readouterr()
        exit_code = main([str(bad_tree), "--format", "json",
                          "--baseline", str(baseline)])
        doc = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert doc["summary"]["grandfathered"] == 1
        assert doc["baselined"][0]["baselined"] is True


class TestAuxiliaryTargets:
    def test_tests_dir_gets_aux_rules_only(self, tmp_path, capsys):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        # REPRO004 (mutable default) is in the aux set and normally
        # scope-restricted; REPRO003 (magic literal) is not in the set.
        (tests_dir / "helper.py").write_text(
            "def record(x, acc=[]):\n"
            "    acc.append(x)\n"
            "    return acc\n")
        (tests_dir / "sizes.py").write_text(
            "def cache_bytes():\n    return 4096\n")
        exit_code = main([str(tests_dir), "--no-baseline"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "REPRO004" in out
        assert "REPRO003" not in out

    def test_fixture_subtrees_are_skipped(self, tmp_path, capsys):
        target = tmp_path / "tests" / "fixtures" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_SOURCE)
        exit_code = main([str(tmp_path / "tests"), "--no-baseline"])
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out


class TestChangedOnly:
    def _git(self, cwd, *argv):
        subprocess.run(["git", *argv], cwd=cwd, check=True,
                       capture_output=True)

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "config", "user.email", "lint@test")
        self._git(tmp_path, "config", "user.name", "lint")
        return tmp_path

    def test_committed_violations_are_skipped(self, tmp_path, monkeypatch,
                                              capsys):
        repo = self._repo(tmp_path)
        (repo / "old.py").write_text(BAD_SOURCE)
        self._git(repo, "add", "old.py")
        self._git(repo, "commit", "-qm", "seed")
        monkeypatch.chdir(repo)
        exit_code = main([".", "--changed-only"])
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_changed_files_are_linted(self, tmp_path, monkeypatch, capsys):
        repo = self._repo(tmp_path)
        (repo / "old.py").write_text("X = 1\n")
        self._git(repo, "add", "old.py")
        self._git(repo, "commit", "-qm", "seed")
        (repo / "fresh.py").write_text(BAD_SOURCE)  # untracked
        monkeypatch.chdir(repo)
        exit_code = main([".", "--changed-only"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "fresh.py" in out


class TestWholeProgramBudget:
    def test_full_repo_lint_under_ten_seconds(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        start = time.perf_counter()
        exit_code = main(["src", "tests", "benchmarks", "examples",
                          "--quiet"])
        elapsed = time.perf_counter() - start
        capsys.readouterr()
        assert exit_code == 0
        assert elapsed < 10.0, f"full-repo lint took {elapsed:.1f}s"

    def test_whole_program_rules_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO009" in out
        assert "REPRO010" in out
        assert "whole-program" in out
