"""CLI tests, including the tier-1 gate: the shipped tree must lint clean."""

import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


class TestRepoGate:
    def test_src_tree_lints_clean(self):
        """Tier-1 gate: ``python -m repro.lint src/`` exits 0 on the repo."""
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0, (
            f"repro.lint found violations:\n{result.stdout}{result.stderr}"
        )
        assert "clean" in result.stdout


class TestCliBehaviour:
    def test_fixture_tree_fails_with_violations(self, capsys):
        exit_code = main([str(FIXTURES)])
        captured = capsys.readouterr().out
        assert exit_code == 1
        for rule_id in ("REPRO001", "REPRO002", "REPRO003", "REPRO004",
                        "REPRO005", "REPRO006", "REPRO007", "REPRO008"):
            assert rule_id in captured

    def test_list_rules(self, capsys):
        exit_code = main(["--list-rules"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for rule_id in ("REPRO001", "REPRO002", "REPRO003", "REPRO004",
                        "REPRO005", "REPRO006", "REPRO007", "REPRO008"):
            assert rule_id in captured

    def test_missing_path_is_an_error_not_clean(self, tmp_path, capsys):
        """A typo'd path must not report clean — that would pass CI silently."""
        exit_code = main([str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no such file or directory" in captured.err

    def test_clean_path_exits_zero(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("X = 1\n")
        exit_code = main([str(tmp_path)])
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_only_lets_warnings_pass(self, tmp_path, capsys):
        target = tmp_path / "sim" / "sizes.py"
        target.parent.mkdir()
        target.write_text("def f():\n    return 4096\n")
        assert main([str(tmp_path)]) == 1
        capsys.readouterr()
        assert main([str(tmp_path), "--errors-only"]) == 0

    def test_fix_rewrites_file_in_place(self, tmp_path, capsys):
        target = tmp_path / "sim" / "listing.py"
        target.parent.mkdir()
        shutil.copy(FIXTURES / "sim" / "bad_wallclock.py", target)
        exit_code = main([str(tmp_path), "--fix"])
        captured = capsys.readouterr().out
        assert "applied 1 autofix" in captured
        assert "sorted(os.listdir(directory))" in target.read_text()
        # time.time() has no autofix, so the tree still fails.
        assert exit_code == 1
        assert "REPRO006" in captured
