"""Tests for the declared reproduction bands."""

import pytest

from repro.experiments.paper_bands import BANDS, Band, verify


class TestBandDefinitions:
    def test_paper_values_inside_their_own_bands_where_expected(self):
        """A band should generally contain the paper's value; exceptions
        are deliberate (documented in EXPERIMENTS.md)."""
        exceptions = set()
        for key, band in BANDS.items():
            if key in exceptions:
                continue
            assert band.low <= band.paper_value <= band.high, key

    def test_bands_are_well_formed(self):
        for band in BANDS.values():
            assert band.low <= band.high, band.key
            assert band.description
            assert band.figure

    def test_every_figure_with_measurements_is_covered(self):
        figures = {band.figure for band in BANDS.values()}
        for expected in ("Fig. 1", "Fig. 2", "Fig. 4", "Fig. 5b", "Fig. 6a",
                         "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                         "Fig. 13", "Table 3"):
            assert expected in figures

    def test_headline_numbers_declared(self):
        assert BANDS["fig10.jukebox_geomean"].paper_value == 0.187
        assert BANDS["fig10.perfect_geomean"].paper_value == 0.31
        assert BANDS["fig4.fetch_latency_share"].paper_value == 0.56


class TestBandChecks:
    def test_check_inside(self):
        band = Band("k", "F", "d", 1.0, 0.5, 1.5)
        assert band.check(1.2)
        assert not band.check(1.6)

    def test_describe_includes_status(self):
        band = Band("k", "F", "d", 1.0, 0.5, 1.5, unit="x")
        assert "OK" in band.describe(1.0)
        assert "OUT OF BAND" in band.describe(9.0)


class TestVerify:
    def test_verify_pass_and_fail(self):
        report = verify({
            "fig10.jukebox_geomean": 0.19,   # in band
            "fig10.perfect_geomean": 0.95,   # out of band
        })
        assert report.passed == ["fig10.jukebox_geomean"]
        assert report.failed == ["fig10.perfect_geomean"]
        assert not report.all_passed
        assert "OUT OF BAND" in report.render()

    def test_verify_unknown_key_raises(self):
        with pytest.raises(KeyError):
            verify({"fig99.bogus": 1.0})

    def test_verify_subset_of_keys(self):
        report = verify({"fig10.jukebox_geomean": 0.19},
                        keys=["fig10.jukebox_geomean",
                              "fig10.perfect_geomean"])
        assert report.checked == ["fig10.jukebox_geomean"]
