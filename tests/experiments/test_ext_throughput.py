"""Tests for the throughput extension experiment."""

import pytest

from repro.experiments import ext_throughput
from repro.experiments.common import RunConfig

MICRO = RunConfig(invocations=3, warmup=1, instruction_scale=0.15)


@pytest.fixture(scope="module")
def result():
    return ext_throughput.run(MICRO, functions=["Auth-G", "ProdL-G"])


class TestThroughput:
    def test_uplift_positive(self, result):
        assert result.geomean_uplift > 0.03
        for e in result.entries:
            assert e.capacity_uplift > 0

    def test_rates_consistent_with_cycles(self, result):
        e = result.entries[0]
        ratio = (e.rate_per_core(result.freq_ghz, "jukebox")
                 / e.rate_per_core(result.freq_ghz, "baseline"))
        assert ratio == pytest.approx(1.0 + e.capacity_uplift)

    def test_server_rate_scales_with_cores(self):
        r = ext_throughput.run(MICRO, functions=["Auth-G"], cores=20)
        r2 = ext_throughput.run(MICRO, functions=["Auth-G"], cores=10)
        assert r.server_rate("baseline") == pytest.approx(
            2 * r2.server_rate("baseline"))

    def test_service_time_microseconds_plausible(self, result):
        """Short-running functions: tens to hundreds of microseconds at
        the micro trace scale."""
        for e in result.entries:
            assert 5 < e.service_time_us(result.freq_ghz, "baseline") < 2000

    def test_render(self, result):
        out = ext_throughput.render(result)
        assert "capacity" in out and "GEOMEAN" in out
