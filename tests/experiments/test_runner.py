"""Tests for the lukewarm-repro CLI."""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import (
    EXPERIMENTS,
    Experiment,
    build_parser,
    default_cache_dir,
    main,
    run_experiment,
)
from repro.experiments.common import RunConfig


@pytest.fixture
def boom_experiment(monkeypatch):
    """Register a registry entry whose run() always raises."""
    def explode(cfg, **kwargs):
        raise RuntimeError("injected experiment failure")

    exp = Experiment("boom", "always fails", explode, lambda result: "")
    monkeypatch.setitem(EXPERIMENTS, "boom", exp)
    return exp


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {f"fig{n:02d}" for n in (1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13)}
        expected |= {"table1", "table2", "table3", "throughput", "fleet",
                     "spectrum"}
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_has_run_and_render(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.run)
            assert callable(exp.render)
            assert exp.description

    def test_experiments_advertise_their_sweeps(self):
        assert EXPERIMENTS["fig10"].configs == ("baseline", "jukebox",
                                                "perfect")
        assert EXPERIMENTS["fig05"].configs == ("reference", "baseline")
        assert EXPERIMENTS["table2"].configs == ()


class TestParser:
    def test_parses_names_and_flags(self):
        args = build_parser().parse_args(["fig10", "--fast", "--seed", "3"])
        assert args.experiments == ["fig10"]
        assert args.fast
        assert args.seed == 3

    def test_backend_flag(self):
        args = build_parser().parse_args(["fig10", "--backend", "scalar"])
        assert args.backend == "scalar"
        assert build_parser().parse_args(["fig10"]).backend == "columnar"

    def test_backend_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--backend", "gpu"])
        assert "scalar" in capsys.readouterr().err

    def test_functions_filter(self):
        args = build_parser().parse_args(
            ["fig10", "--functions", "Auth-G", "Pay-N"])
        assert args.functions == ["Auth-G", "Pay-N"]

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--jobs", "4", "--cache-dir", "/tmp/x",
             "--no-cache", "--json"])
        assert args.jobs == 4
        assert args.cache_dir == Path("/tmp/x")
        assert args.no_cache
        assert args.as_json

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert not args.as_json
        assert args.retries == 0
        assert not args.keep_going
        assert args.inject_faults is None

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--retries", "2", "--keep-going",
             "--inject-fault", "fail:#3", "--inject-fault", "kill:#2",
             "--maxtasksperchild", "8"])
        assert args.retries == 2
        assert args.keep_going
        assert args.inject_faults == ["fail:#3", "kill:#2"]
        assert args.maxtasksperchild == 8

    def test_observability_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig10", "--trace", str(tmp_path / "t.jsonl"),
             "--metrics-out", str(tmp_path / "m.json")])
        assert args.trace == tmp_path / "t.jsonl"
        assert args.metrics_out == tmp_path / "m.json"

    def test_observability_flag_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.trace is None
        assert args.metrics_out is None

    def test_jobs_rejected_at_parse_time(self, capsys):
        """--jobs 0 is a usage error argparse itself reports (exit 2)."""
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["fig10", "--jobs", "0"])
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_retries_reject_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["fig10", "--retries", "-1"])
        assert exc.value.code == 2
        assert "--retries" in capsys.readouterr().err


class TestCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("LUKEWARM_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("LUKEWARM_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "lukewarm-repro"


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table3" in out

    def test_list_shows_swept_configs(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[baseline, jukebox, perfect]" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_rejects_nonpositive_jobs(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--jobs", "0"])
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_rejects_malformed_fault_spec(self, capsys):
        assert main(["table2", "--inject-fault", "explode:#1"]) == 2
        assert "--inject-fault" in capsys.readouterr().err

    def test_rejects_no_cache_with_cache_dir(self, capsys, tmp_path):
        """An explicit --cache-dir contradicts --no-cache; silently
        dropping either would mislead cache benchmarking."""
        argv = ["table2", "--no-cache", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--no-cache" in err and "--cache-dir" in err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "engine: no simulation cells" in out

    def test_json_output(self, capsys):
        assert main(["table2", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["experiment"] == "table2"
        assert "Table 2" in records[0]["report"]
        assert records[0]["engine"]["cells"] == 0

    def test_warm_cache_run_skips_simulation(self, capsys, tmp_path):
        argv = ["fig06", "--fast", "--functions", "Auth-G",
                "--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)[0]["engine"]
        assert cold["simulated"] > 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)[0]["engine"]
        assert warm["simulated"] == 0
        assert warm["cache_hits"] == cold["simulated"]

    def test_trace_and_metrics_outputs(self, capsys, tmp_path):
        """--trace and --metrics-out write schema-valid files whose
        aggregates agree with the engine stats the JSON report carries."""
        from repro.obs.summarize import read_trace, summarize

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        argv = ["fig06", "--fast", "--functions", "Auth-G",
                "--cache-dir", str(tmp_path / "cache"), "--json",
                "--trace", str(trace), "--metrics-out", str(metrics)]
        assert main(argv) == 0
        captured = capsys.readouterr()
        engine_stats = json.loads(captured.out)[0]["engine"]
        assert f"trace written to {trace}" in captured.err
        # read_trace schema-validates every line; summarize cross-checks
        # the stream against its own sweep.end records.
        summary = summarize(read_trace(trace))
        assert summary.cache_hits == engine_stats["cache_hits"]
        assert summary.cache_misses == engine_stats["simulated"]
        assert summary.retries == engine_stats["retries"]
        assert summary.jobs == engine_stats["cells"]
        exported = json.loads(metrics.read_text(encoding="utf-8"))
        assert exported["schema"] == 1
        assert exported["counters"]["engine.jobs"] == engine_stats["cells"]
        assert exported["counters"]["engine.misses"] == \
            engine_stats["simulated"]
        assert "engine.hit_rate" in exported["gauges"]
        assert exported["histograms"]["engine.sweep_jobs"]["count"] >= 1

    def test_footer_reports_events_without_trace_flag(self, capsys,
                                                      tmp_path):
        """The always-on in-memory collector feeds the footer even when
        no --trace file was requested."""
        argv = ["fig06", "--fast", "--functions", "Auth-G",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "obs: " in out and "cache.miss=" in out

    def test_json_stdout_stays_pure_json_with_tracing(self, capsys,
                                                      tmp_path):
        argv = ["fig06", "--fast", "--functions", "Auth-G",
                "--cache-dir", str(tmp_path / "cache"), "--json",
                "--trace", str(tmp_path / "trace.jsonl")]
        assert main(argv) == 0
        json.loads(capsys.readouterr().out)  # footer must not pollute it

    def test_failing_experiment_exits_3(self, capsys, boom_experiment):
        assert main(["boom"]) == 3
        err = capsys.readouterr().err
        assert "boom FAILED" in err
        assert "injected experiment failure" in err
        assert "1 experiment(s) failed: boom" in err

    def test_failure_stops_the_run_by_default(self, capsys, boom_experiment):
        assert main(["boom", "table2"]) == 3
        assert "Table 2" not in capsys.readouterr().out

    def test_keep_going_finishes_remaining(self, capsys, boom_experiment):
        assert main(["boom", "table2", "--keep-going"]) == 3
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        assert "1 experiment(s) failed: boom" in captured.err

    def test_json_records_the_failure(self, capsys, boom_experiment):
        assert main(["boom", "--json"]) == 3
        records = json.loads(capsys.readouterr().out)
        assert records[0]["report"] is None
        assert "RuntimeError" in records[0]["error"]
        assert records[0]["engine"]["failures"] == 0

    def test_json_success_has_null_error(self, capsys):
        assert main(["table2", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["error"] is None
        assert records[0]["engine"]["retries"] == 0

    def test_run_experiment_helper(self):
        cfg = RunConfig(invocations=3, warmup=1, instruction_scale=0.15)
        out = run_experiment("fig06", cfg, functions=["Auth-G"])
        assert "Figure 6a" in out
