"""Tests for the lukewarm-repro CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, main, run_experiment
from repro.experiments.common import RunConfig


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {f"fig{n:02d}" for n in (1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13)}
        expected |= {"table1", "table2", "table3", "throughput"}
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_has_run_and_render(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.run)
            assert callable(exp.render)
            assert exp.description


class TestParser:
    def test_parses_names_and_flags(self):
        args = build_parser().parse_args(["fig10", "--fast", "--seed", "3"])
        assert args.experiments == ["fig10"]
        assert args.fast
        assert args.seed == 3

    def test_functions_filter(self):
        args = build_parser().parse_args(
            ["fig10", "--functions", "Auth-G", "Pay-N"])
        assert args.functions == ["Auth-G", "Pay-N"]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_experiment_helper(self):
        cfg = RunConfig(invocations=3, warmup=1, instruction_scale=0.15)
        out = run_experiment("fig06", cfg, functions=["Auth-G"])
        assert "Figure 6a" in out
