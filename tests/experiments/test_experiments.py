"""Micro-scale runs of every experiment module: structure and rendering.

These use a heavily scaled-down RunConfig and a 2-3 function subset; the
full-scale shape assertions live in tests/integration/.
"""

import pytest

from repro.experiments import (
    fig01_iat,
    fig02_topdown,
    fig03_frontend,
    fig04_cpi_breakdown,
    fig05_mpki,
    fig06_footprints,
    fig08_metadata,
    fig09_storage,
    fig10_speedup,
    fig11_coverage,
    fig12_bandwidth,
    fig13_pif,
    table1_config,
    table2_workloads,
    table3_mpki_reduction,
)
from repro.experiments.common import RunConfig
from repro.units import KB

MICRO = RunConfig(invocations=3, warmup=1, instruction_scale=0.15)
FNS = ["Auth-G", "Email-P"]


@pytest.fixture(scope="module")
def fig2_result():
    return fig02_topdown.run(MICRO, functions=FNS)


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_iat.run(MICRO, functions=["Auth-G"],
                             iats_ms=(0.0, 10.0, 1000.0))

    def test_normalized_to_back_to_back(self, result):
        assert result.normalized_cpi["Auth-G"][0] == pytest.approx(1.0)

    def test_cpi_monotone_in_iat(self, result):
        series = result.normalized_cpi["Auth-G"]
        assert series[0] < series[1] < series[2]

    def test_render(self, result):
        out = fig01_iat.render(result)
        assert "Figure 1" in out and "Auth-G" in out


class TestFig02:
    def test_interleaved_cpi_higher(self, fig2_result):
        for entry in fig2_result.entries:
            assert entry.cpi_increase > 0.2

    def test_stacks_have_all_categories(self, fig2_result):
        for entry in fig2_result.entries:
            assert set(entry.reference) == set(fig02_topdown.CATEGORIES)

    def test_frontend_substantial(self, fig2_result):
        assert fig2_result.mean_frontend_fraction("reference") > 0.3

    def test_render(self, fig2_result):
        out = fig02_topdown.render(fig2_result)
        assert "Figure 2" in out and "Mean" in out


class TestFig03:
    def test_latency_grows_more_than_bandwidth(self, fig2_result):
        r3 = fig03_frontend.run(fig2=fig2_result)
        assert r3.mean_latency_growth > r3.mean_bandwidth_growth

    def test_render(self, fig2_result):
        out = fig03_frontend.render(fig03_frontend.run(fig2=fig2_result))
        assert "Figure 3" in out and "fetch latency" in out


class TestFig04:
    def test_fetch_latency_dominates_extra(self, fig2_result):
        r4 = fig04_cpi_breakdown.run(fig2=fig2_result)
        assert r4.fetch_latency_share_of_extra > 0.4
        assert r4.normalized_interleaved > 1.2

    def test_components_sum(self, fig2_result):
        r4 = fig04_cpi_breakdown.run(fig2=fig2_result)
        assert r4.reference_cpi + r4.extra_total == pytest.approx(
            r4.interleaved_cpi, rel=0.01)

    def test_render(self, fig2_result):
        out = fig04_cpi_breakdown.render(fig04_cpi_breakdown.run(fig2=fig2_result))
        assert "Figure 4" in out


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_mpki.run(MICRO, functions=FNS)

    def test_llc_instruction_misses_only_when_interleaved(self, result):
        for e in result.entries:
            assert e.llc_ref_inst < 2.0
            assert e.llc_int_inst > 5.0

    def test_instruction_misses_exceed_data(self, result):
        for e in result.entries:
            assert e.l2_int_inst > e.l2_int_data

    def test_render(self, result):
        out = fig05_mpki.render(result)
        assert "Figure 5a" in out and "Figure 5b" in out


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_footprints.run(MICRO, functions=FNS, invocations=6)

    def test_footprints_in_range(self, result):
        for e in result.entries:
            assert 200 * KB < e.footprint_bytes["mean"] < 900 * KB

    def test_jaccard_high(self, result):
        for e in result.entries:
            assert e.jaccard["mean"] > 0.8

    def test_pair_count(self, result):
        assert result.entries[0].n_pairs == 15  # 6*5/2

    def test_render(self, result):
        out = fig06_footprints.render(result)
        assert "Figure 6a" in out and "Jaccard" in out


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_metadata.run(MICRO, functions=FNS,
                                  region_sizes=(256, 1 * KB, 4 * KB),
                                  crrb_sizes=(16,))

    def test_all_cells_present(self, result):
        assert len(result.metadata_bytes) == 2 * 3

    def test_midsize_region_not_worst(self, result):
        for fn in result.functions:
            series = result.series(fn, crrb=16)
            assert series[1] <= max(series[0], series[2])

    def test_render(self, result):
        assert "Figure 8" in fig08_metadata.render(result)


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_storage.run(MICRO, functions=["Email-P", "ProdL-G"],
                                 budgets=(2 * KB, 16 * KB))

    def test_speedup_grows_with_budget(self, result):
        for fn, by_budget in result.speedups.items():
            assert by_budget[16 * KB] > by_budget[2 * KB]

    def test_geomean_present_for_all_budgets(self, result):
        assert set(result.geomean) == {2 * KB, 16 * KB}

    def test_render(self, result):
        assert "Figure 9" in fig09_storage.render(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_speedup.run(MICRO, functions=FNS)

    def test_ordering(self, result):
        for e in result.entries:
            assert 0 < e.jukebox_speedup < e.perfect_speedup

    def test_geomeans(self, result):
        assert 0 < result.jukebox_geomean < result.perfect_geomean

    def test_render(self, result):
        out = fig10_speedup.render(result)
        assert "Figure 10" in out and "GEOMEAN" in out


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_coverage.run(MICRO, functions=FNS)

    def test_fractions_bounded(self, result):
        for e in result.entries:
            assert 0 <= e.covered_fraction <= 1
            assert e.covered_fraction + e.uncovered_fraction == pytest.approx(1.0)

    def test_coverage_substantial(self, result):
        assert result.mean_coverage() > 0.5

    def test_render(self, result):
        assert "Figure 11" in fig11_coverage.render(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_bandwidth.run(MICRO, functions=FNS)

    def test_overhead_positive_but_bounded(self, result):
        for e in result.entries:
            assert 0 < e.overhead_fraction < 0.6

    def test_overhead_components(self, result):
        for e in result.entries:
            assert e.metadata_record_bytes > 0
            assert e.metadata_replay_bytes > 0

    def test_render(self, result):
        assert "Figure 12" in fig12_bandwidth.render(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_pif.run(MICRO, functions=["ProdL-G"])

    def test_jukebox_beats_pif(self, result):
        jb = result.speedups["jukebox"]["ProdL-G"]
        pif = result.speedups["pif"]["ProdL-G"]
        ideal = result.speedups["pif_ideal"]["ProdL-G"]
        assert jb > ideal > pif

    def test_render(self, result):
        assert "Figure 13" in fig13_pif.render(result)


class TestTables:
    def test_table1_matches_machine(self):
        result = table1_config.run()
        rendered = table1_config.render(result)
        assert "1024KB" in rendered  # Skylake 1MB L2
        assert "CRRB: 16 entries" in rendered

    def test_table2_lists_twenty(self):
        result = table2_workloads.run()
        assert len(result.profiles) == 20
        assert "Table 2" in table2_workloads.render(result)

    def test_table3_shape(self):
        result = table3_mpki_reduction.run(MICRO, functions=["Auth-G"])
        sky = result.row("skylake")
        bdw = result.row("broadwell")
        # LLC instruction misses nearly eliminated on both platforms.
        assert sky.llc_inst_reduction_pct < -60
        assert bdw.llc_inst_reduction_pct < -60
        # The small Broadwell L2 keeps most of its misses.
        assert bdw.l2_inst_reduction_pct > sky.l2_inst_reduction_pct
        assert "Table 3" in table3_mpki_reduction.render(result)
