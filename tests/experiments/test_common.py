"""Tests for the shared experiment drivers."""

import pytest

from repro.core.pif import PIFParams, pif_ideal_params
from repro.errors import ConfigurationError
from repro.experiments.common import (
    CONFIGS,
    RunConfig,
    config_names,
    register_config,
    run_all_configs,
    run_baseline,
    run_config,
    run_jukebox,
    run_perfect_icache,
    run_pif,
    run_reference,
)
from repro.sim.params import skylake

CFG = RunConfig(invocations=3, warmup=1)


class TestRunConfig:
    def test_rejects_warmup_ge_invocations(self):
        with pytest.raises(ConfigurationError):
            RunConfig(invocations=2, warmup=2)

    def test_rejects_nonpositive_instruction_scale(self):
        with pytest.raises(ConfigurationError):
            RunConfig(invocations=3, warmup=1, instruction_scale=0.0)
        with pytest.raises(ConfigurationError):
            RunConfig(invocations=3, warmup=1, instruction_scale=-0.5)

    def test_fast_preset_is_scaled(self):
        fast = RunConfig.fast()
        assert fast.instruction_scale < 1.0
        assert fast.invocations > fast.warmup

    def test_full_preset(self):
        full = RunConfig.full()
        assert full.instruction_scale == 1.0

    def test_replace_overrides_one_field(self):
        cfg = CFG.replace(seed=9)
        assert cfg.seed == 9
        assert cfg.invocations == CFG.invocations
        assert cfg is not CFG

    def test_replace_revalidates(self):
        with pytest.raises(ConfigurationError):
            CFG.replace(warmup=CFG.invocations)
        with pytest.raises(ConfigurationError):
            CFG.replace(instruction_scale=0.0)


class TestConfigRegistry:
    def test_standard_configs_registered(self):
        for name in ("reference", "baseline", "jukebox", "perfect", "pif"):
            assert name in CONFIGS

    def test_config_names_sorted(self):
        names = config_names()
        assert list(names) == sorted(names)
        assert "baseline" in names

    def test_run_config_dispatches(self, tiny_profile):
        seq = run_config(tiny_profile, skylake(), CFG, "baseline")
        assert seq.cycles > 0

    def test_run_config_forwards_opts(self, tiny_profile):
        seq = run_config(tiny_profile, skylake(), CFG, "pif",
                         params=pif_ideal_params(), with_jukebox=True)
        assert seq.jukebox_reports

    def test_unknown_config_is_configuration_error(self, tiny_profile):
        with pytest.raises(ConfigurationError, match="unknown config"):
            run_config(tiny_profile, skylake(), CFG, "warp-drive")

    def test_double_registration_rejected(self):
        @register_config("_test_cfg_dup")
        def _build(profile, machine, cfg):
            return None

        # Same function object again: idempotent (module re-imports).
        assert register_config("_test_cfg_dup")(_build) is _build
        with pytest.raises(ConfigurationError):
            @register_config("_test_cfg_dup")
            def _other(profile, machine, cfg):
                return None
        del CONFIGS["_test_cfg_dup"]


class TestDeprecatedWrappers:
    def test_wrappers_warn_and_forward(self, tiny_profile):
        m = skylake()
        cases = [
            (run_reference, "reference", {}),
            (run_baseline, "baseline", {}),
            (run_jukebox, "jukebox", {}),
            (run_perfect_icache, "perfect", {}),
        ]
        for wrapper, config, opts in cases:
            with pytest.warns(DeprecationWarning, match=wrapper.__name__):
                via_wrapper = wrapper(tiny_profile, m, CFG, **opts)
            direct = run_config(tiny_profile, m, CFG, config, **opts)
            assert via_wrapper.cycles == direct.cycles
            assert via_wrapper.instructions == direct.instructions

    def test_warning_points_at_the_caller(self, tiny_profile):
        """stacklevel=2 attributes the warning to the *calling* line, not
        to common.py or a helper frame -- what makes `python -W error`
        output actionable during a migration."""
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            run_reference(tiny_profile, skylake(), CFG)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_pif_wrapper_forwards_params(self, tiny_profile):
        m = skylake()
        params = pif_ideal_params()
        with pytest.warns(DeprecationWarning, match="run_pif"):
            via_wrapper = run_pif(tiny_profile, m, CFG, params,
                                  with_jukebox=True)
        direct = run_config(tiny_profile, m, CFG, "pif", params=params,
                            with_jukebox=True)
        assert via_wrapper.cycles == direct.cycles


class TestDrivers:
    def test_reference_faster_than_baseline(self, tiny_profile):
        m = skylake()
        ref = run_reference(tiny_profile, m, CFG)
        base = run_baseline(tiny_profile, m, CFG)
        assert ref.cycles < base.cycles
        assert ref.instructions == base.instructions

    def test_measured_count_respects_warmup(self, tiny_profile):
        seq = run_reference(tiny_profile, skylake(), CFG)
        assert len(seq.results) == CFG.invocations - CFG.warmup

    def test_jukebox_between_baseline_and_perfect(self, tiny_profile):
        m = skylake()
        base = run_baseline(tiny_profile, m, CFG)
        jb = run_jukebox(tiny_profile, m, CFG)
        perfect = run_perfect_icache(tiny_profile, m, CFG)
        assert perfect.cycles < jb.cycles < base.cycles

    def test_jukebox_reports_collected(self, tiny_profile):
        jb = run_jukebox(tiny_profile, skylake(), CFG)
        assert len(jb.jukebox_reports) == CFG.invocations - CFG.warmup
        assert all(r.replay.lines_prefetched > 0 for r in jb.jukebox_reports)

    def test_pif_runs(self, tiny_profile):
        seq = run_pif(tiny_profile, skylake(), CFG, PIFParams())
        assert seq.cycles > 0

    def test_combined_jukebox_pif(self, tiny_profile):
        m = skylake()
        base = run_baseline(tiny_profile, m, CFG)
        combo = run_pif(tiny_profile, m, CFG, pif_ideal_params(),
                        with_jukebox=True)
        assert combo.cycles < base.cycles
        assert combo.jukebox_reports

    def test_run_all_configs_keys(self, tiny_profile):
        results = run_all_configs(tiny_profile, skylake(), CFG)
        assert set(results) == {"reference", "baseline", "jukebox", "perfect"}

    def test_sequence_result_helpers(self, tiny_profile):
        seq = run_baseline(tiny_profile, skylake(), CFG)
        assert seq.cpi == pytest.approx(seq.cycles / seq.instructions)
        assert seq.mean_mpki("l2", "inst") > 0
