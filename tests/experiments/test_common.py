"""Tests for the shared experiment drivers."""

import pytest

from repro.core.pif import PIFParams, pif_ideal_params
from repro.errors import ConfigurationError
from repro.experiments.common import (
    RunConfig,
    run_all_configs,
    run_baseline,
    run_jukebox,
    run_perfect_icache,
    run_pif,
    run_reference,
)
from repro.sim.params import skylake

CFG = RunConfig(invocations=3, warmup=1)


class TestRunConfig:
    def test_rejects_warmup_ge_invocations(self):
        with pytest.raises(ConfigurationError):
            RunConfig(invocations=2, warmup=2)

    def test_fast_preset_is_scaled(self):
        fast = RunConfig.fast()
        assert fast.instruction_scale < 1.0
        assert fast.invocations > fast.warmup

    def test_full_preset(self):
        full = RunConfig.full()
        assert full.instruction_scale == 1.0


class TestDrivers:
    def test_reference_faster_than_baseline(self, tiny_profile):
        m = skylake()
        ref = run_reference(tiny_profile, m, CFG)
        base = run_baseline(tiny_profile, m, CFG)
        assert ref.cycles < base.cycles
        assert ref.instructions == base.instructions

    def test_measured_count_respects_warmup(self, tiny_profile):
        seq = run_reference(tiny_profile, skylake(), CFG)
        assert len(seq.results) == CFG.invocations - CFG.warmup

    def test_jukebox_between_baseline_and_perfect(self, tiny_profile):
        m = skylake()
        base = run_baseline(tiny_profile, m, CFG)
        jb = run_jukebox(tiny_profile, m, CFG)
        perfect = run_perfect_icache(tiny_profile, m, CFG)
        assert perfect.cycles < jb.cycles < base.cycles

    def test_jukebox_reports_collected(self, tiny_profile):
        jb = run_jukebox(tiny_profile, skylake(), CFG)
        assert len(jb.jukebox_reports) == CFG.invocations - CFG.warmup
        assert all(r.replay.lines_prefetched > 0 for r in jb.jukebox_reports)

    def test_pif_runs(self, tiny_profile):
        seq = run_pif(tiny_profile, skylake(), CFG, PIFParams())
        assert seq.cycles > 0

    def test_combined_jukebox_pif(self, tiny_profile):
        m = skylake()
        base = run_baseline(tiny_profile, m, CFG)
        combo = run_pif(tiny_profile, m, CFG, pif_ideal_params(),
                        with_jukebox=True)
        assert combo.cycles < base.cycles
        assert combo.jukebox_reports

    def test_run_all_configs_keys(self, tiny_profile):
        results = run_all_configs(tiny_profile, skylake(), CFG)
        assert set(results) == {"reference", "baseline", "jukebox", "perfect"}

    def test_sequence_result_helpers(self, tiny_profile):
        seq = run_baseline(tiny_profile, skylake(), CFG)
        assert seq.cpi == pytest.approx(seq.cycles / seq.instructions)
        assert seq.mean_mpki("l2", "inst") > 0
