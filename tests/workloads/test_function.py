"""Tests for the per-invocation trace generator."""

import pytest

from repro.workloads.function import FunctionModel
from repro.workloads.trace import BRANCH, IFETCH, LOAD, LOOP, STORE


class TestTraceGeneration:
    def test_deterministic_per_invocation_index(self, tiny_profile):
        m1 = FunctionModel(tiny_profile, seed=3)
        m2 = FunctionModel(tiny_profile, seed=3)
        t1 = m1.invocation_trace(5)
        t2 = m2.invocation_trace(5)
        assert (t1.kinds == t2.kinds).all()
        assert (t1.addrs == t2.addrs).all()

    def test_different_invocations_differ(self, tiny_model):
        t0 = tiny_model.invocation_trace(0)
        t1 = tiny_model.invocation_trace(1)
        assert t0.instruction_blocks() != t1.instruction_blocks()

    def test_instruction_volume_near_target(self, tiny_profile):
        model = FunctionModel(tiny_profile, seed=1)
        insts = model.invocation_trace(0).total_instructions
        assert 0.5 * tiny_profile.instructions < insts \
            < 2.0 * tiny_profile.instructions

    def test_footprint_near_target(self, tiny_profile):
        model = FunctionModel(tiny_profile, seed=1)
        fp = model.invocation_trace(0).instruction_footprint_bytes()
        target = tiny_profile.footprint_bytes
        assert 0.75 * target < fp < 1.25 * target

    def test_footprint_variance_is_low(self, tiny_model):
        sizes = [len(tiny_model.footprint_blocks(i)) for i in range(6)]
        spread = (max(sizes) - min(sizes)) / max(sizes)
        assert spread < 0.15  # Fig. 6a: "notably low variance"

    def test_commonality_high_but_not_total(self, tiny_model):
        a = tiny_model.footprint_blocks(0)
        b = tiny_model.footprint_blocks(1)
        jaccard = len(a & b) / len(a | b)
        assert 0.75 < jaccard < 1.0

    def test_contains_all_event_kinds(self, tiny_traces):
        kinds = set(tiny_traces[0].kinds.tolist())
        assert {IFETCH, LOAD, STORE, BRANCH, LOOP} <= kinds

    def test_loopiness_budget(self, tiny_profile):
        model = FunctionModel(tiny_profile, seed=1)
        trace = model.invocation_trace(0)
        loop_insts = sum(spec.total_insts for spec in trace.loops)
        frac = loop_insts / trace.total_instructions
        assert abs(frac - tiny_profile.loopiness) < 0.2

    def test_zero_loopiness_produces_no_loops(self, tiny_profile):
        from dataclasses import replace
        profile = replace(tiny_profile, loopiness=0.0)
        trace = FunctionModel(profile, seed=1).invocation_trace(0)
        assert not trace.loops

    def test_data_accesses_within_arena(self, tiny_model, tiny_traces):
        data = tiny_traces[0].data_blocks()
        arena = set(int(a) for a in tiny_model._data_blocks)
        assert data <= arena

    def test_footprint_blocks_within_layout(self, tiny_model):
        layout_blocks = tiny_model.layout.all_blocks()
        assert tiny_model.footprint_blocks(0) <= layout_blocks

    def test_branch_sites_stable_across_invocations(self, tiny_model):
        def sites(trace):
            return {int(a) for k, a, *_ in trace.events() if k == BRANCH}
        s0 = sites(tiny_model.invocation_trace(0))
        s1 = sites(tiny_model.invocation_trace(1))
        common = len(s0 & s1) / len(s0 | s1)
        assert common > 0.6

    def test_density_affects_region_count(self, tiny_profile, sparse_profile):
        """Sparser code touches more 1KB regions per footprint byte."""
        def regions_per_kb(profile):
            model = FunctionModel(profile, seed=2)
            blocks = model.footprint_blocks(0)
            regions = {b >> 10 for b in blocks}
            return len(regions) / (len(blocks) * 64 / 1024)
        assert regions_per_kb(sparse_profile) > regions_per_kb(tiny_profile)


class TestScaledProfiles:
    def test_scaled_reduces_instructions(self, tiny_profile):
        scaled = tiny_profile.scaled(0.5)
        assert scaled.instructions < tiny_profile.instructions

    def test_scaled_keeps_footprint(self, tiny_profile):
        scaled = tiny_profile.scaled(0.5)
        assert scaled.footprint_kb == tiny_profile.footprint_kb

    def test_scaled_rejects_nonpositive(self, tiny_profile):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            tiny_profile.scaled(0.0)
