"""Tests for inter-arrival-time processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrival import (
    FixedIAT,
    LognormalArrivals,
    PoissonArrivals,
    make_arrival_process,
)


class TestFixedIAT:
    def test_constant(self):
        proc = FixedIAT(100.0)
        assert [proc.next_iat() for _ in range(3)] == [100.0, 100.0, 100.0]
        assert proc.mean_iat == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedIAT(0)

    def test_arrivals_generator(self):
        times = list(FixedIAT(10.0).arrivals(35.0))
        assert times == [10.0, 20.0, 30.0]


class TestPoissonArrivals:
    def test_mean_matches(self):
        proc = PoissonArrivals(50.0, seed=1)
        samples = [proc.next_iat() for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(50.0, rel=0.1)

    def test_deterministic_for_seed(self):
        a = PoissonArrivals(50.0, seed=2)
        b = PoissonArrivals(50.0, seed=2)
        assert [a.next_iat() for _ in range(5)] == [b.next_iat() for _ in range(5)]

    def test_all_positive(self):
        proc = PoissonArrivals(5.0, seed=3)
        assert all(proc.next_iat() >= 0 for _ in range(100))


class TestLognormalArrivals:
    def test_mean_matches(self):
        proc = LognormalArrivals(100.0, sigma=1.0, seed=1)
        samples = [proc.next_iat() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.15)

    def test_heavier_tail_than_poisson(self):
        logn = LognormalArrivals(100.0, sigma=1.5, seed=4)
        pois = PoissonArrivals(100.0, seed=4)
        ln_samples = sorted(logn.next_iat() for _ in range(5000))
        po_samples = sorted(pois.next_iat() for _ in range(5000))
        assert ln_samples[int(0.999 * 5000)] > po_samples[int(0.999 * 5000)]

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            LognormalArrivals(100.0, sigma=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("fixed", FixedIAT),
        ("poisson", PoissonArrivals),
        ("lognormal", LognormalArrivals),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_arrival_process(kind, 10.0), cls)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_arrival_process("weibull", 10.0)
