"""Tests for inter-arrival-time processes."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrival import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    FixedIAT,
    LognormalArrivals,
    PoissonArrivals,
    make_arrival_process,
)


class TestFixedIAT:
    def test_constant(self):
        proc = FixedIAT(100.0)
        assert [proc.next_iat() for _ in range(3)] == [100.0, 100.0, 100.0]
        assert proc.mean_iat == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedIAT(0)

    def test_arrivals_generator(self):
        times = list(FixedIAT(10.0).arrivals(35.0))
        assert times == [10.0, 20.0, 30.0]


class TestPoissonArrivals:
    def test_mean_matches(self):
        proc = PoissonArrivals(50.0, seed=1)
        samples = [proc.next_iat() for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(50.0, rel=0.1)

    @pytest.mark.parametrize("seed", [11, 42, 2022])
    def test_mean_within_confidence_bounds(self, seed):
        """The sample mean lands inside a 4-sigma CI around the nominal
        mean.  For exp(mean) the standard error of an n-sample mean is
        mean/sqrt(n), so the bound is seed-robust (p ~ 6e-5 per seed)."""
        mean, n = 200.0, 10_000
        proc = PoissonArrivals(mean, seed=seed)
        sample_mean = np.mean([proc.next_iat() for _ in range(n)])
        half_width = 4.0 * mean / np.sqrt(n)
        assert abs(sample_mean - mean) < half_width, (seed, sample_mean)

    def test_deterministic_for_seed(self):
        a = PoissonArrivals(50.0, seed=2)
        b = PoissonArrivals(50.0, seed=2)
        assert [a.next_iat() for _ in range(5)] == [b.next_iat() for _ in range(5)]

    def test_all_positive(self):
        proc = PoissonArrivals(5.0, seed=3)
        assert all(proc.next_iat() >= 0 for _ in range(100))


class TestLognormalArrivals:
    def test_mean_matches(self):
        proc = LognormalArrivals(100.0, sigma=1.0, seed=1)
        samples = [proc.next_iat() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.15)

    def test_heavier_tail_than_poisson(self):
        logn = LognormalArrivals(100.0, sigma=1.5, seed=4)
        pois = PoissonArrivals(100.0, seed=4)
        ln_samples = sorted(logn.next_iat() for _ in range(5000))
        po_samples = sorted(pois.next_iat() for _ in range(5000))
        assert ln_samples[int(0.999 * 5000)] > po_samples[int(0.999 * 5000)]

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            LognormalArrivals(100.0, sigma=0)


class TestBurstyArrivals:
    def test_deterministic_for_seed(self):
        a = BurstyArrivals(100.0, seed=9)
        b = BurstyArrivals(100.0, seed=9)
        assert [a.next_iat() for _ in range(50)] == \
            [b.next_iat() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = BurstyArrivals(100.0, seed=9)
        b = BurstyArrivals(100.0, seed=10)
        assert [a.next_iat() for _ in range(10)] != \
            [b.next_iat() for _ in range(10)]

    def test_stationary_mean_near_nominal(self):
        proc = BurstyArrivals(100.0, seed=5)
        samples = [proc.next_iat() for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.15)

    def test_burstier_than_poisson(self):
        """Burst/idle modulation inflates the coefficient of variation
        above the exponential's CV of 1."""
        proc = BurstyArrivals(100.0, burst_factor=16.0, seed=6)
        samples = np.array([proc.next_iat() for _ in range(20_000)])
        assert np.std(samples) / np.mean(samples) > 1.2

    @pytest.mark.parametrize("kwargs", [
        {"burst_factor": 1.0},
        {"burst_factor": 0.5},
        {"switch_prob": 0.0},
        {"switch_prob": 1.5},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(100.0, **kwargs)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(0.0)


class TestDiurnalArrivals:
    def test_deterministic_for_seed(self):
        a = DiurnalArrivals(100.0, period_ms=10_000.0, seed=9)
        b = DiurnalArrivals(100.0, period_ms=10_000.0, seed=9)
        assert [a.next_iat() for _ in range(50)] == \
            [b.next_iat() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DiurnalArrivals(100.0, seed=9)
        b = DiurnalArrivals(100.0, seed=10)
        assert [a.next_iat() for _ in range(10)] != \
            [b.next_iat() for _ in range(10)]

    def test_rate_modulates_over_the_cycle(self):
        """Peak-phase IATs are shorter than trough-phase IATs on
        average: start two copies half a period apart."""
        peak = DiurnalArrivals(100.0, amplitude=0.9, period_ms=1e9,
                               phase=np.pi / 2, seed=3)
        trough = DiurnalArrivals(100.0, amplitude=0.9, period_ms=1e9,
                                 phase=-np.pi / 2, seed=3)
        # Period >> samples*mean keeps each copy pinned near its phase.
        peak_mean = np.mean([peak.next_iat() for _ in range(2000)])
        trough_mean = np.mean([trough.next_iat() for _ in range(2000)])
        assert peak_mean < trough_mean / 2

    def test_zero_amplitude_matches_poisson(self):
        flat = DiurnalArrivals(100.0, amplitude=0.0, seed=7)
        pois = PoissonArrivals(100.0, seed=7)
        assert [flat.next_iat() for _ in range(20)] == \
            [pois.next_iat() for _ in range(20)]

    @pytest.mark.parametrize("kwargs", [
        {"amplitude": -0.1},
        {"amplitude": 1.0},
        {"period_ms": 0.0},
        {"period_ms": -5.0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(100.0, **kwargs)


class TestCrossProcessDeterminism:
    """The same (kind, mean, seed) triple yields bit-identical streams
    in a fresh interpreter: arrival streams are a pure function of their
    parameters, never of process state, hash randomization, or import
    order.  This is what lets fleet shards recompute each other's plans."""

    SNIPPET = (
        "import json, sys\n"
        "from repro.workloads.arrival import make_arrival_process\n"
        "kind, seed = sys.argv[1], int(sys.argv[2])\n"
        "proc = make_arrival_process(kind, 250.0, seed=seed)\n"
        "print(json.dumps([proc.next_iat() for _ in range(25)]))\n"
    )

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_stream_identical_across_processes(self, kind):
        src = str(Path(__file__).resolve().parents[2] / "src")
        out = subprocess.run(
            [sys.executable, "-c", self.SNIPPET, kind, "13"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"})
        in_subprocess = json.loads(out.stdout)
        here = make_arrival_process(kind, 250.0, seed=13)
        assert in_subprocess == [here.next_iat() for _ in range(25)]


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("fixed", FixedIAT),
        ("poisson", PoissonArrivals),
        ("lognormal", LognormalArrivals),
        ("bursty", BurstyArrivals),
        ("diurnal", DiurnalArrivals),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_arrival_process(kind, 10.0), cls)

    def test_kinds_tuple_is_exhaustive(self):
        assert set(ARRIVAL_KINDS) == {"fixed", "poisson", "lognormal",
                                      "bursty", "diurnal"}
        for kind in ARRIVAL_KINDS:
            assert make_arrival_process(kind, 10.0).mean_iat == 10.0

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_arrival_process("weibull", 10.0)
