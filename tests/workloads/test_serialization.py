"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.core import Simulator
from repro.sim.params import skylake
from repro.workloads.serialization import load_trace, save_trace


class TestRoundTrip:
    def test_arrays_preserved(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert (loaded.kinds == trace.kinds).all()
        assert (loaded.addrs == trace.addrs).all()
        assert (loaded.args == trace.args).all()
        assert (loaded.args2 == trace.args2).all()

    def test_loops_preserved(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.loops) == len(trace.loops)
        for a, b in zip(loaded.loops, trace.loops):
            assert a == b

    def test_simulation_identical_on_loaded_trace(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        r1 = Simulator(skylake()).run(trace)
        r2 = Simulator(skylake()).run(loaded)
        assert r1.cycles == pytest.approx(r2.cycles)
        assert r1.instructions == r2.instructions

    def test_suffix_appended_by_numpy(self, tiny_traces, tmp_path):
        """np.savez appends .npz; load_trace resolves either spelling."""
        path = tmp_path / "trace"
        save_trace(tiny_traces[0], path)
        loaded = load_trace(path)
        assert loaded.total_instructions == tiny_traces[0].total_instructions


class TestValidation:
    def test_rejects_non_trace_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_rejects_wrong_format_header(self, tmp_path, tiny_traces):
        import json
        path = tmp_path / "bad.npz"
        header = json.dumps({"format": "something-else", "version": 1,
                             "instructions": 0})
        np.savez(path,
                 header=np.frombuffer(header.encode(), dtype=np.uint8),
                 kinds=np.zeros(0, np.uint8))
        with pytest.raises(TraceError, match="not an invocation-trace"):
            load_trace(path)


class TestFormatVersioning:
    """The v2 wire format: versioned, digest-checked, v1-compatible."""

    def _archive_parts(self, trace, tmp_path):
        import json
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        with np.load(path) as data:
            arrays = {name: data[name].copy() for name in data.files}
        header = json.loads(bytes(arrays.pop("header")).decode())
        return path, header, arrays

    def _rewrite(self, path, header, arrays):
        import json
        payload = json.dumps(header).encode()
        np.savez(path, header=np.frombuffer(payload, dtype=np.uint8),
                 **arrays)

    def test_writes_current_version(self, tiny_traces, tmp_path):
        from repro.workloads.serialization import FORMAT_VERSION
        _path, header, _arrays = self._archive_parts(tiny_traces[0], tmp_path)
        assert header["version"] == FORMAT_VERSION == 2
        assert len(header["columns_sha256"]) == 64

    def test_rejects_unknown_future_version(self, tiny_traces, tmp_path):
        path, header, arrays = self._archive_parts(tiny_traces[0], tmp_path)
        header["version"] = 99
        self._rewrite(path, header, arrays)
        with pytest.raises(TraceError, match="unsupported trace version 99"):
            load_trace(path)

    def test_error_names_supported_versions(self, tiny_traces, tmp_path):
        path, header, arrays = self._archive_parts(tiny_traces[0], tmp_path)
        header["version"] = 99
        self._rewrite(path, header, arrays)
        with pytest.raises(TraceError, match="1, 2"):
            load_trace(path)

    def test_v1_archives_still_load(self, tiny_traces, tmp_path):
        """A v1 archive (no digest) round-trips: the arrays carry all
        information, so old published traces stay readable."""
        trace = tiny_traces[0]
        path, header, arrays = self._archive_parts(trace, tmp_path)
        header["version"] = 1
        del header["columns_sha256"]
        self._rewrite(path, header, arrays)
        loaded = load_trace(path)
        assert (loaded.kinds == trace.kinds).all()
        assert loaded.loops == trace.loops

    def test_corrupted_column_rejected(self, tiny_traces, tmp_path):
        path, header, arrays = self._archive_parts(tiny_traces[0], tmp_path)
        arrays["addrs"] = arrays["addrs"].copy()
        arrays["addrs"][0] ^= 0x40  # one flipped bit, same length
        self._rewrite(path, header, arrays)
        with pytest.raises(TraceError, match="column digest mismatch"):
            load_trace(path)

    def test_columnar_ir_round_trips_losslessly(self, tiny_traces, tmp_path):
        """The derived ColumnarTrace IR is identical before and after a
        save/load cycle -- the lossless-round-trip contract."""
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        before, after = trace.columnar(), loaded.columnar()
        assert (before.kinds == after.kinds).all()
        assert (before.blocks == after.blocks).all()
        assert (before.pages == after.pages).all()
        assert (before.args == after.args).all()
        assert (before.args2 == after.args2).all()
        def structural(ops):
            return [tuple(getattr(x, "key", x) for x in op) for op in ops]
        assert structural(before.ops) == structural(after.ops)
