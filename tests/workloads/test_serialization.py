"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.core import LukewarmCore
from repro.sim.params import skylake
from repro.workloads.serialization import load_trace, save_trace


class TestRoundTrip:
    def test_arrays_preserved(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert (loaded.kinds == trace.kinds).all()
        assert (loaded.addrs == trace.addrs).all()
        assert (loaded.args == trace.args).all()
        assert (loaded.args2 == trace.args2).all()

    def test_loops_preserved(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.loops) == len(trace.loops)
        for a, b in zip(loaded.loops, trace.loops):
            assert a == b

    def test_simulation_identical_on_loaded_trace(self, tiny_traces, tmp_path):
        trace = tiny_traces[0]
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        r1 = LukewarmCore(skylake()).run(trace)
        r2 = LukewarmCore(skylake()).run(loaded)
        assert r1.cycles == pytest.approx(r2.cycles)
        assert r1.instructions == r2.instructions

    def test_suffix_appended_by_numpy(self, tiny_traces, tmp_path):
        """np.savez appends .npz; load_trace resolves either spelling."""
        path = tmp_path / "trace"
        save_trace(tiny_traces[0], path)
        loaded = load_trace(path)
        assert loaded.total_instructions == tiny_traces[0].total_instructions


class TestValidation:
    def test_rejects_non_trace_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_rejects_wrong_format_header(self, tmp_path, tiny_traces):
        import json
        path = tmp_path / "bad.npz"
        header = json.dumps({"format": "something-else", "version": 1,
                             "instructions": 0})
        np.savez(path,
                 header=np.frombuffer(header.encode(), dtype=np.uint8),
                 kinds=np.zeros(0, np.uint8))
        with pytest.raises(TraceError, match="not an invocation-trace"):
            load_trace(path)
