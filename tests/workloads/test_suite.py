"""Tests for the Table 2 function suite."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import LANG_GO, LANG_NODEJS, LANG_PYTHON
from repro.workloads.suite import (
    BY_ABBREV,
    REPRESENTATIVES,
    SUITE,
    build_suite,
    get_profile,
    suite_subset,
)


class TestSuiteComposition:
    def test_twenty_functions(self):
        assert len(SUITE) == 20

    def test_language_counts_match_table2(self):
        by_lang = {}
        for p in SUITE:
            by_lang.setdefault(p.language, []).append(p)
        assert len(by_lang[LANG_PYTHON]) == 5
        assert len(by_lang[LANG_NODEJS]) == 5
        assert len(by_lang[LANG_GO]) == 10

    def test_abbreviations_unique(self):
        assert len(BY_ABBREV) == 20

    def test_abbrev_suffix_matches_language(self):
        suffix = {LANG_PYTHON: "P", LANG_NODEJS: "N", LANG_GO: "G"}
        for p in SUITE:
            assert p.abbrev.endswith("-" + suffix[p.language])

    def test_table2_names_present(self):
        expected = {
            "Fib-P", "AES-P", "Auth-P", "Email-P", "RecO-P",
            "Fib-N", "AES-N", "Auth-N", "Curr-N", "Pay-N",
            "Fib-G", "AES-G", "Auth-G", "Geo-G", "ProdL-G",
            "Prof-G", "Rate-G", "RecH-G", "User-G", "Ship-G",
        }
        assert set(BY_ABBREV) == expected

    def test_hotel_reservation_functions(self):
        hotel = [p for p in SUITE if p.application == "Hotel Reservation"]
        assert {p.abbrev for p in hotel} == {
            "Geo-G", "Prof-G", "Rate-G", "RecH-G", "User-G"}

    def test_representatives_cover_all_languages(self):
        langs = {get_profile(a).language for a in REPRESENTATIVES}
        assert langs == {LANG_PYTHON, LANG_NODEJS, LANG_GO}


class TestCalibrationInvariants:
    """Structural facts the paper's results depend on."""

    def test_footprints_in_fig6a_range(self):
        for p in SUITE:
            assert 300 <= p.footprint_kb <= 820, p.abbrev

    def test_go_functions_are_smallest(self):
        go_max = max(p.footprint_kb for p in SUITE if p.language == LANG_GO)
        other_mean = sum(p.footprint_kb for p in SUITE
                         if p.language != LANG_GO) / 10
        assert go_max < other_mean + 100

    def test_go_density_highest(self):
        go = min(p.density for p in SUITE if p.language == LANG_GO)
        others = max(p.density for p in SUITE if p.language != LANG_GO)
        assert go > others

    def test_aes_most_loopy_per_language(self):
        for lang in (LANG_PYTHON, LANG_NODEJS, LANG_GO):
            profiles = [p for p in SUITE if p.language == lang]
            aes = next(p for p in profiles if p.abbrev.startswith("AES"))
            assert aes.loopiness == max(p.loopiness for p in profiles)

    def test_auth_least_loopy_per_language(self):
        for lang in (LANG_PYTHON, LANG_NODEJS, LANG_GO):
            profiles = [p for p in SUITE if p.language == lang]
            auth = next(p for p in profiles if p.abbrev.startswith("Auth"))
            assert auth.loopiness == min(p.loopiness for p in profiles)

    def test_payn_has_largest_data_ws(self):
        pay = get_profile("Pay-N")
        assert pay.data_ws_kb == max(p.data_ws_kb for p in SUITE)

    def test_data_ws_smaller_than_instruction_footprint(self):
        """Sec. 2.4: instruction working sets exceed data working sets."""
        for p in SUITE:
            assert p.data_ws_kb < p.footprint_kb


class TestLookups:
    def test_get_profile(self):
        assert get_profile("Auth-G").name == "Authentication"

    def test_get_profile_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown function"):
            get_profile("Nope-X")

    def test_suite_subset_none_returns_all(self):
        assert len(suite_subset(None)) == 20

    def test_suite_subset_preserves_order(self):
        subset = suite_subset(["Pay-N", "Fib-P"])
        assert [p.abbrev for p in subset] == ["Pay-N", "Fib-P"]

    def test_build_suite_fresh_instances(self):
        assert build_suite() == build_suite()
