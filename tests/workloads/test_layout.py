"""Tests for code layout generation."""

import pytest

from repro.errors import ConfigurationError
from repro.units import KB, LINE_SIZE
from repro.workloads.layout import (
    CodeSegment,
    ROLE_LIBRARY,
    ROLE_RUNTIME,
    ROLE_USER,
    ROLES,
    build_layout,
)


def layout(footprint_kb=128, density=0.8, optional=0.15, hot=0.3, seed=1,
           **kwargs):
    return build_layout(
        footprint_bytes=footprint_kb * KB,
        density=density,
        optional_fraction=optional,
        hot_fraction=hot,
        seed=seed,
        **kwargs,
    )


class TestCodeSegment:
    def test_basic_properties(self):
        seg = CodeSegment("s", ROLE_USER, blocks=(0, 64, 256))
        assert seg.n_blocks == 3
        assert seg.size_bytes == 3 * LINE_SIZE
        assert seg.span_bytes == 256 + LINE_SIZE

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CodeSegment("s", ROLE_USER, blocks=())

    def test_rejects_bad_role(self):
        with pytest.raises(ConfigurationError):
            CodeSegment("s", "kernel", blocks=(0,))


class TestBuildLayout:
    def test_total_size_close_to_target(self):
        lay = layout(footprint_kb=256)
        assert abs(lay.total_bytes - 256 * KB) < 16 * KB

    def test_all_roles_present(self):
        lay = layout()
        for role in ROLES:
            assert lay.by_role(role), f"no {role} segments"

    def test_roles_in_disjoint_address_areas(self):
        lay = layout()
        ranges = {}
        for role in ROLES:
            segs = lay.by_role(role)
            ranges[role] = (min(s.blocks[0] for s in segs),
                            max(s.blocks[-1] for s in segs))
        values = sorted(ranges.values())
        for (lo1, hi1), (lo2, hi2) in zip(values, values[1:]):
            assert hi1 < lo2

    def test_blocks_are_line_aligned_and_sorted(self):
        lay = layout()
        for seg in lay.segments:
            assert all(b % LINE_SIZE == 0 for b in seg.blocks)
            assert list(seg.blocks) == sorted(seg.blocks)

    def test_no_duplicate_blocks_across_segments(self):
        lay = layout()
        assert len(lay.all_blocks()) == lay.total_blocks

    def test_density_controls_span(self):
        dense = layout(density=0.9, seed=3)
        sparse = layout(density=0.45, seed=3)

        def mean_density(lay):
            return sum(s.size_bytes / s.span_bytes for s in lay.segments) \
                / len(lay.segments)

        assert mean_density(dense) > mean_density(sparse)

    def test_optional_fraction_respected(self):
        lay = layout(optional=0.3, footprint_kb=512, seed=5)
        opt_blocks = sum(s.n_blocks for s in lay.optional())
        frac = opt_blocks / lay.total_blocks
        assert 0.15 < frac < 0.45

    def test_zero_optional_fraction(self):
        lay = layout(optional=0.0)
        assert not lay.optional()

    def test_every_role_has_mandatory_hot_segment(self):
        lay = layout(hot=0.05, seed=9)
        for role in ROLES:
            segs = lay.by_role(role)
            assert any(s.hot and not s.optional for s in segs)

    def test_deterministic_for_seed(self):
        a, b = layout(seed=11), layout(seed=11)
        assert [s.blocks for s in a.segments] == [s.blocks for s in b.segments]

    def test_different_seed_different_layout(self):
        a, b = layout(seed=11), layout(seed=12)
        assert [s.blocks for s in a.segments] != [s.blocks for s in b.segments]

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ConfigurationError):
            layout(footprint_kb=8)

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            layout(density=0.0)
        with pytest.raises(ConfigurationError):
            layout(density=1.5)

    def test_rejects_bad_optional_fraction(self):
        with pytest.raises(ConfigurationError):
            layout(optional=1.0)

    def test_mandatory_plus_optional_partition(self):
        lay = layout()
        assert len(lay.mandatory()) + len(lay.optional()) == len(lay.segments)
