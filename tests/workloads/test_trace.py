"""Tests for the invocation trace representation and builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.units import LINE_SIZE
from repro.workloads.trace import (
    BRANCH,
    IFETCH,
    LOAD,
    LOOP,
    STORE,
    InvocationTrace,
    LoopSpec,
    TraceBuilder,
)

CODE = 0x5555_0000_0000


class TestLoopSpec:
    def test_totals(self):
        spec = LoopSpec(blocks=(CODE,), iterations=10, insts_per_iteration=7)
        assert spec.total_insts == 70
        assert spec.body_bytes == LINE_SIZE

    def test_rejects_zero_iterations(self):
        with pytest.raises(TraceError):
            LoopSpec(blocks=(CODE,), iterations=0, insts_per_iteration=1)

    def test_rejects_empty_body(self):
        with pytest.raises(TraceError):
            LoopSpec(blocks=(), iterations=1, insts_per_iteration=1)

    def test_rejects_zero_insts(self):
        with pytest.raises(TraceError):
            LoopSpec(blocks=(CODE,), iterations=1, insts_per_iteration=0)


class TestTraceBuilder:
    def test_fetch_aligns_addresses(self):
        b = TraceBuilder()
        b.fetch(CODE + 13, insts=4)
        trace = b.build()
        assert trace.addrs[0] == CODE

    def test_rejects_zero_insts(self):
        with pytest.raises(TraceError):
            TraceBuilder().fetch(CODE, insts=0)

    def test_rejects_bad_branch_prob(self):
        with pytest.raises(TraceError):
            TraceBuilder().branch_site(CODE, 10, 1.5)

    def test_rejects_zero_count_data(self):
        with pytest.raises(TraceError):
            TraceBuilder().load(CODE, count=0)

    def test_extend_walk(self):
        b = TraceBuilder()
        blocks = [CODE + i * LINE_SIZE for i in range(5)]
        b.extend_walk(blocks, insts_per_block=10)
        trace = b.build()
        assert len(trace) == 5
        assert trace.total_instructions == 50

    def test_event_kinds_roundtrip(self):
        b = TraceBuilder()
        b.fetch(CODE, 4, 1)
        b.load(CODE + 4096, 2)
        b.store(CODE + 8192, 1)
        b.branch_site(CODE + 64, 10, 0.5)
        b.loop(LoopSpec(blocks=(CODE,), iterations=2, insts_per_iteration=4))
        trace = b.build()
        kinds = [kind for kind, *_ in trace.events()]
        assert kinds == [IFETCH, LOAD, STORE, BRANCH, LOOP]

    def test_len_tracks_builder(self):
        b = TraceBuilder()
        assert len(b) == 0
        b.fetch(CODE, 1)
        assert len(b) == 1


class TestInvocationTrace:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(TraceError):
            InvocationTrace(
                kinds=np.zeros(2, dtype=np.uint8),
                addrs=np.zeros(3, dtype=np.int64),
                args=np.zeros(2, dtype=np.int64),
                args2=np.zeros(2, dtype=np.int64),
            )

    def test_total_instructions_includes_loops(self):
        b = TraceBuilder()
        b.fetch(CODE, 10)
        b.loop(LoopSpec(blocks=(CODE + 4096,), iterations=5,
                        insts_per_iteration=8))
        trace = b.build()
        assert trace.total_instructions == 10 + 40

    def test_instruction_blocks_include_loop_bodies(self):
        b = TraceBuilder()
        b.fetch(CODE, 1)
        b.loop(LoopSpec(blocks=(CODE + 4096, CODE + 4096 + LINE_SIZE),
                        iterations=2, insts_per_iteration=4))
        blocks = b.build().instruction_blocks()
        assert CODE in blocks
        assert CODE + 4096 in blocks
        assert len(blocks) == 3

    def test_footprint_bytes(self):
        b = TraceBuilder()
        b.fetch(CODE, 1)
        b.fetch(CODE, 1)          # duplicate: one block
        b.fetch(CODE + LINE_SIZE, 1)
        assert b.build().instruction_footprint_bytes() == 2 * LINE_SIZE

    def test_data_blocks(self):
        b = TraceBuilder()
        b.load(CODE, 1)
        b.store(CODE + LINE_SIZE, 1)
        b.fetch(CODE + 4096, 1)
        assert len(b.build().data_blocks()) == 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 30)),
                    min_size=1, max_size=60))
    def test_total_instructions_matches_sum(self, fetches):
        b = TraceBuilder()
        total = 0
        for block_idx, insts in fetches:
            b.fetch(CODE + block_idx * LINE_SIZE, insts)
            total += insts
        assert b.build().total_instructions == total
