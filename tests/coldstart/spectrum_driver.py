"""A sacrificial spectrum-sweep driver for crash drills.

The cold-start analogue of :mod:`tests.fleet.fleet_driver`: runs a small
cold→lukewarm→warm sweep cell-by-cell against an on-disk result cache,
printing one flushed ``cell <i> ok`` line as each cell's result is
checkpointed and a final ``RESULT <canonical json>`` line for the whole
grid.  The chaos smoke SIGKILLs it mid-sweep, reruns it, and asserts the
rerun (a) serves the killed run's cells from the cache and (b) prints a
RESULT line byte-identical to an undisturbed run.

Serial on purpose: a SIGKILL leaves only the cache directory behind.
Invoke as ``python -m tests.coldstart.spectrum_driver`` from the repo
root.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.engine import Job, canonicalize, configure, sweep_outcomes
from repro.experiments import ext_spectrum
from repro.experiments.common import RunConfig
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

#: The drill grid: spans all three regimes and both ends of the toggle
#: space, small enough to run in seconds.
DRILL_FUNCTIONS = ("Auth-G",)
DRILL_VARIANTS = ("baseline", "all")
DRILL_IATS_MS = (0.0, 1_000.0, 1_800_000.0)


def drill_cfg(seed: int = 1) -> RunConfig:
    return RunConfig(invocations=2, warmup=1, seed=seed,
                     instruction_scale=0.25)


def drill_jobs(seed: int = 1) -> List[Job]:
    cfg = drill_cfg(seed)
    machine = skylake()
    return [Job.make(get_profile(abbrev), machine, cfg, "spectrum_point",
                     provider=ext_spectrum.__name__, iat_ms=float(iat),
                     ttl_ms=ext_spectrum.DEFAULT_TTL_MS, jukebox=jb,
                     page_replay=pr, init_trim=it)
            for abbrev in DRILL_FUNCTIONS
            for (jb, pr, it) in (ext_spectrum.VARIANTS[v]
                                 for v in DRILL_VARIANTS)
            for iat in DRILL_IATS_MS]


def result_line(cells: Sequence[dict]) -> str:
    return "RESULT " + json.dumps(canonicalize(list(cells)),
                                  sort_keys=True, separators=(",", ":"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tests.coldstart.spectrum_driver")
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    cells: List[dict] = []
    with configure(cache_dir=args.cache_dir) as ctx:
        for i, job in enumerate(drill_jobs(args.seed)):
            [outcome] = sweep_outcomes([job])
            cells.append(dict(outcome.value))
            # One flushed line per checkpoint: the parent counts these to
            # SIGKILL at an exact point in the schedule.
            print(f"cell {i} ok", flush=True)
        print(result_line(cells), flush=True)
        print(f"STATS hits={ctx.stats.hits} misses={ctx.stats.misses}",
              flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
