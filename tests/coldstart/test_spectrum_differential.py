"""Differential battery: the cold-start refactor against its ground truths.

Three families of pins, per the spectrum issue:

* **Legacy byte-identity** -- the constant-penalty
  :class:`~repro.coldstart.model.ColdStartModel` must reproduce, byte
  for byte, the canonical JSON the scalar ``cold_start_penalty_ms``
  arithmetic produced *before* the refactor, for the server simulator
  (both admission models) and the fleet, on three seeds.  The expected
  strings live in ``data/prerefactor.json``, captured at the last
  pre-refactor commit by ``capture_prerefactor.py`` -- they are history,
  not a fixture this suite may regenerate.
* **Lukewarm convergence** -- as invocation frequency rises into the
  keep-alive window, a spectrum cell is *exactly* today's lukewarm
  simulation: same cycles, same instructions, byte-identical canonical
  JSON against the registry's ``baseline``/``jukebox``/``reference``
  configs.
* **Replay beats recording** -- restoring twice, the second (replayed)
  restore's page cost is strictly below the first (recording) restore,
  for every profile in the suite.
"""

import json
from pathlib import Path

import pytest

import repro.experiments.ext_spectrum  # noqa: F401  (registers spectrum_point)
from repro import engine
from repro.coldstart import PageReplayState, working_set_pages
from repro.experiments.common import RunConfig, run_config
from repro.sim.params import skylake
from repro.workloads.suite import SUITE, get_profile

from tests.coldstart import capture_prerefactor as cap

DATA_PATH = Path(__file__).parent / "data" / "prerefactor.json"

SEEDS = cap.SEEDS
SCENARIOS = ("server_enforced", "server_legacy", "fleet")


def canonical(value) -> str:
    return json.dumps(engine.canonicalize(value), sort_keys=True,
                      separators=(",", ":"))


@pytest.fixture(scope="module")
def prerefactor():
    return json.loads(DATA_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_constant_model_is_byte_identical_to_scalar_path(
        seed, scenario, prerefactor):
    """Replay the capture script's scenarios on the refactored code and
    compare against the frozen pre-refactor canonical JSON."""
    if scenario == "server_enforced":
        actual = cap.canonical(
            cap.server_stats_dict(cap.run_server_enforced(seed)))
    elif scenario == "server_legacy":
        actual = cap.canonical(
            cap.server_stats_dict(cap.run_server_legacy(seed)))
    else:
        actual = cap.canonical(cap.run_fleet(seed))
    assert actual == prerefactor[str(seed)][scenario], (
        f"{scenario} (seed {seed}) drifted from the pre-refactor scalar "
        f"cold_start_penalty_ms path -- the constant ColdStartModel is "
        f"no longer a byte-identical replacement")


# ---------------------------------------------------------------------------
# Lukewarm convergence: high-frequency spectrum cells ARE today's
# lukewarm results.

CONV_CFG = RunConfig(invocations=3, warmup=1, seed=1, instruction_scale=0.25)
CONV_FUNCTIONS = ("Auth-G", "ProdL-G")


def _cycle_sig(seq) -> str:
    """The simulated sequence's identity: exact cycles + instructions."""
    return canonical({
        "cycles": [r.cycles for r in seq.results],
        "instructions": [r.instructions for r in seq.results],
    })


@pytest.mark.parametrize("abbrev", CONV_FUNCTIONS)
def test_high_frequency_converges_to_lukewarm_baseline(abbrev):
    machine = skylake()
    profile = get_profile(abbrev)
    lukewarm = run_config(profile, machine, CONV_CFG, "baseline")
    for iat_ms in (1.0, 1_000.0, 60_000.0):  # frequency -> infinity
        cell = run_config(profile, machine, CONV_CFG, "spectrum_point",
                          iat_ms=iat_ms, ttl_ms=600_000.0)
        assert cell["regime"] == "lukewarm"
        assert canonical(cell["cycles"]) == canonical(lukewarm.cycles)
        assert cell["instructions"] == lukewarm.instructions
        assert cell["init_ms"] == 0.0 and cell["page_ms"] == 0.0


@pytest.mark.parametrize("abbrev", CONV_FUNCTIONS)
def test_lukewarm_jukebox_cell_matches_jukebox_config(abbrev):
    machine = skylake()
    profile = get_profile(abbrev)
    jb = run_config(profile, machine, CONV_CFG, "jukebox")
    cell = run_config(profile, machine, CONV_CFG, "spectrum_point",
                      iat_ms=1_000.0, ttl_ms=600_000.0, jukebox=True)
    assert canonical(cell["cycles"]) == canonical(jb.cycles)
    assert cell["instructions"] == jb.instructions


def test_back_to_back_cell_matches_reference_config():
    machine = skylake()
    profile = get_profile("ProdL-G")
    ref = run_config(profile, machine, CONV_CFG, "reference")
    cell = run_config(profile, machine, CONV_CFG, "spectrum_point",
                      iat_ms=0.0)
    assert cell["regime"] == "warm"
    assert canonical(cell["cycles"]) == canonical(ref.cycles)
    assert cell["instructions"] == ref.instructions


# ---------------------------------------------------------------------------
# Restore-twice: replay strictly below the recording restore.

@pytest.mark.parametrize("profile", SUITE, ids=lambda p: p.abbrev)
def test_replayed_restore_strictly_cheaper_than_first(profile):
    state = PageReplayState(pages=working_set_pages(profile))
    first = state.restore()
    second = state.restore()
    assert first.recorded and not second.recorded
    assert second.page_ms < first.page_ms


def test_cold_cell_reports_replay_below_first_restore():
    machine = skylake()
    profile = get_profile("ProdL-G")
    cell = run_config(profile, machine, CONV_CFG, "spectrum_point",
                      iat_ms=1_800_000.0, ttl_ms=600_000.0,
                      page_replay=True)
    assert cell["regime"] == "cold"
    assert cell["replay_page_ms"] < cell["first_restore_page_ms"]
    assert cell["prefetched_pages"] > 0
