"""Golden spectrum snapshot + the issue's acceptance battery.

``tests/golden/spectrum.json`` pins the full ``ext_spectrum`` result --
every cell's latency decomposition across two Table-2 profiles, both
ends of the toggle space, and all three regimes -- byte-exactly, the
same contract as the figure and fleet goldens.  Regenerate intentional
model changes with ``--update-golden`` and commit the diff.

The acceptance tests assert the properties the spectrum exists to show:

* the cold end is dominated by init + page-fault time, not execution;
* the three toggles (Jukebox / page replay / init trim) each move a
  *distinct* component of the decomposition;
* the sweep is byte-identical serial, sharded (``jobs=2``), and resumed
  from a warm engine cache.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import engine
from repro.experiments import ext_spectrum
from repro.experiments.common import RunConfig, run_config
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "spectrum.json"

#: Two Table-2 profiles spanning the language split (Go dense/compact,
#: Python scattered with the heaviest import graph).
GOLDEN_FUNCTIONS = ("Auth-G", "ProdL-G")
GOLDEN_VARIANTS = ("baseline", "all")
GOLDEN_IATS_MS = (0.0, 1_000.0, 1_800_000.0)  # warm / lukewarm / cold
GOLDEN_CFG = RunConfig(invocations=3, warmup=1, seed=1,
                       instruction_scale=0.25)

COLD_IAT_MS = 1_800_000.0
TTL_MS = ext_spectrum.DEFAULT_TTL_MS


def golden_sweep() -> ext_spectrum.SpectrumResult:
    return ext_spectrum.run(cfg=GOLDEN_CFG, functions=GOLDEN_FUNCTIONS,
                            iats_ms=GOLDEN_IATS_MS,
                            variants=GOLDEN_VARIANTS)


def canonical_json(result: ext_spectrum.SpectrumResult) -> str:
    payload = engine.canonicalize(dataclasses.asdict(result))
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def test_spectrum_matches_golden(update_golden):
    actual = canonical_json(golden_sweep())
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(actual, encoding="utf-8")
        pytest.skip("golden snapshot spectrum.json regenerated")
    assert GOLDEN_PATH.exists(), (
        "missing golden snapshot tests/golden/spectrum.json; generate it "
        "with pytest --update-golden and commit it")
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    assert actual == expected, (
        "spectrum sweep output drifted from its golden snapshot. If this "
        "cold-start model change is intentional, rerun with "
        "--update-golden and commit the regenerated spectrum.json; "
        "otherwise spectrum determinism broke.")


def test_golden_snapshot_is_canonical():
    text = GOLDEN_PATH.read_text(encoding="utf-8")
    payload = json.loads(text)
    assert json.dumps(payload, sort_keys=True, indent=2) + "\n" == text


# ---------------------------------------------------------------------------
# Acceptance: the cold end is init + page dominated.

def _cold_cell(abbrev, **toggles):
    return run_config(get_profile(abbrev), skylake(), GOLDEN_CFG,
                      "spectrum_point", iat_ms=COLD_IAT_MS, ttl_ms=TTL_MS,
                      **toggles)


@pytest.mark.parametrize("abbrev", GOLDEN_FUNCTIONS)
def test_cold_end_dominated_by_init_and_pages(abbrev):
    cell = _cold_cell(abbrev)
    assert cell["regime"] == "cold"
    overhead = cell["init_ms"] + cell["page_ms"]
    assert overhead / cell["latency_ms"] > 0.9, (
        f"{abbrev}: cold latency should be init+page dominated, got "
        f"{overhead:.2f} of {cell['latency_ms']:.2f}ms")
    assert cell["init_ms"] > 0 and cell["page_ms"] > 0


# ---------------------------------------------------------------------------
# Acceptance: each toggle moves a distinct component.

def test_jukebox_toggle_moves_only_execution():
    base = _cold_cell("ProdL-G")
    jb = _cold_cell("ProdL-G", jukebox=True)
    assert jb["exec_ms"] != base["exec_ms"]
    assert jb["init_ms"] == base["init_ms"]
    assert jb["page_ms"] == base["page_ms"]


def test_page_replay_toggle_moves_only_page_time():
    base = _cold_cell("ProdL-G")
    pr = _cold_cell("ProdL-G", page_replay=True)
    assert pr["page_ms"] < base["page_ms"]
    assert pr["init_ms"] == base["init_ms"]
    assert pr["exec_ms"] == base["exec_ms"]


def test_init_trim_toggle_moves_only_init_time():
    base = _cold_cell("ProdL-G")
    it = _cold_cell("ProdL-G", init_trim=True)
    assert it["init_ms"] < base["init_ms"]
    assert it["page_ms"] == base["page_ms"]
    assert it["exec_ms"] == base["exec_ms"]


# ---------------------------------------------------------------------------
# Acceptance: serial == sharded == cache-resumed, byte for byte.

SMALL_FUNCTIONS = ("Auth-G",)
SMALL_CFG = RunConfig(invocations=2, warmup=1, seed=1,
                      instruction_scale=0.25)


def _small_sweep() -> str:
    result = ext_spectrum.run(cfg=SMALL_CFG, functions=SMALL_FUNCTIONS,
                              iats_ms=GOLDEN_IATS_MS,
                              variants=GOLDEN_VARIANTS)
    return canonical_json(result)


def test_sweep_identical_serial_sharded_and_resumed(tmp_path):
    with engine.configure():
        serial = _small_sweep()
    with engine.configure(jobs=2):
        sharded = _small_sweep()
    assert sharded == serial, "parallel spectrum sweep diverged from serial"
    cache_dir = tmp_path / "spectrum-cache"
    with engine.configure(cache_dir=cache_dir) as cold_ctx:
        first = _small_sweep()
    assert cold_ctx.stats.misses > 0
    with engine.configure(cache_dir=cache_dir) as warm_ctx:
        resumed = _small_sweep()
    assert warm_ctx.stats.misses == 0 and warm_ctx.stats.hits > 0, (
        "resumed sweep did not come entirely from the engine cache")
    assert first == serial and resumed == serial, (
        "cache-resumed spectrum sweep diverged from serial")
