"""Unit tests for the cold-start package: pages, libinit, model."""

import pytest

from repro.coldstart import (
    COLDSTART_KINDS,
    ColdStartCharge,
    ColdStartSpec,
    ConstantColdStart,
    PageReplayState,
    RestoreParams,
    SnapshotState,
    SpectrumColdStart,
    import_graph_for,
    make_coldstart_model,
    working_set_pages,
)
from repro.coldstart.libinit import (MAX_TRIM_MEMORY_REDUCTION,
                                     MAX_TRIM_SPEEDUP)
from repro.core.jukebox import Jukebox
from repro.errors import ConfigurationError
from repro.sim.params import JukeboxParams
from repro.workloads.profiles import LANGUAGES
from repro.workloads.suite import SUITE


class TestPages:
    def test_working_set_scales_with_footprint(self):
        by_pages = sorted(SUITE, key=lambda p: working_set_pages(p))
        # Go functions ride a far thinner runtime image than Python.
        assert by_pages[0].language == "go"
        assert all(working_set_pages(p) > 0 for p in SUITE)

    def test_first_restore_records_then_replays(self):
        state = PageReplayState(pages=1000)
        first = state.restore()
        assert first.recorded
        assert first.faulted_pages == 1000
        assert first.prefetched_pages == 0
        second = state.restore()
        assert not second.recorded
        assert second.prefetched_pages == state.recorded_pages
        assert second.faulted_pages == 1000 - state.recorded_pages
        assert second.page_ms < first.page_ms

    def test_replay_disabled_repays_full_cost(self):
        state = PageReplayState(pages=1000, replay=False)
        first = state.restore()
        second = state.restore()
        assert not first.recorded and not second.recorded
        assert first.page_ms == second.page_ms
        assert second.faulted_pages == 1000

    def test_reset_forgets_the_trace(self):
        state = PageReplayState(pages=500)
        first = state.restore()
        state.restore()
        state.reset()
        again = state.restore()
        assert again.recorded
        assert again.page_ms == first.page_ms

    def test_restore_params_validated(self):
        with pytest.raises(ConfigurationError):
            RestoreParams(stable_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RestoreParams(prefetch_us=50.0, fault_us=35.0)
        with pytest.raises(ConfigurationError):
            PageReplayState(pages=0)


class TestLibInit:
    @pytest.mark.parametrize("language", LANGUAGES)
    def test_calibrated_inside_coldspy_bounds(self, language):
        graph = import_graph_for(language)
        assert 1.0 < graph.trim_speedup() <= MAX_TRIM_SPEEDUP
        assert 1.0 <= graph.trim_memory_reduction <= MAX_TRIM_MEMORY_REDUCTION

    def test_python_dominated_by_eager_unused(self):
        # ColdSpy's headline pattern: the trimming opportunity exceeds
        # the useful eager work.
        graph = import_graph_for("python")
        assert graph.eager_unused_ms > graph.eager_used_ms

    def test_trim_drops_exactly_the_unused_class(self):
        for language in LANGUAGES:
            graph = import_graph_for(language)
            assert graph.init_cost_ms(trim=False) - graph.init_cost_ms(
                trim=True) == graph.eager_unused_ms

    def test_lazy_libraries_never_charged_at_boot(self):
        graph = import_graph_for("python")
        assert graph.lazy_ms > 0
        assert graph.lazy_ms not in (graph.init_cost_ms(False),)
        assert graph.init_cost_ms(False) == (graph.base_ms
                                             + graph.eager_used_ms
                                             + graph.eager_unused_ms)

    def test_unknown_language_rejected(self):
        with pytest.raises(ConfigurationError):
            import_graph_for("rust")


class TestModels:
    def test_constant_charge_is_exactly_the_scalar(self):
        model = ConstantColdStart(120.0)
        charge = model.cold_start("any")
        assert charge.total_ms == 120.0
        assert charge.init_ms == 0.0 and charge.page_ms == 0.0
        # The addition chain the server uses must be a float no-op.
        assert 0.0 + 0.0 + 120.0 == 120.0

    def test_spec_validation(self):
        assert set(COLDSTART_KINDS) == {"constant", "spectrum"}
        with pytest.raises(ConfigurationError):
            ColdStartSpec(kind="magic")
        with pytest.raises(ConfigurationError):
            ColdStartSpec(constant_ms=-1.0)
        with pytest.raises(ConfigurationError):
            SpectrumColdStart(ColdStartSpec(kind="constant"))

    def test_factory_dispatch(self):
        assert isinstance(
            make_coldstart_model(ColdStartSpec(kind="constant")),
            ConstantColdStart)
        assert isinstance(
            make_coldstart_model(ColdStartSpec(kind="spectrum")),
            SpectrumColdStart)

    def test_spectrum_needs_a_profile(self):
        model = SpectrumColdStart(ColdStartSpec(kind="spectrum"))
        with pytest.raises(ConfigurationError):
            model.cold_start("cell")

    def test_spectrum_decomposition_per_language(self):
        model = SpectrumColdStart(ColdStartSpec(kind="spectrum"))
        for profile in SUITE[:3]:
            charge = model.cold_start(profile.abbrev, profile)
            graph = import_graph_for(profile.language)
            assert charge.init_ms == graph.init_cost_ms(trim=False)
            assert charge.page_ms > 0
            assert charge.other_ms == 0.0

    def test_init_trim_reduces_only_init(self):
        profile = SUITE[0]
        full = SpectrumColdStart(ColdStartSpec(kind="spectrum"))
        trim = SpectrumColdStart(ColdStartSpec(kind="spectrum",
                                               init_trim=True))
        a = full.cold_start("x", profile)
        b = trim.cold_start("x", profile)
        assert b.init_ms < a.init_ms
        assert b.page_ms == a.page_ms

    def test_reset_drops_recorded_traces(self):
        profile = SUITE[0]
        model = SpectrumColdStart(ColdStartSpec(kind="spectrum"))
        first = model.cold_start("x", profile)
        model.cold_start("x", profile)
        model.reset()
        again = model.cold_start("x", profile)
        assert again.page_ms == first.page_ms

    def test_charge_total_is_sum_of_parts(self):
        charge = ColdStartCharge(init_ms=1.5, page_ms=2.25, other_ms=0.25)
        assert charge.total_ms == 4.0


class TestSnapshotState:
    def test_composes_page_and_jukebox_sides(self, tiny_machine,
                                             tiny_traces):
        from repro.sim.core import Simulator
        from repro.sim.simulate import simulate

        state = SnapshotState(PageReplayState(pages=800))
        params = tiny_machine.jukebox
        # Before any capture the instruction side restores cold.
        fresh = state.restore_jukebox(params)
        assert isinstance(fresh, Jukebox)

        sim = Simulator(tiny_machine)
        jb = Jukebox(params)
        jb.begin_invocation(sim.hierarchy)
        result = simulate(tiny_traces[0], sim=sim)
        jb.end_invocation(sim.hierarchy, result)
        state.capture_metadata(jb)
        assert state.metadata is not None

        restored = state.restore_jukebox(params)
        assert restored._replay_buffer is not None
        assert len(restored._replay_buffer) == state.metadata.n_entries

    def test_empty_capture_keeps_previous_image(self):
        state = SnapshotState(PageReplayState(pages=10))
        params = JukeboxParams()
        state.capture_metadata(Jukebox(params))  # nothing recorded yet
        assert state.metadata is None
