"""Regenerate the pre-refactor ground-truth snapshots (maintainers only).

The differential battery in ``test_spectrum_differential.py`` asserts
that the constant-penalty :class:`~repro.coldstart.model.ColdStartModel`
reproduces, byte-for-byte, what the scalar ``cold_start_penalty_ms``
arithmetic produced *before* the cold-start refactor.  The committed
``data/prerefactor.json`` was captured by running this script at the
last pre-refactor commit; it must never be regenerated from post-
refactor code (that would make the comparison vacuous).  The script is
kept so the provenance of the snapshot is reviewable and so a future
intentional timing change can re-freeze it in one step::

    PYTHONPATH=src python tests/coldstart/capture_prerefactor.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine import canonicalize
from repro.fleet.config import FleetConfig
from repro.fleet.region import simulate_region
from repro.server.keepalive import FixedTTL
from repro.server.server import ServerConfig, ServerSimulator
from repro.workloads.arrival import make_arrival_process
from repro.workloads.suite import SUITE

DATA_PATH = Path(__file__).parent / "data" / "prerefactor.json"

#: Seeds the battery replays (>= 3 per the issue).
SEEDS = (3, 17, 2022)


def canonical(value) -> str:
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"))


def server_stats_dict(stats) -> dict:
    """Every ServerStats field that the scalar penalty path can move."""
    return {
        "arrivals": stats.arrivals,
        "invocations": stats.invocations,
        "cold_starts": stats.cold_starts,
        "dropped": stats.dropped,
        "evictions": stats.evictions,
        "busy_ms": stats.busy_ms,
        "latencies_ms": stats.latencies_ms,
        "iats_ms": stats.iats_ms,
        "peak_warm_instances": stats.peak_warm_instances,
        "peak_memory_bytes": stats.peak_memory_bytes,
        "simulated_ms": stats.simulated_ms,
    }


def run_server_enforced(seed: int):
    """Warm-set admission model with a short TTL: plenty of cold starts,
    every one charged the scalar 120ms penalty."""
    sim = ServerSimulator(
        config=ServerConfig(cores=4, enforce_memory=True,
                            cold_start_penalty_ms=120.0),
        keepalive=FixedTTL(ttl_minutes=0.05),
        seed=seed)
    for i, profile in enumerate(SUITE[:8]):
        sim.add_instance(profile,
                         make_arrival_process("poisson", 800.0,
                                              seed=seed * 1000 + i))
    return sim.run(15_000.0)


def run_server_legacy(seed: int):
    """Legacy lazy-eviction path (enforce_memory=False) with a penalty."""
    sim = ServerSimulator(
        config=ServerConfig(cores=4, cold_start_penalty_ms=35.0),
        keepalive=FixedTTL(ttl_minutes=0.02),
        seed=seed)
    for i, profile in enumerate(SUITE[:8]):
        sim.add_instance(profile,
                         make_arrival_process("lognormal", 600.0,
                                              seed=seed * 1000 + i))
    return sim.run(15_000.0)


def run_fleet(seed: int) -> dict:
    region = simulate_region(FleetConfig(
        nodes=2, instances=60, functions=10, duration_ms=10_000.0,
        mean_iat_ms=700.0, ttl_minutes=0.05, seed=seed))
    # The config echo is excluded on purpose: the refactor adds fields to
    # FleetConfig, and the battery pins *results*, not the config schema.
    return {"node_results": region["node_results"],
            "region": region["region"]}


def main() -> None:
    payload = {}
    for seed in SEEDS:
        payload[str(seed)] = {
            "server_enforced": canonical(
                server_stats_dict(run_server_enforced(seed))),
            "server_legacy": canonical(
                server_stats_dict(run_server_legacy(seed))),
            "fleet": canonical(run_fleet(seed)),
        }
    DATA_PATH.parent.mkdir(parents=True, exist_ok=True)
    DATA_PATH.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n",
                         encoding="utf-8")
    print(f"wrote {DATA_PATH} "
          f"({DATA_PATH.stat().st_size} bytes, seeds {SEEDS})")


if __name__ == "__main__":
    main()
