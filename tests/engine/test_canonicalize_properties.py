"""Property tests for ``canonicalize``: stability under pickling.

``Job.key()`` is the cache-addressing fingerprint, so ``canonicalize``
must map a value and its pickle round-trip to the *same* canonical form
-- otherwise a job built in a pool worker (whose inputs crossed a pickle
boundary) would cache-miss against the identical job built in the parent.
A seeded ``random.Random`` generates nested structures from the full
canonicalizable vocabulary (scalars, dicts, lists, tuples, sets,
dataclasses) and the property is checked on each.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import random
from typing import Any, Tuple

import pytest

from repro.engine.job import canonicalize
from repro.errors import ConfigurationError

SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)
VALUES_PER_SEED = 25
MAX_DEPTH = 4


@dataclasses.dataclass(frozen=True)
class Point:
    """A picklable dataclass to exercise the ``__dataclass__`` branch."""

    x: float
    label: str
    tags: Tuple[str, ...] = ()


def random_scalar(rng: random.Random) -> Any:
    choice = rng.randrange(6)
    if choice == 0:
        return None
    if choice == 1:
        return rng.random() < 0.5
    if choice == 2:
        return rng.randrange(-1000, 1000)
    if choice == 3:
        # round() keeps the float exactly representable after json dumps.
        return round(rng.uniform(-10.0, 10.0), 9)
    if choice == 4:
        return "".join(rng.choice("abcxyz_0123") for _ in range(rng.randrange(8)))
    return Point(x=round(rng.random(), 6), label=rng.choice("abc"),
                 tags=tuple(rng.choice("pq") for _ in range(rng.randrange(3))))


def random_value(rng: random.Random, depth: int = 0) -> Any:
    if depth >= MAX_DEPTH or rng.random() < 0.4:
        return random_scalar(rng)
    kind = rng.randrange(4)
    size = rng.randrange(4)
    if kind == 0:
        return {f"k{rng.randrange(10)}": random_value(rng, depth + 1)
                for _ in range(size)}
    if kind == 1:
        return [random_value(rng, depth + 1) for _ in range(size)]
    if kind == 2:
        return tuple(random_value(rng, depth + 1) for _ in range(size))
    # Sets need hashable members: scalars (Point is frozen, so hashable).
    return {random_scalar(rng) for _ in range(size)}


def encode(value: Any) -> str:
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"))


@pytest.mark.parametrize("seed", SEEDS)
def test_canonicalize_survives_pickle_round_trip(seed):
    """canonicalize(x) == canonicalize(pickle.loads(pickle.dumps(x))) --
    the property that keeps cache keys stable across pool workers."""
    rng = random.Random(seed)
    for step in range(VALUES_PER_SEED):
        value = random_value(rng)
        round_tripped = pickle.loads(pickle.dumps(value))
        assert encode(value) == encode(round_tripped), (
            f"seed={seed} step={step}: pickle changed the canonical form "
            f"of {value!r}")


@pytest.mark.parametrize("seed", SEEDS)
def test_canonical_form_is_json_round_trip_stable(seed):
    """The canonical form survives a JSON encode/decode unchanged, so the
    cache key derived from it is pure data with no Python-only residue."""
    rng = random.Random(seed)
    for step in range(VALUES_PER_SEED):
        canonical = canonicalize(random_value(rng))
        decoded = json.loads(json.dumps(canonical))
        assert decoded == canonical, f"seed={seed} step={step}"


def test_set_insertion_order_is_erased():
    forward = {("a", 1), ("b", 2), ("c", 3)}
    reverse = set(sorted(forward, reverse=True))
    assert encode(forward) == encode(reverse)


def test_distinct_container_types_never_alias():
    assert encode([1, 2]) != encode((1, 2))
    assert encode({1, 2}) != encode([1, 2])
    assert encode({"a": 1}) != encode(["a", 1])


def test_non_string_dict_keys_are_rejected():
    with pytest.raises(ConfigurationError):
        canonicalize({1: "x"})


def test_unfingerprintable_values_are_rejected():
    with pytest.raises(ConfigurationError):
        canonicalize(object())
