"""Durable-cache contract: framing, locking, degrade, reaping, quarantine."""

from __future__ import annotations

import errno
import os
import pickle
import subprocess
import sys

import pytest

from repro.engine import (
    CacheEntryError,
    CacheLock,
    ResultCache,
    check_entry,
    decode_entry,
    encode_entry,
)
from repro.engine.cache import _tmp_pid
from repro.engine.job import SCHEMA_VERSION
from repro.errors import ConfigurationError
from repro.obs.tracer import Tracer

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def dead_pid() -> int:
    """A pid guaranteed to have exited (a just-reaped child's)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    assert proc.wait() == 0
    # The child is wait()ed, so its pid no longer signals as alive
    # (barring pid reuse inside this test's lifetime, which would need
    # a full wraparound of the pid space).
    return proc.pid if not _pid_probe(proc.pid) else 2 ** 22 - 1


def _pid_probe(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


class TestFraming:
    def test_roundtrip(self):
        blob = encode_entry({"cpi": 1.25, "runs": [1, 2]})
        assert decode_entry(blob) == {"cpi": 1.25, "runs": [1, 2]}

    def test_header_carries_format_and_schema(self):
        header = encode_entry(1).split(b"\n", 1)[0].decode()
        magic, fmt, schema, digest, length = header.split(" ")
        assert magic == "repro-cache"
        assert fmt == "1"
        assert schema == str(SCHEMA_VERSION)
        assert len(digest) == 64
        assert int(length) > 0

    def test_bad_magic_is_rejected(self):
        with pytest.raises(CacheEntryError, match="frame header"):
            check_entry(b"garbage that is not a frame\n123")

    def test_legacy_unframed_pickle_is_rejected(self):
        # Pre-frame caches stored bare pickles; they must read as
        # damaged (recompute), never be trusted.
        with pytest.raises(CacheEntryError, match="frame header"):
            check_entry(pickle.dumps({"cpi": 1.0}))

    def test_unknown_frame_format_is_rejected(self):
        blob = encode_entry(1).replace(b" 1 ", b" 9 ", 1)
        with pytest.raises(CacheEntryError, match="format"):
            check_entry(blob)

    def test_foreign_schema_is_rejected(self):
        good = encode_entry(1)
        header, payload = good.split(b"\n", 1)
        parts = header.decode().split(" ")
        parts[2] = str(SCHEMA_VERSION + 999)
        blob = " ".join(parts).encode() + b"\n" + payload
        with pytest.raises(CacheEntryError, match="schema"):
            check_entry(blob)

    def test_truncated_payload_is_a_torn_write(self):
        blob = encode_entry(list(range(100)))
        with pytest.raises(CacheEntryError, match="torn write"):
            check_entry(blob[:-5])

    def test_flipped_payload_byte_fails_the_digest(self):
        blob = bytearray(encode_entry(list(range(100))))
        blob[-1] ^= 0xFF
        with pytest.raises(CacheEntryError, match="digest mismatch"):
            check_entry(bytes(blob))


class TestCacheLock:
    def test_shared_holders_coexist(self, tmp_path):
        first, second = CacheLock(tmp_path), CacheLock(tmp_path)
        assert first.acquire()
        assert second.acquire()
        assert first.mode == second.mode == "shared"
        first.release(), second.release()

    def test_exclusive_probe_fails_while_shared_held(self, tmp_path):
        sweep, fsck_lock = CacheLock(tmp_path), CacheLock(tmp_path)
        assert sweep.acquire(exclusive=False)
        try:
            assert not fsck_lock.acquire(exclusive=True, blocking=False)
            assert not fsck_lock.held
        finally:
            sweep.release()
        assert fsck_lock.acquire(exclusive=True, blocking=False)
        fsck_lock.release()

    def test_double_acquire_is_a_configuration_error(self, tmp_path):
        lock = CacheLock(tmp_path)
        assert lock.acquire()
        with pytest.raises(ConfigurationError, match="already held"):
            lock.acquire()
        lock.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = CacheLock(tmp_path)
        lock.release()  # never acquired: no-op
        assert not lock.held

    def test_holding_context(self, tmp_path):
        lock = CacheLock(tmp_path)
        with lock.holding() as acquired:
            assert acquired and lock.held
        assert not lock.held


class TestStoreDegradation:
    def test_induced_enospc_degrades_to_no_store(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.induce_store_error(errno.ENOSPC)
        with pytest.warns(RuntimeWarning, match="cannot store"):
            assert not cache.put(KEY, 1)
        assert cache.stores_disabled
        assert cache.stats.store_failures == 1
        assert cache.get(KEY) == (False, None)  # nothing landed

    def test_degraded_cache_warns_exactly_once(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.induce_store_error(errno.EACCES)
        with pytest.warns(RuntimeWarning):
            cache.put(KEY, 1)
        # Later stores are silent no-ops, not repeat warnings.
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert not cache.put(OTHER, 2)
        assert cache.stats.stores == 0

    def test_lookups_survive_store_degradation(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, "kept")
        cache.induce_store_error(errno.ENOSPC)
        with pytest.warns(RuntimeWarning):
            cache.put(OTHER, "lost")
        assert cache.get(KEY) == (True, "kept")

    def test_store_failure_emits_trace_event(self, tmp_path):
        tracer = Tracer()
        cache = ResultCache(tmp_path / "c", tracer=tracer)
        cache.induce_store_error(errno.ENOSPC)
        with pytest.warns(RuntimeWarning):
            cache.put(KEY, 1)
        [event] = [e for e in tracer.events
                   if e.kind == "cache.store_failed"]
        assert event.fields_dict()["error"] == "OSError"

    def test_failed_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.induce_store_error(errno.ENOSPC)
        with pytest.warns(RuntimeWarning):
            cache.put(KEY, 1)
        assert not list((tmp_path / "c").rglob("*.tmp"))


class TestTempReaping:
    def test_tmp_pid_parsing(self, tmp_path):
        assert _tmp_pid(tmp_path / f".{KEY}.pkl.1234.tmp") == 1234
        assert _tmp_pid(tmp_path / f".{KEY}.pkl.notanum.tmp") is None
        assert _tmp_pid(tmp_path / f"{KEY}.pkl") is None

    def test_open_reaps_orphans_of_dead_writers(self, tmp_path):
        root = tmp_path / "c"
        slot = root / KEY[:2]
        slot.mkdir(parents=True)
        orphan = slot / f".{KEY}.pkl.{dead_pid()}.tmp"
        orphan.write_bytes(b"half a write")
        cache = ResultCache(root).open()
        try:
            assert not orphan.exists()
            assert cache.stats.reaped_tmp == 1
        finally:
            cache.close()

    def test_open_spares_in_flight_writes_of_live_pids(self, tmp_path):
        root = tmp_path / "c"
        slot = root / KEY[:2]
        slot.mkdir(parents=True)
        # Pid 1 (init) always exists and is never this process.
        in_flight = slot / f".{KEY}.pkl.1.tmp"
        in_flight.write_bytes(b"someone else, mid-write")
        cache = ResultCache(root).open()
        try:
            assert in_flight.exists()
            assert cache.stats.reaped_tmp == 0
        finally:
            cache.close()

    def test_open_reaps_unparseable_temp_names(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        junk = root / ".junk.pkl.notapid.tmp"
        junk.write_bytes(b"?")
        cache = ResultCache(root).open()
        try:
            assert not junk.exists()
        finally:
            cache.close()


class TestQuarantine:
    def test_damaged_entry_is_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, list(range(500)))
        cache.tear(KEY)
        hit, value = cache.get(KEY)
        assert not hit and value is None
        assert cache.stats.quarantined == 1
        assert cache.quarantine_path_for(KEY).exists()
        assert not cache.path_for(KEY).exists()

    def test_len_excludes_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, 1)
        cache.put(OTHER, 2)
        cache.tear(KEY)
        cache.get(KEY)  # quarantines
        assert len(cache) == 1

    def test_quarantined_slot_recovers_on_rewrite(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, "v1")
        cache.tear(KEY)
        cache.get(KEY)
        assert cache.put(KEY, "v2")
        assert cache.get(KEY) == (True, "v2")

    def test_quarantine_emits_trace_event(self, tmp_path):
        tracer = Tracer()
        cache = ResultCache(tmp_path / "c", tracer=tracer)
        cache.put(KEY, 1)
        cache.tear(KEY)
        cache.get(KEY)
        kinds = [e.kind for e in tracer.events]
        assert "cache.quarantine" in kinds

    def test_tear_and_corrupt_ignore_absent_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert not cache.tear(KEY)
        assert not cache.corrupt(KEY)


class TestLifecycle:
    def test_open_takes_and_close_releases_the_shared_lock(self, tmp_path):
        tracer = Tracer()
        cache = ResultCache(tmp_path / "c", tracer=tracer)
        cache.open()
        assert cache.lock.held and cache.lock.mode == "shared"
        cache.close()
        assert not cache.lock.held
        actions = [e.fields_dict()["action"] for e in tracer.events
                   if e.kind == "cache.lock"]
        assert actions == ["acquire", "release"]

    def test_open_is_reentrant(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.open()
        cache.open()  # second open: no double-acquire error
        assert cache.lock.held
        cache.close()

    def test_clear_reacquires_a_held_lock(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.open()
        cache.put(KEY, 1)
        cache.clear()
        assert cache.lock.held  # still usable for the rest of the sweep
        assert len(cache) == 0
        cache.close()
