"""FaultSpec grammar, matching/firing semantics, and plan coercion."""

from __future__ import annotations

import errno
import pickle

import pytest

from repro.engine import Job, TRANSIENT, PERMANENT
from repro.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedPermanentError,
    InjectedTransientError,
    parse_fault_plan,
)


def job_for(config="baseline", function="Auth-G"):
    class P:
        abbrev = function

        def describe(self):
            return function

    return Job.make(P(), None, "cfg", config)


class TestParse:
    def test_index_selector(self):
        spec = FaultSpec.parse("fail:#3")
        assert spec.action == "fail"
        assert spec.index == 3
        assert spec.times == 1
        assert spec.error == TRANSIENT

    def test_field_selector_with_options(self):
        spec = FaultSpec.parse("fail:config=jukebox:permanent:always")
        assert spec.field == "config"
        assert spec.value == "jukebox"
        assert spec.error == PERMANENT
        assert spec.times == 0

    def test_wildcard_and_times(self):
        spec = FaultSpec.parse("kill:*:x3")
        assert spec.action == "kill"
        assert spec.index is None and spec.field is None
        assert spec.times == 3

    def test_whitespace_is_tolerated(self):
        spec = FaultSpec.parse(" corrupt : #0 ")
        assert spec.action == "corrupt"
        assert spec.index == 0

    @pytest.mark.parametrize("bad", [
        "fail",                      # no selector
        "explode:#1",                # unknown action
        "fail:#x",                   # non-integer index
        "fail:three",                # unknown selector shape
        "fail:machine=sky",          # unknown field
        "fail:#1:xq",                # malformed times
        "fail:#1:sometimes",         # unknown option
        "fail:#1:x-1",               # negative times
    ])
    def test_malformed_specs_are_configuration_errors(self, bad):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(bad)

    def test_describe_round_trips_the_essentials(self):
        assert FaultSpec.parse("fail:#3").describe() == "fail:#3:x1"
        assert (FaultSpec.parse("fail:config=jukebox:always").describe()
                == "fail:config=jukebox:always")

    @pytest.mark.parametrize("action", ["hang", "slow", "enospc", "torn"])
    def test_chaos_actions_parse(self, action):
        spec = FaultSpec.parse(f"{action}:#2")
        assert spec.action == action and spec.index == 2

    def test_seconds_amount_parses_on_timed_actions(self):
        assert FaultSpec.parse("hang:#1:0.25").amount == 0.25
        assert FaultSpec.parse("slow:*:0.1:always").amount == 0.1
        assert FaultSpec.parse("hang:#1").amount is None  # forever

    @pytest.mark.parametrize("bad", [
        "fail:#1:0.5",               # seconds on an untimed action
        "torn:#1:0.5",               # seconds on a disk action
        "hang:#1:-2",                # negative seconds
    ])
    def test_misplaced_amounts_are_configuration_errors(self, bad):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(bad)

    def test_describe_includes_the_amount(self):
        assert FaultSpec.parse("hang:#1:0.25").describe() == "hang:#1:x1:0.25s"
        assert FaultSpec.parse("slow:*").describe() == "slow:*:x1"


class TestMatching:
    def test_index_selector_matches_only_that_cell(self):
        spec = FaultSpec.parse("fail:#3")
        assert spec.matches(job_for(), 3)
        assert not spec.matches(job_for(), 4)

    def test_field_selector_matches_by_job_field(self):
        spec = FaultSpec.parse("fail:config=jukebox")
        assert spec.matches(job_for(config="jukebox"), 0)
        assert not spec.matches(job_for(config="baseline"), 0)

    def test_function_selector(self):
        spec = FaultSpec.parse("fail:function=Auth-G")
        assert spec.matches(job_for(function="Auth-G"), 0)
        assert not spec.matches(job_for(function="Email-P"), 0)

    def test_predicate_selector(self):
        spec = FaultSpec(action="fail",
                         predicate=lambda job: job.config == "jukebox")
        assert spec.matches(job_for(config="jukebox"), 0)
        assert not spec.matches(job_for(config="baseline"), 0)

    def test_wildcard_matches_everything(self):
        spec = FaultSpec.parse("fail:*")
        assert spec.matches(job_for(), 0)
        assert spec.matches(job_for(config="jukebox"), 99)

    def test_fires_respects_times(self):
        once = FaultSpec.parse("fail:#0")
        assert once.fires(0)
        assert not once.fires(1)
        always = FaultSpec.parse("fail:#0:always")
        assert all(always.fires(n) for n in range(5))

    def test_make_error_class_follows_spec(self):
        transient = FaultSpec.parse("fail:#0").make_error(job_for(), 0, 0)
        permanent = FaultSpec.parse("fail:#0:permanent").make_error(
            job_for(), 0, 0)
        assert isinstance(transient, InjectedTransientError)
        assert isinstance(permanent, InjectedPermanentError)


class TestPlan:
    def test_coerce_accepts_strings_specs_and_plans(self):
        plan = FaultPlan.coerce(["fail:#1", FaultSpec.parse("kill:#2")])
        assert len(plan.specs) == 2
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce("fail:#1").specs[0].index == 1

    def test_coerce_rejects_junk(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultPlan.coerce([42])

    def test_truthiness_tracks_content(self):
        assert not FaultPlan()
        assert FaultPlan.coerce("fail:#0")

    def test_fail_fault_raises_only_while_it_fires(self):
        plan = FaultPlan.coerce("fail:#0:x1")
        with pytest.raises(InjectedTransientError):
            plan.on_execute(job_for(), 0, attempt=0, dispatch=0)
        # Second attempt: the fault is spent.
        plan.on_execute(job_for(), 0, attempt=1, dispatch=1)

    def test_kill_fault_is_inert_outside_pool_workers(self):
        plan = FaultPlan.coerce("kill:*:always")
        # The current process is not a daemonic pool worker, so this
        # must return instead of calling os._exit.
        plan.on_execute(job_for(), 0, attempt=0, dispatch=0)

    def test_should_corrupt(self):
        plan = FaultPlan.coerce(["corrupt:#1", "fail:#2"])
        assert plan.should_corrupt(job_for(), 1)
        assert not plan.should_corrupt(job_for(), 2)

    def test_store_errno_arms_only_enospc_matches(self):
        plan = FaultPlan.coerce(["enospc:#1", "torn:#2"])
        assert plan.store_errno(job_for(), 1) == errno.ENOSPC
        assert plan.store_errno(job_for(), 2) is None

    def test_should_tear(self):
        plan = FaultPlan.coerce(["torn:#2", "enospc:#1"])
        assert plan.should_tear(job_for(), 2)
        assert not plan.should_tear(job_for(), 1)

    def test_bounded_hang_and_slow_run_in_the_main_process(self):
        # Timed delays are safe anywhere; only *unbounded* hangs are
        # restricted to daemonic pool workers.
        plan = FaultPlan.coerce(["hang:#0:0.001", "slow:#0:0.001"])
        plan.on_execute(job_for(), 0, attempt=0, dispatch=0)  # returns

    def test_unbounded_hang_is_inert_outside_pool_workers(self):
        plan = FaultPlan.coerce("hang:*:always")
        # Were this honoured here, the test suite would wedge forever.
        plan.on_execute(job_for(), 0, attempt=0, dispatch=0)

    def test_plans_are_picklable(self):
        plan = FaultPlan.coerce(["fail:#1:permanent", "kill:*:x2"])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_parse_fault_plan_helper(self):
        assert parse_fault_plan([]).specs == ()
        plan = parse_fault_plan(["fail:#1", "corrupt:*"])
        assert [s.action for s in plan.specs] == ["fail", "corrupt"]

    def test_describe(self):
        plan = parse_fault_plan(["fail:#1", "kill:#2:always"])
        assert plan.describe() == "fail:#1:x1, kill:#2:always"
        assert FaultPlan().describe() == "no faults"
