"""Crash recovery: SIGKILLed drivers resume byte-identically from cache.

The driver under test is :mod:`tests.engine.crash_driver` -- a serial
sweep printing one flushed line per cache checkpoint.  The battery
SIGKILLs it at seeded points in the schedule, reruns it, and
byte-compares the rerun's canonical-JSON RESULT line against an
undisturbed in-process baseline; the incremental result cache is the
only recovery log there is.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import configure, sweep_outcomes
from tests.engine.crash_driver import make_jobs, result_line

ROOT = Path(__file__).resolve().parent.parent.parent
COUNT = 5
SEED = 1207  # arbitrary but pinned: the kill schedule must be replayable


def driver_cmd(cache_dir: Path):
    return [sys.executable, "-m", "tests.engine.crash_driver",
            "--cache-dir", str(cache_dir), "--count", str(COUNT)]


def driver_env():
    return dict(os.environ,
                PYTHONPATH=f"{ROOT / 'src'}{os.pathsep}{ROOT}")


def run_driver(cache_dir: Path) -> subprocess.CompletedProcess:
    return subprocess.run(driver_cmd(cache_dir), cwd=ROOT, env=driver_env(),
                          capture_output=True, text=True, check=True,
                          timeout=120)


def kill_after_checkpoints(cache_dir: Path, checkpoints: int) -> None:
    victim = subprocess.Popen(driver_cmd(cache_dir), cwd=ROOT,
                              env=driver_env(), stdout=subprocess.PIPE,
                              text=True)
    seen = 0
    for line in victim.stdout:
        if line.startswith("cell "):
            seen += 1
            if seen >= checkpoints:
                victim.send_signal(signal.SIGKILL)
                break
    assert victim.wait(timeout=120) == -signal.SIGKILL
    victim.stdout.close()


def parse_run(proc: subprocess.CompletedProcess):
    lines = proc.stdout.strip().splitlines()
    result = next(l for l in lines if l.startswith("RESULT "))
    stats = next(l for l in lines if l.startswith("STATS "))
    hits = int(stats.split("hits=")[1].split()[0])
    return result, hits


@pytest.fixture(scope="module")
def expected():
    """The undisturbed ground truth, computed in-process."""
    with configure():
        values = [o.value for o in sweep_outcomes(make_jobs(COUNT))]
    return result_line(values)


class TestSigkillResume:
    def test_seeded_kill_points_resume_byte_identical(self, expected,
                                                      tmp_path):
        # Two seeded kill points: early in the schedule and late.
        rng = random.Random(SEED)
        points = sorted(rng.sample(range(1, COUNT), 2))
        for kill_after in points:
            cache_dir = tmp_path / f"kill-{kill_after}"
            kill_after_checkpoints(cache_dir, kill_after)
            result, hits = parse_run(run_driver(cache_dir))
            assert result == expected, (
                f"resume after SIGKILL@{kill_after} changed results")
            # Every checkpointed cell must come back from the cache.
            assert hits >= kill_after

    def test_repeated_kills_still_converge(self, expected, tmp_path):
        # Kill after every single checkpoint; each rerun advances the
        # frontier by at least one cell, so COUNT runs always finish it.
        cache_dir = tmp_path / "repeat"
        for _ in range(COUNT - 1):
            kill_after_checkpoints(cache_dir, 1)
        result, hits = parse_run(run_driver(cache_dir))
        assert result == expected
        assert hits >= 1

    def test_unkilled_driver_matches_in_process_baseline(self, expected,
                                                         tmp_path):
        result, hits = parse_run(run_driver(tmp_path / "clean"))
        assert result == expected
        assert hits == 0


class TestConcurrentSweeps:
    def test_two_drivers_share_one_cache_root(self, expected, tmp_path):
        # The advisory lock is *shared* for sweeps: two drivers on one
        # cache directory must both finish (no lock-out) and agree.
        cache_dir = tmp_path / "shared"
        first = subprocess.Popen(driver_cmd(cache_dir), cwd=ROOT,
                                 env=driver_env(), stdout=subprocess.PIPE,
                                 text=True)
        second = subprocess.Popen(driver_cmd(cache_dir), cwd=ROOT,
                                  env=driver_env(), stdout=subprocess.PIPE,
                                  text=True)
        out_first, _ = first.communicate(timeout=120)
        out_second, _ = second.communicate(timeout=120)
        assert first.returncode == 0 and second.returncode == 0
        for out in (out_first, out_second):
            result = next(l for l in out.splitlines()
                          if l.startswith("RESULT "))
            assert result == expected, "concurrent sweeps diverged"

    def test_fsck_is_locked_out_across_processes(self, tmp_path):
        # Hold the sweep's shared lock in this process; an fsck launched
        # as a *separate* process must see it through flock and exit 3.
        from repro.engine import ResultCache
        cache_dir = tmp_path / "busy"
        cache = ResultCache(cache_dir)
        cache.put("ab" + "0" * 62, 1)
        cache.open()
        try:
            probe = subprocess.run(
                [sys.executable, "-m", "repro.engine", "fsck",
                 str(cache_dir)],
                cwd=ROOT, env=driver_env(), capture_output=True, text=True,
                timeout=120)
            assert probe.returncode == 3, probe.stderr
            assert "live sweep" in probe.stderr
        finally:
            cache.close()
        released = subprocess.run(
            [sys.executable, "-m", "repro.engine", "fsck", str(cache_dir)],
            cwd=ROOT, env=driver_env(), capture_output=True, text=True,
            timeout=120)
        assert released.returncode == 0, released.stderr


class TestCrashHygiene:
    def test_rerun_reaps_stale_temp_files(self, expected, tmp_path):
        # A crash can strand a half-written temp file; the next open
        # reaps it (the writer pid is dead) and the rerun still matches.
        cache_dir = tmp_path / "stale"
        kill_after_checkpoints(cache_dir, 1)
        slot = next(p for p in sorted(cache_dir.iterdir())
                    if p.is_dir() and len(p.name) == 2)
        entry = next(slot.glob("*.pkl"))
        stale = slot / f".{entry.name}.99999999.tmp"
        stale.write_bytes(b"half a write")
        result, _ = parse_run(run_driver(cache_dir))
        assert result == expected
        assert not stale.exists()
