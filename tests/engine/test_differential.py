"""Differential equivalence: every execution mode yields identical bytes.

One grid of deterministic cells (``diff_numeric`` from the fake provider)
is swept serially, through a two-worker process pool, against a warm
cache, and through a retry-after-injected-fault schedule.  All four must
produce *byte-identical* canonical JSON -- the engine's core promise that
how a sweep executes can never change what it computes.
"""

from __future__ import annotations

import json

import pytest

import tests.engine.fake_provider  # noqa: F401  (registers diff_numeric)
from repro.engine import FailurePolicy, configure, sweep
from repro.engine.job import Job
from repro.experiments.common import RunConfig
from repro.workloads.suite import suite_subset

PROVIDER = "tests.engine.fake_provider"
CFG = RunConfig(invocations=2, warmup=1, seed=11)
SCALES = (0.5, 1.0, 2.0)


def grid_jobs():
    """The shared (profile x scale) grid: 2 functions x 3 scales."""
    profiles = suite_subset(["Auth-G", "ProdL-G"])
    return [Job.make(p, None, CFG, "diff_numeric", provider=PROVIDER,
                     scale=s)
            for p in profiles for s in SCALES]


def canonical(results) -> str:
    return json.dumps(results, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def serial_bytes() -> str:
    """The serial-run oracle every other mode must match byte-for-byte."""
    with configure():
        return canonical(sweep(grid_jobs()))


def test_pool_matches_serial(serial_bytes):
    with configure(jobs=2):
        pooled = canonical(sweep(grid_jobs()))
    assert pooled == serial_bytes


def test_warm_cache_matches_serial(serial_bytes, tmp_path):
    with configure(cache_dir=tmp_path / "cache") as ctx:
        cold = canonical(sweep(grid_jobs()))
        warm = canonical(sweep(grid_jobs()))
        assert ctx.stats.hits == len(grid_jobs())
    assert cold == serial_bytes
    assert warm == serial_bytes


def test_retry_after_injected_fault_matches_serial(serial_bytes):
    with configure(faults="fail:#2",
                   policy=FailurePolicy.retrying(retries=1)) as ctx:
        retried = canonical(sweep(grid_jobs()))
        assert ctx.stats.retries == 1
    assert retried == serial_bytes


def test_pool_after_fault_with_cache_matches_serial(serial_bytes, tmp_path):
    """The modes compose: pooled + cached + fault-retried is still exact."""
    with configure(jobs=2, cache_dir=tmp_path / "cache", faults="fail:#1",
                   policy=FailurePolicy.retrying(retries=1)):
        combined = canonical(sweep(grid_jobs()))
    assert combined == serial_bytes


def test_backends_never_share_cache_entries(tmp_path):
    """A columnar-keyed sweep must not warm the cache for a scalar-keyed
    one (the stale-cache regression for the backend field) -- while both
    still produce byte-identical payloads."""
    profile = suite_subset(["Auth-G"])[0]
    machine_cfg = RunConfig(invocations=2, warmup=1, seed=3,
                            instruction_scale=0.05)
    from repro.sim.params import skylake

    from repro.engine.job import canonicalize

    def jobs(backend):
        return [Job.make(profile, skylake(),
                         machine_cfg.replace(backend=backend), "baseline")]

    def run(backend):
        return canonical([canonicalize(r) for r in sweep(jobs(backend))])

    with configure(cache_dir=tmp_path / "cache") as ctx:
        columnar = run("columnar")
        assert ctx.stats.hits == 0
        scalar = run("scalar")
        assert ctx.stats.hits == 0  # scalar key missed the columnar entry
        again = run("scalar")
        assert ctx.stats.hits == 1  # same-backend re-run does hit
    assert columnar == scalar == again
