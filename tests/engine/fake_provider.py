"""A millisecond-cheap config provider for engine resilience tests.

Resilience tests need many sweep cells (20-cell batches, kill/retry
schedules, serial-vs-pool oracles) and none of them care about simulator
output -- only about which cells ran, failed, or were retried.  This
module registers ``resilience_echo``: a builder that just echoes its
inputs as a deterministic dict.  Jobs reference it via
``provider="tests.engine.fake_provider"`` so pool workers import it on
their own (the tests package is importable from the repo root, which is
pytest's rootdir).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.experiments.common import register_config


@register_config("resilience_echo")
def build_resilience_echo(profile: Any, machine: Any, cfg: Any,
                          **opts: Any) -> Dict[str, Any]:
    return {
        "profile": profile,
        "machine": machine,
        "cfg": cfg,
        "opts": dict(sorted(opts.items())),
    }


@register_config("diff_numeric")
def build_diff_numeric(profile: Any, machine: Any, cfg: Any,
                       scale: float = 1.0, **opts: Any) -> Dict[str, Any]:
    """A JSON-only deterministic cell for differential equivalence tests.

    Returns pure scalars derived from a seeded RNG over the cell's
    identity, so serial, pooled, cached, and fault-retried sweeps over the
    same grid must serialize to byte-identical canonical JSON.
    """
    import random

    rng = random.Random(f"{profile.abbrev}:{cfg.seed}:{scale}")
    return {
        "abbrev": profile.abbrev,
        "seed": cfg.seed,
        "scale": scale,
        "value": round(rng.random(), 12),
        "draws": [round(rng.random(), 12) for _ in range(4)],
        "opts": dict(sorted(opts.items())),
    }
