"""A millisecond-cheap config provider for engine resilience tests.

Resilience tests need many sweep cells (20-cell batches, kill/retry
schedules, serial-vs-pool oracles) and none of them care about simulator
output -- only about which cells ran, failed, or were retried.  This
module registers ``resilience_echo``: a builder that just echoes its
inputs as a deterministic dict.  Jobs reference it via
``provider="tests.engine.fake_provider"`` so pool workers import it on
their own (the tests package is importable from the repo root, which is
pytest's rootdir).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.experiments.common import register_config


@register_config("resilience_echo")
def build_resilience_echo(profile: Any, machine: Any, cfg: Any,
                          **opts: Any) -> Dict[str, Any]:
    return {
        "profile": profile,
        "machine": machine,
        "cfg": cfg,
        "opts": dict(sorted(opts.items())),
    }
