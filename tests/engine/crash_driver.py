"""A sacrificial sweep driver for crash-recovery drills.

Runs N cheap echo cells serially against an on-disk result cache,
printing one flushed ``cell <i> ok`` line as each checkpoint lands and a
final ``RESULT <canonical json>`` line for the whole batch.  The
crash-recovery tests (and the CI chaos smoke) launch it as a subprocess,
SIGKILL it after a seeded number of checkpoint lines, then rerun it to
completion and assert the rerun (a) serves the killed run's cells from
the cache and (b) prints a byte-identical RESULT line to an uninterrupted
run -- the incremental cache checkpoint *is* the crash-recovery log.

Serial on purpose (``jobs=1``): the driver stays single-process, so a
SIGKILL leaves no orphaned pool workers behind, only whatever the cache
directory held at the instant of death -- half-written temp files
included, which the next open reaps.

Invoke as ``python -m tests.engine.crash_driver`` from the repo root
(the echo provider lives in :mod:`tests.engine.fake_provider`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.engine import Job, canonicalize, configure, sweep_outcomes
from repro.experiments.common import RunConfig
from repro.sim.params import skylake
from repro.workloads.suite import get_profile


def make_jobs(count: int, seed: int = 1) -> List[Job]:
    """The drill's job batch: ``count`` echo cells, distinct by ``seq``."""
    cfg = RunConfig(invocations=2, warmup=1, instruction_scale=0.1,
                    seed=seed)
    machine = skylake()
    profile = get_profile("Auth-G")
    return [Job.make(profile, machine, cfg, "resilience_echo",
                     provider="tests.engine.fake_provider", seq=i)
            for i in range(count)]


def result_line(values: Sequence[object]) -> str:
    """The canonical-JSON form crash tests byte-compare."""
    return "RESULT " + json.dumps(canonicalize(list(values)),
                                  sort_keys=True, separators=(",", ":"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tests.engine.crash_driver")
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--count", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    jobs = make_jobs(args.count, seed=args.seed)
    values: List[object] = []
    with configure(cache_dir=args.cache_dir) as ctx:
        for i, job in enumerate(jobs):
            [outcome] = sweep_outcomes([job])
            values.append(outcome.value)
            # One flushed line per checkpoint: the parent counts these to
            # SIGKILL at an exact point in the schedule.
            print(f"cell {i} ok", flush=True)
        print(result_line(values), flush=True)
        print(f"STATS hits={ctx.stats.hits} misses={ctx.stats.misses}",
              flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
