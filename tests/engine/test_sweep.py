"""sweep(): ordering, memoization, executor equivalence, context nesting."""

from __future__ import annotations

import math
import threading

import pytest

from repro.engine import (
    EngineContext,
    Job,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    configure,
    current_context,
    get_executor,
    sweep,
    sweep_configs,
)
from repro.errors import ConfigurationError
from repro.experiments.common import RunConfig
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

CFG = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)
FUNCTIONS = ("Auth-G", "Email-P")


def _grid_jobs():
    machine = skylake()
    return [Job.make(get_profile(a), machine, CFG, c)
            for a in FUNCTIONS for c in ("baseline", "jukebox")]


class TestOrdering:
    def test_results_follow_submission_order(self):
        jobs = _grid_jobs()
        results = sweep(jobs)
        assert len(results) == len(jobs)
        # Jukebox reduces CPI vs. baseline for the same function, so the
        # slotting is observable, not just positional.
        for i in range(0, len(jobs), 2):
            assert results[i].cpi > results[i + 1].cpi

    def test_sweep_configs_shape(self):
        runs = sweep_configs([get_profile(a) for a in FUNCTIONS],
                             skylake(), CFG, ("baseline", "jukebox"))
        assert set(runs) == set(FUNCTIONS)
        for cell in runs.values():
            assert set(cell) == {"baseline", "jukebox"}


class TestMemoization:
    def test_second_sweep_is_all_hits(self, tmp_path):
        jobs = _grid_jobs()
        with configure(cache_dir=tmp_path / "c") as ctx:
            cold = sweep(jobs)
            assert ctx.stats.misses == len(jobs)
            assert ctx.stats.stores == len(jobs)
            warm = sweep(jobs)
            assert ctx.stats.hits == len(jobs)
            assert ctx.stats.misses == len(jobs)  # unchanged
        assert [r.cpi for r in warm] == [r.cpi for r in cold]

    def test_cache_shared_across_contexts(self, tmp_path):
        jobs = _grid_jobs()[:1]
        with configure(cache_dir=tmp_path / "c"):
            sweep(jobs)
        with configure(cache_dir=tmp_path / "c") as ctx:
            sweep(jobs)
            assert ctx.stats.hits == 1
            assert ctx.stats.misses == 0

    def test_no_cache_by_default(self):
        ctx = current_context()
        assert ctx.cache is None

    def test_partial_warm_cache_only_simulates_the_gap(self, tmp_path):
        jobs = _grid_jobs()
        with configure(cache_dir=tmp_path / "c"):
            sweep(jobs[:2])
        with configure(cache_dir=tmp_path / "c") as ctx:
            sweep(jobs)
            assert ctx.stats.hits == 2
            assert ctx.stats.misses == 2


class TestExecutorEquivalence:
    def test_parallel_equals_serial_bitwise(self, tmp_path):
        jobs = _grid_jobs()
        serial = sweep(jobs)
        with configure(jobs=2):
            parallel = sweep(jobs)
        for s, p in zip(serial, parallel):
            assert s.cpi == p.cpi  # exact, not isclose: bit-identical
            assert s.cycles == p.cycles
            assert s.instructions == p.instructions

    def test_get_executor_dispatch(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(4), ProcessExecutor)
        with pytest.raises(ConfigurationError):
            get_executor(0)

    def test_process_executor_single_job_stays_in_process(self):
        # len(jobs) <= 1 short-circuits to serial: no pool spin-up cost.
        result = ProcessExecutor(jobs=8).run(_grid_jobs()[:1])
        assert len(result) == 1
        assert math.isfinite(result[0].cpi)


class TestContextNesting:
    def test_innermost_wins_and_unwinds(self, tmp_path):
        root = current_context()
        with configure(jobs=1) as outer:
            assert current_context() is outer
            with configure(jobs=2, cache_dir=tmp_path / "c") as inner:
                assert current_context() is inner
                assert isinstance(inner.executor, ProcessExecutor)
                assert isinstance(inner.cache, ResultCache)
            assert current_context() is outer
        assert current_context() is root

    def test_explicit_context_overrides_stack(self, tmp_path):
        ctx = EngineContext(cache=ResultCache(tmp_path / "c"))
        jobs = _grid_jobs()[:1]
        ambient_before = current_context().stats.snapshot()
        sweep(jobs, context=ctx)
        sweep(jobs, context=ctx)
        assert ctx.stats.hits == 1
        # The ambient context's accounting is untouched.
        delta = current_context().stats.since(ambient_before)
        assert delta.jobs == 0

    def test_configure_is_isolated_per_thread(self):
        """One thread's configure() exit must never pop a context another
        thread pushed (the stack is a ContextVar, not a module global)."""
        seen = {}

        def worker():
            seen["ambient"] = current_context()
            with configure(jobs=1) as ctx:
                seen["inside_is_own"] = current_context() is ctx
            seen["after"] = current_context()

        with configure(jobs=1) as outer:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert current_context() is outer
        assert seen["inside_is_own"]
        # The worker never saw this thread's context, and unwound to its
        # own ambient root.
        assert seen["ambient"] is not outer
        assert seen["after"] is seen["ambient"]

    def test_stats_describe(self):
        with configure() as ctx:
            assert ctx.stats.describe() == "engine: no simulation cells"
            sweep(_grid_jobs()[:1])
            assert "1 cells" in ctx.stats.describe()
            assert "1 simulated" in ctx.stats.describe()
