"""End-to-end: whole experiments through the engine, parallel and cached.

The acceptance bar for the engine is *bit-identical rendered reports*:
``--jobs 4`` and a warm cache must change wall-clock only, never a single
character of what the paper tables say.
"""

from __future__ import annotations

import pytest

from repro import engine
from repro.experiments import fig05_mpki, fig10_speedup
from repro.experiments.common import RunConfig

CFG = RunConfig(invocations=3, warmup=1, instruction_scale=0.15)
FUNCTIONS = ["Auth-G", "Email-P"]

EXPERIMENTS = [
    pytest.param(fig10_speedup, id="fig10"),
    pytest.param(fig05_mpki, id="fig05"),
]


@pytest.mark.parametrize("module", EXPERIMENTS)
def test_parallel_report_is_bit_identical_to_serial(module):
    serial = module.render(module.run(CFG, functions=FUNCTIONS))
    with engine.configure(jobs=4):
        parallel = module.render(module.run(CFG, functions=FUNCTIONS))
    assert parallel == serial


@pytest.mark.parametrize("module", EXPERIMENTS)
def test_warm_cache_skips_all_simulation(module, tmp_path):
    with engine.configure(cache_dir=tmp_path / "cache") as ctx:
        cold = module.render(module.run(CFG, functions=FUNCTIONS))
        cells = ctx.stats.misses
        assert cells > 0
        before = ctx.stats.snapshot()
        warm = module.render(module.run(CFG, functions=FUNCTIONS))
        delta = ctx.stats.since(before)
    assert warm == cold
    assert delta.misses == 0
    assert delta.hits == cells
    assert delta.hit_rate == 1.0


def test_parallel_and_cache_compose(tmp_path):
    """--jobs 4 populates the cache; a serial rerun reads it back."""
    with engine.configure(jobs=4, cache_dir=tmp_path / "cache"):
        first = fig10_speedup.render(
            fig10_speedup.run(CFG, functions=FUNCTIONS))
    with engine.configure(jobs=1, cache_dir=tmp_path / "cache") as ctx:
        second = fig10_speedup.render(
            fig10_speedup.run(CFG, functions=FUNCTIONS))
        assert ctx.stats.misses == 0
    assert second == first
