"""Job fingerprinting: stable addresses, sensitive to every ingredient."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.engine import Job, canonicalize, code_version, fingerprint
from repro.errors import ConfigurationError
from repro.experiments.common import RunConfig
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

CFG = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)


def _job(**overrides):
    base = dict(profile=get_profile("Auth-G"), machine=skylake(),
                cfg=CFG, config="baseline")
    base.update(overrides)
    return Job.make(**base)


class TestKeyStability:
    def test_same_inputs_same_key(self):
        assert _job().key() == _job().key()

    def test_key_is_hex_digest(self):
        key = _job().key()
        assert len(key) == 64
        int(key, 16)

    def test_stable_across_processes(self):
        """The content address must not depend on interpreter state
        (id(), hash randomization, dict order) -- a fresh process must
        derive the same key, or the on-disk cache is per-process."""
        code = (
            "from repro.engine import Job\n"
            "from repro.experiments.common import RunConfig\n"
            "from repro.sim.params import skylake\n"
            "from repro.workloads.suite import get_profile\n"
            "cfg = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)\n"
            "job = Job.make(get_profile('Auth-G'), skylake(), cfg,"
            " 'baseline')\n"
            "print(job.key())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == _job().key()


class TestKeySensitivity:
    def test_profile_changes_key(self):
        assert _job().key() != _job(profile=get_profile("Email-P")).key()

    def test_machine_changes_key(self):
        from repro.sim.params import broadwell
        assert _job().key() != _job(machine=broadwell()).key()

    def test_cfg_changes_key(self):
        assert _job().key() != _job(cfg=CFG.replace(seed=7)).key()

    def test_config_name_changes_key(self):
        assert _job().key() != _job(config="jukebox").key()

    def test_opts_change_key(self):
        assert _job().key() != _job(with_jukebox=True).key()

    def test_opts_order_is_irrelevant(self):
        a = _job(alpha=1, beta=2)
        b = _job(beta=2, alpha=1)
        assert a.key() == b.key()


class TestCanonicalize:
    def test_dataclass_tagged_with_classname(self):
        canon = canonicalize(CFG)
        assert canon["__dataclass__"] == "RunConfig"
        assert canon["seed"] == CFG.seed

    def test_rejects_unpicklable_values(self):
        with pytest.raises(ConfigurationError):
            canonicalize(lambda: None)

    def test_fingerprint_of_equal_dicts(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


class TestCodeVersion:
    def test_cached_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_key_includes_code_version(self):
        """Documented coupling: editing the simulator must invalidate
        memoized results (key embeds code_version())."""
        job = _job()
        assert code_version()  # non-empty -> participates in the digest
        assert job.key() == job.key()


class TestJobShape:
    def test_function_property(self):
        assert _job().function == "Auth-G"

    def test_describe_mentions_config_and_function(self):
        text = _job().describe()
        assert "Auth-G" in text and "baseline" in text

    def test_opts_roundtrip(self):
        job = _job(params=None, with_jukebox=True)
        assert job.opts_dict() == {"params": None, "with_jukebox": True}
