"""Job fingerprinting: stable addresses, sensitive to every ingredient."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.engine import (
    Job,
    canonicalize,
    code_version,
    fingerprint,
    provider_version,
)
from repro.errors import ConfigurationError
from repro.experiments.common import RunConfig
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

CFG = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)


def _job(**overrides):
    base = dict(profile=get_profile("Auth-G"), machine=skylake(),
                cfg=CFG, config="baseline")
    base.update(overrides)
    return Job.make(**base)


class TestKeyStability:
    def test_same_inputs_same_key(self):
        assert _job().key() == _job().key()

    def test_key_is_hex_digest(self):
        key = _job().key()
        assert len(key) == 64
        int(key, 16)

    def test_stable_across_processes(self):
        """The content address must not depend on interpreter state
        (id(), hash randomization, dict order) -- a fresh process must
        derive the same key, or the on-disk cache is per-process."""
        code = (
            "from repro.engine import Job\n"
            "from repro.experiments.common import RunConfig\n"
            "from repro.sim.params import skylake\n"
            "from repro.workloads.suite import get_profile\n"
            "cfg = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)\n"
            "job = Job.make(get_profile('Auth-G'), skylake(), cfg,"
            " 'baseline')\n"
            "print(job.key())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == _job().key()


class TestKeySensitivity:
    def test_profile_changes_key(self):
        assert _job().key() != _job(profile=get_profile("Email-P")).key()

    def test_machine_changes_key(self):
        from repro.sim.params import broadwell
        assert _job().key() != _job(machine=broadwell()).key()

    def test_cfg_changes_key(self):
        assert _job().key() != _job(cfg=CFG.replace(seed=7)).key()

    def test_config_name_changes_key(self):
        assert _job().key() != _job(config="jukebox").key()

    def test_opts_change_key(self):
        assert _job().key() != _job(with_jukebox=True).key()

    def test_opts_order_is_irrelevant(self):
        a = _job(alpha=1, beta=2)
        b = _job(beta=2, alpha=1)
        assert a.key() == b.key()

    def test_provider_changes_key(self):
        """Two jobs differing only in provider must not share a cache
        entry: their builders are different code."""
        a = _job()
        b = _job(provider="repro.experiments.fig01_iat")
        assert a.key() != b.key()

    def test_backend_changes_key(self):
        """Backends are bit-identical *by contract*, but the contract is
        enforced, not assumed: a columnar result must never satisfy a
        scalar request from the cache (or vice versa), or a backend bug
        would be unfalsifiable through the engine."""
        columnar = _job(cfg=CFG.replace(backend="columnar"))
        scalar = _job(cfg=CFG.replace(backend="scalar"))
        assert columnar.key() != scalar.key()

    def test_schema_v2_guards_pre_backend_caches(self):
        """Stale-cache regression: RunConfig grew ``backend`` in schema
        v2, so any result memoized under schema v1 (whose canonical cfg
        lacked the field) must be unreachable from current keys."""
        from repro.engine.job import SCHEMA_VERSION, fingerprint

        assert SCHEMA_VERSION == 2
        # A v1-era canonical cfg (no backend field) must not collide with
        # today's encoding of the same logical configuration.
        v2 = canonicalize(CFG)
        v1 = {k: v for k, v in v2.items() if k != "backend"}
        assert fingerprint(v1) != fingerprint(v2)


class TestCanonicalize:
    def test_dataclass_tagged_with_classname(self):
        canon = canonicalize(CFG)
        assert canon["__dataclass__"] == "RunConfig"
        assert canon["seed"] == CFG.seed

    def test_rejects_unpicklable_values(self):
        with pytest.raises(ConfigurationError):
            canonicalize(lambda: None)

    def test_fingerprint_of_equal_dicts(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_list_and_tuple_do_not_alias(self):
        assert fingerprint([1, 2]) != fingerprint((1, 2))
        assert fingerprint({"a": [1]}) != fingerprint({"a": (1,)})

    def test_rejects_non_string_dict_keys(self):
        """{1: x} stringified would collide with {"1": x}."""
        with pytest.raises(ConfigurationError):
            canonicalize({1: "x"})

    def test_set_order_is_irrelevant(self):
        a = fingerprint({"s": {("b", 2), ("a", 1)}})
        b = fingerprint({"s": {("a", 1), ("b", 2)}})
        assert a == b
        assert fingerprint(frozenset({3, 1, 2})) == fingerprint({1, 2, 3})

    def test_set_sorts_by_canonical_encoding_not_repr(self):
        # Heterogeneous elements whose reprs would interleave with their
        # canonical JSON forms still canonicalize deterministically.
        assert (canonicalize({(1,), ("a",)})
                == canonicalize({("a",), (1,)}))


class TestCodeVersion:
    def test_cached_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_key_includes_code_version(self):
        """Documented coupling: editing the simulator must invalidate
        memoized results (key embeds code_version())."""
        job = _job()
        assert code_version()  # non-empty -> participates in the digest
        assert job.key() == job.key()


class TestProviderVersion:
    def test_cached_and_stable(self):
        name = "repro.experiments.common"
        assert provider_version(name) == provider_version(name)
        assert len(provider_version(name)) == 16

    def test_distinct_providers_distinct_digests(self):
        """Builders registered outside the code_version() subtrees (fig01,
        fig06, fig08) carry measurement logic; each provider module must
        contribute its own digest to its jobs' keys."""
        digests = {provider_version(name) for name in (
            "repro.experiments.common",
            "repro.experiments.fig01_iat",
            "repro.experiments.fig06_footprints",
            "repro.experiments.fig08_metadata",
        )}
        assert len(digests) == 4

    def test_provider_edit_invalidates_key(self, tmp_path, monkeypatch):
        """Editing a provider module's source must change its jobs' keys
        even though the module lies outside the code_version() subtrees."""
        import repro.engine.job as jobmod

        src = tmp_path / "fakeprov.py"
        src.write_text("X = 1\n")
        monkeypatch.setattr(jobmod, "_provider_source", lambda mod: src)
        jobmod.provider_version.cache_clear()
        before = _job(provider="fakeprov").key()
        src.write_text("X = 2\n")
        jobmod.provider_version.cache_clear()
        after = _job(provider="fakeprov").key()
        jobmod.provider_version.cache_clear()
        assert before != after

    def test_unlocatable_provider_is_an_error(self):
        with pytest.raises(ConfigurationError):
            provider_version("repro.no_such_module_anywhere")


class TestProviderClosure:
    def test_closure_is_sorted_and_includes_provider(self):
        from repro.engine import provider_closure

        closure = provider_closure("repro.experiments.common")
        assert closure == tuple(sorted(closure))
        assert "repro.experiments.common" in closure

    def test_closure_covers_indirect_helpers(self):
        """The whole point of the closure digest: helper modules a
        builder merely imports participate in its fingerprint."""
        from repro.engine import provider_closure

        closure = provider_closure("repro.experiments.fig01_iat")
        assert "repro.experiments.common" in closure  # direct import
        assert any(m.startswith("repro.workloads") for m in closure)

    def test_closure_edit_changes_provider_version(self, tmp_path,
                                                   monkeypatch):
        """Editing a helper merely *imported* by the provider (never
        named in the job) must change provider_version()."""
        from repro.engine import (invalidate_fingerprint_caches,
                                  provider_closure)

        pkg = tmp_path / "cljob"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "prov.py").write_text(
            "from cljob import util\ndef build(cfg):\n"
            "    return util.shape(cfg)\n")
        (pkg / "util.py").write_text("def shape(cfg):\n    return cfg\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        invalidate_fingerprint_caches()
        try:
            assert provider_closure("cljob.prov") == (
                "cljob", "cljob.prov", "cljob.util")
            before = provider_version("cljob.prov")
            (pkg / "util.py").write_text(
                "def shape(cfg):\n    return cfg * 2\n")
            invalidate_fingerprint_caches()
            assert provider_version("cljob.prov") != before
        finally:
            invalidate_fingerprint_caches()


class TestNonReproProviders:
    """Regression (satellite of the analyzer PR): providers outside the
    ``repro`` package resolve through ``importlib.util.find_spec``
    without being imported."""

    def test_stdlib_package_provider_fingerprints(self):
        digest = provider_version("json")
        assert len(digest) == 16
        assert digest == provider_version("json")

    def test_stdlib_plain_module_provider_fingerprints(self):
        # A single-file module has no enclosing package graph; the
        # closure degrades to the module itself.
        from repro.engine import provider_closure

        assert provider_closure("csv") == ("csv",)
        assert len(provider_version("csv")) == 16

    def test_unlocatable_provider_error_names_the_module(self):
        with pytest.raises(ConfigurationError) as excinfo:
            provider_version("zz_no_such_provider_pkg.mod")
        message = str(excinfo.value)
        assert "zz_no_such_provider_pkg" in message
        assert "fingerprint" in message

    def test_namespace_style_reason_is_explained(self, tmp_path,
                                                 monkeypatch):
        # A directory with no __init__.py is a namespace package: no
        # source origin to digest, so the error must say why.
        (tmp_path / "nspkg_prov").mkdir()
        monkeypatch.syspath_prepend(str(tmp_path))
        from repro.engine.job import _provider_source

        with pytest.raises(ConfigurationError) as excinfo:
            _provider_source("nspkg_prov")
        assert "namespace" in str(excinfo.value)


class TestJobShape:
    def test_function_property(self):
        assert _job().function == "Auth-G"

    def test_describe_mentions_config_and_function(self):
        text = _job().describe()
        assert "Auth-G" in text and "baseline" in text

    def test_opts_roundtrip(self):
        job = _job(params=None, with_jukebox=True)
        assert job.opts_dict() == {"params": None, "with_jukebox": True}
