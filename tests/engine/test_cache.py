"""ResultCache: roundtrips, eviction of unreadable entries, hygiene."""

from __future__ import annotations

import pickle

from repro.engine import ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestRoundtrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        hit, value = cache.get(KEY)
        assert not hit and value is None
        cache.put(KEY, {"cpi": 1.25})
        hit, value = cache.get(KEY)
        assert hit and value == {"cpi": 1.25}

    def test_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, 1)
        assert cache.path_for(KEY) == tmp_path / "c" / "ab" / f"{KEY}.pkl"
        assert cache.path_for(KEY).exists()

    def test_overwrite_is_atomic_last_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, "first")
        cache.put(KEY, "second")
        assert cache.get(KEY) == (True, "second")
        # No temp files left behind.
        assert not list((tmp_path / "c").rglob("*.tmp"))

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.get(KEY)
        cache.put(KEY, 1)
        cache.get(KEY)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5


class TestStaleEntries:
    def test_corrupt_entry_is_evicted_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        hit, value = cache.get(KEY)
        assert not hit and value is None
        assert cache.stats.errors == 1
        assert not path.exists()  # evicted, slot free for a rewrite

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, list(range(1000)))
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:10])
        hit, _ = cache.get(KEY)
        assert not hit

    def test_entry_from_removed_class_is_a_miss(self, tmp_path):
        """A payload pickled against a class that no longer imports must
        degrade to a miss (the simulator re-runs), never crash the sweep."""
        cache = ResultCache(tmp_path / "c")
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        # GLOBAL opcode referencing a module that does not exist.
        path.write_bytes(b"crepro.engine.nowhere\nEphemeral\n.")
        hit, _ = cache.get(KEY)
        assert not hit
        assert cache.stats.errors == 1


class TestHygiene:
    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put(KEY, 1)
        cache.put(OTHER, 2)
        assert len(cache) == 2

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(KEY, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(KEY) == (False, None)
