"""fsck: audit/repair semantics, lock discipline, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache, encode_entry
from repro.engine.__main__ import main as engine_main
from repro.engine.fsck import CacheBusyError, fsck
from repro.errors import ConfigurationError
from repro.obs.tracer import Tracer

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
THIRD = "ef" + "2" * 62


def seeded_cache(root):
    cache = ResultCache(root)
    cache.put(KEY, {"cpi": 1.0})
    cache.put(OTHER, {"cpi": 2.0})
    cache.put(THIRD, {"cpi": 3.0})
    return cache


class TestAudit:
    def test_clean_cache_reports_clean(self, tmp_path):
        seeded_cache(tmp_path / "c")
        report = fsck(tmp_path / "c")
        assert report.clean
        assert report.scanned == 3 and report.ok == 3
        assert not report.problems
        assert "clean" in report.describe()

    def test_missing_root_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a cache"):
            fsck(tmp_path / "nope")

    def test_audit_finds_but_does_not_touch_damage(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-3])  # torn
        report = fsck(tmp_path / "c")
        assert not report.clean
        [problem] = report.problems
        assert problem.action == "found"
        assert "torn" in problem.defect
        assert path.exists()  # audit is read-only

    def test_audit_flags_ill_formed_keys(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        stray = cache.root / "ab" / "not-a-key.pkl"
        stray.write_bytes(encode_entry(1))
        report = fsck(tmp_path / "c")
        [problem] = report.problems
        assert "hex cache" in problem.defect

    def test_audit_flags_misplaced_valid_entries(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        misplaced = cache.root / "zz" / f"{KEY}.pkl"
        misplaced.parent.mkdir()
        misplaced.write_bytes(encode_entry("stray"))
        report = fsck(tmp_path / "c")
        [problem] = report.problems
        assert "misplaced" in problem.defect


class TestRepair:
    def test_repair_quarantines_damage_and_comes_back_clean(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        torn = cache.path_for(OTHER)
        torn.write_bytes(torn.read_bytes()[:-3])
        report = fsck(tmp_path / "c", repair=True)
        assert report.clean and report.quarantined == 2
        assert {p.action for p in report.problems} == {"quarantined"}
        assert fsck(tmp_path / "c").clean
        # Quarantined slots read as misses: cells recompute.
        assert cache.get(KEY) == (False, None)
        assert cache.get(THIRD) == (True, {"cpi": 3.0})

    def test_repair_moves_misplaced_entries_into_their_slot(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        fourth = "0f" + "3" * 62
        misplaced = cache.root / "zz" / f"{fourth}.pkl"
        misplaced.parent.mkdir()
        misplaced.write_bytes(encode_entry("found me"))
        report = fsck(tmp_path / "c", repair=True)
        assert report.clean and report.repaired == 1
        [problem] = report.problems
        assert problem.action == "moved"
        assert not misplaced.exists()
        assert cache.get(fourth) == (True, "found me")

    def test_repair_reaps_every_temp_file(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        # Under the exclusive lock even a live pid's temp is an orphan.
        tmp = cache.root / "ab" / f".{KEY}.pkl.1.tmp"
        tmp.write_bytes(b"half")
        report = fsck(tmp_path / "c")
        assert report.reaped_tmp == 1
        assert not tmp.exists()

    def test_purge_quarantine_requires_repair(self, tmp_path):
        seeded_cache(tmp_path / "c")
        with pytest.raises(ConfigurationError, match="--repair"):
            fsck(tmp_path / "c", purge_quarantine=True)

    def test_purge_quarantine_empties_the_evidence_area(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        first = fsck(tmp_path / "c", repair=True)
        assert first.quarantine_entries == 1
        second = fsck(tmp_path / "c", repair=True, purge_quarantine=True)
        assert second.purged_quarantine == 1
        assert fsck(tmp_path / "c").quarantine_entries == 0

    def test_events_name_each_action(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        misplaced = cache.root / "zz" / f"{THIRD}.pkl"
        misplaced.parent.mkdir()
        cache.path_for(THIRD).rename(misplaced)
        tracer = Tracer()
        fsck(tmp_path / "c", repair=True, tracer=tracer)
        kinds = [e.kind for e in tracer.events]
        assert kinds[0] == "fsck.begin" and kinds[-1] == "fsck.end"
        assert "fsck.evict" in kinds and "fsck.repair" in kinds


class TestLockDiscipline:
    def test_fsck_refuses_a_live_sweeps_root(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        cache.open()
        try:
            with pytest.raises(CacheBusyError, match="live sweep"):
                fsck(tmp_path / "c")
        finally:
            cache.close()
        assert fsck(tmp_path / "c").clean  # lock released: fsck proceeds

    def test_fsck_releases_its_exclusive_lock(self, tmp_path):
        cache = seeded_cache(tmp_path / "c")
        fsck(tmp_path / "c")
        cache.open()  # would deadlock/fail if fsck leaked the lock
        assert cache.lock.held
        cache.close()


class TestCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        seeded_cache(tmp_path / "c")
        assert engine_main(["fsck", str(tmp_path / "c")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_defects_exit_one(self, tmp_path, capsys):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        assert engine_main(["fsck", str(tmp_path / "c")]) == 1
        assert "--repair" in capsys.readouterr().out

    def test_repair_then_clean(self, tmp_path, capsys):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        assert engine_main(["fsck", str(tmp_path / "c"), "--repair"]) == 0
        assert engine_main(["fsck", str(tmp_path / "c")]) == 0

    def test_missing_directory_exit_two(self, tmp_path, capsys):
        assert engine_main(["fsck", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_busy_exit_three(self, tmp_path, capsys):
        cache = seeded_cache(tmp_path / "c")
        cache.open()
        try:
            assert engine_main(["fsck", str(tmp_path / "c")]) == 3
        finally:
            cache.close()
        assert "live sweep" in capsys.readouterr().err

    def test_json_report_is_machine_readable(self, tmp_path, capsys):
        cache = seeded_cache(tmp_path / "c")
        cache.path_for(KEY).write_bytes(b"junk")
        engine_main(["fsck", str(tmp_path / "c"), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert doc["scanned"] == 3
        [problem] = doc["problems"]
        assert problem["key"] == KEY and problem["action"] == "found"
