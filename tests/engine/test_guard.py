"""Deadline guard: spec validation, clocked expiry, hung-worker reaping."""

from __future__ import annotations

import time
import warnings

import pytest

from repro.engine import (
    FailurePolicy,
    GuardSpec,
    GuardState,
    Job,
    JobTimeoutError,
    SweepDeadlineError,
    configure,
    sweep_outcomes,
)
from repro.engine.resilience import PERMANENT, TRANSIENT, Task, classify_error
from repro.errors import ConfigurationError
from repro.experiments.common import RunConfig
from repro.obs.clock import FrozenClock, TickClock
from repro.obs.tracer import Tracer
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

CFG = RunConfig(invocations=2, warmup=1, instruction_scale=0.1)


def echo_jobs(count, **opts):
    profile = get_profile("Auth-G")
    machine = skylake()
    return [Job.make(profile, machine, CFG, "resilience_echo",
                     provider="tests.engine.fake_provider", seq=i, **opts)
            for i in range(count)]


class TestGuardSpec:
    def test_empty_spec_is_falsy(self):
        assert not GuardSpec()
        assert GuardSpec(job_timeout_s=1.0)
        assert GuardSpec(sweep_deadline_s=2.0)

    @pytest.mark.parametrize("kwargs", [
        {"job_timeout_s": 0}, {"job_timeout_s": -1.0},
        {"sweep_deadline_s": 0}, {"sweep_deadline_s": -0.5},
    ])
    def test_rejects_non_positive_budgets(self, kwargs):
        with pytest.raises(ConfigurationError, match="> 0"):
            GuardSpec(**kwargs)

    def test_configure_requires_clock_with_deadlines(self):
        with pytest.raises(ConfigurationError, match="clock"):
            with configure(job_timeout_s=1.0):
                pass

    def test_configure_without_deadlines_carries_no_guard(self):
        with configure() as ctx:
            assert ctx.guard is None

    def test_configure_with_deadlines_carries_spec(self):
        with configure(clock=TickClock(), sweep_deadline_s=9.0) as ctx:
            assert ctx.guard == GuardSpec(sweep_deadline_s=9.0)


class TestGuardState:
    def test_requires_a_clock(self):
        with pytest.raises(ConfigurationError, match="clock"):
            GuardState(GuardSpec(job_timeout_s=1.0), clock=None)

    def test_sweep_expiry_is_clock_driven(self):
        clock = TickClock(step=10.0)
        guard = GuardState(GuardSpec(sweep_deadline_s=25.0), clock)
        assert guard.started == 0.0
        assert not guard.sweep_expired()   # now=10
        assert not guard.sweep_expired()   # now=20
        assert guard.sweep_expired()       # now=30 > 25

    def test_no_sweep_budget_never_expires(self):
        guard = GuardState(GuardSpec(job_timeout_s=1.0), TickClock(step=1e9))
        assert not guard.sweep_expired()

    def test_job_expiry_roster_uses_one_clock_read(self):
        clock = TickClock(step=5.0)
        guard = GuardState(GuardSpec(job_timeout_s=12.0), clock)
        started_at = {0: 0.0, 1: 0.0, 2: 10.0}
        # Construction read t=0; this roster check reads exactly once
        # (t=5): nothing has exceeded 12s yet.
        assert guard.expired_jobs(started_at, [0, 1, 2]) == []
        clock()  # 10
        clock()  # 15
        assert guard.expired_jobs(started_at, [0, 1, 2]) == [0, 1]  # t=20

    def test_no_job_budget_flags_nothing(self):
        guard = GuardState(GuardSpec(sweep_deadline_s=5.0), FrozenClock())
        assert guard.expired_jobs({0: 0.0}, [0]) == []

    def test_outcomes_carry_taxonomy_and_counters(self):
        guard = GuardState(
            GuardSpec(job_timeout_s=1.0, sweep_deadline_s=2.0), FrozenClock())
        task = Task(job=echo_jobs(1)[0], index=0, attempt=1)
        hung = guard.timeout_outcome(task, elapsed_s=3.5)
        assert not hung.ok and hung.attempts == 2
        assert isinstance(hung.last_error.exception, JobTimeoutError)
        assert hung.last_error.error_class == TRANSIENT
        expired = guard.sweep_deadline_outcome(task)
        assert isinstance(expired.last_error.exception, SweepDeadlineError)
        assert expired.last_error.error_class == PERMANENT
        assert guard.job_deadline_hits == 1
        assert guard.sweep_deadline_hit

    def test_deadline_events_are_emitted(self):
        tracer = Tracer()
        guard = GuardState(GuardSpec(job_timeout_s=1.0,
                                     sweep_deadline_s=1.0),
                           FrozenClock(), tracer=tracer)
        task = Task(job=echo_jobs(1)[0], index=0)
        guard.timeout_outcome(task, elapsed_s=2.0)
        guard.sweep_deadline_outcome(task)
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["job.deadline", "job.deadline"]
        scopes = [e.fields_dict()["scope"] for e in tracer.events]
        assert scopes == ["job", "sweep"]

    def test_error_taxonomy_registration(self):
        assert classify_error(JobTimeoutError("x")) == TRANSIENT
        assert classify_error(SweepDeadlineError("x")) == PERMANENT


class TestSerialSweepDeadline:
    def test_expired_sweep_fails_remaining_cells_permanently(self):
        # Huge step: the budget is gone before the second cell starts
        # (the first cell always runs -- the check precedes dispatch).
        with configure(clock=TickClock(step=100.0), sweep_deadline_s=150.0,
                       policy=FailurePolicy.keep_going()):
            outcomes = sweep_outcomes(echo_jobs(4))
        failed = [o for o in outcomes if not o.ok]
        assert failed, "deadline never fired"
        for outcome in failed:
            assert isinstance(outcome.last_error.exception,
                              SweepDeadlineError)

    def test_generous_deadline_never_fires(self):
        with configure(clock=TickClock(step=0.001), sweep_deadline_s=1e6):
            outcomes = sweep_outcomes(echo_jobs(4))
        assert all(o.ok for o in outcomes)

    def test_expired_sweep_skips_retry_rounds(self):
        # The injected failure is transient and retryable, but the sweep
        # budget is exhausted by the time the round drains -- no retry
        # round may be scheduled against a dead deadline.
        with configure(clock=TickClock(step=100.0), sweep_deadline_s=150.0,
                       policy=FailurePolicy.retrying(retries=3),
                       faults="fail:#0:always") as ctx:
            outcomes = sweep_outcomes(echo_jobs(2))
        assert not outcomes[0].ok
        assert ctx.stats.retries == 0

    def test_deadline_jobs_do_not_poison_the_cache(self, tmp_path):
        with configure(clock=TickClock(step=100.0), sweep_deadline_s=150.0,
                       cache_dir=tmp_path / "c",
                       policy=FailurePolicy.keep_going()):
            first = sweep_outcomes(echo_jobs(4))
        survivors = sum(1 for o in first if o.ok)
        # A fresh, unguarded context must recompute only what never ran.
        with configure(cache_dir=tmp_path / "c") as ctx:
            second = sweep_outcomes(echo_jobs(4))
        assert all(o.ok for o in second)
        assert ctx.stats.hits == survivors


class TestPoolHungWorkerReaping:
    @pytest.mark.parametrize("policy,expect_ok", [
        (FailurePolicy.keep_going(), False),
        (FailurePolicy.retrying(retries=1), True),
    ])
    def test_unbounded_hang_is_killed_and_classified(self, policy,
                                                     expect_ok, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with configure(jobs=2, clock=time.monotonic, job_timeout_s=1.0,
                           policy=policy, faults="hang:#1") as ctx:
                outcomes = sweep_outcomes(echo_jobs(4))
        innocent = [o for i, o in enumerate(outcomes) if i != 1]
        assert all(o.ok for o in innocent)
        assert outcomes[1].ok == expect_ok
        if not expect_ok:
            assert isinstance(outcomes[1].last_error.exception,
                              JobTimeoutError)
        else:
            # First dispatch hung and was killed; the retry succeeded.
            assert outcomes[1].attempts >= 2
            assert ctx.stats.retries == 1
        assert ctx.executor.pool_restarts >= 1

    def test_deadline_kills_do_not_degrade_to_serial(self):
        # Three always-on hangs, max_pool_failures=2: if deadline kills
        # counted as pool failures the executor would degrade to serial
        # execution -- where an unbounded hang can never be interrupted.
        # They must not count, however many pools the guard reaps.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with configure(jobs=2, clock=time.monotonic, job_timeout_s=0.5,
                           policy=FailurePolicy.keep_going(),
                           faults=["hang:#0:always", "hang:#2:always",
                                   "hang:#4:always"]) as ctx:
                outcomes = sweep_outcomes(echo_jobs(6))
        for i, outcome in enumerate(outcomes):
            if i in (0, 2, 4):
                assert isinstance(outcome.last_error.exception,
                                  JobTimeoutError)
            else:
                assert outcome.ok
        assert ctx.executor.pool_restarts >= 1

    def test_worker_kill_events_reach_the_trace(self):
        tracer = Tracer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with configure(jobs=2, clock=time.monotonic, job_timeout_s=0.5,
                           policy=FailurePolicy.keep_going(),
                           faults="hang:#0", tracer=tracer):
                sweep_outcomes(echo_jobs(3))
        kinds = [e.kind for e in tracer.events]
        assert "worker.kill" in kinds
        assert "job.deadline" in kinds

    def test_bounded_hang_within_budget_is_harmless(self):
        with configure(jobs=2, clock=time.monotonic, job_timeout_s=30.0,
                       faults="hang:#0:0.05"):
            outcomes = sweep_outcomes(echo_jobs(3))
        assert all(o.ok for o in outcomes)

    def test_serial_ignores_unbounded_hangs(self):
        # The serial oracle of a pool chaos plan must terminate: an
        # unbounded hang only wedges daemonic pool workers.
        with configure(faults="hang:#1"):
            outcomes = sweep_outcomes(echo_jobs(3))
        assert all(o.ok for o in outcomes)
