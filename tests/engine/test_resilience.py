"""Failure-aware sweeps: outcomes, retries, crash recovery, checkpoints.

Cells run through the millisecond-cheap ``resilience_echo`` provider
(:mod:`tests.engine.fake_provider`) so these tests exercise the failure
machinery, not the simulator.
"""

from __future__ import annotations

import warnings

import pytest

import tests.engine.fake_provider  # noqa: F401  (registers resilience_echo)
from repro.engine import (
    EngineContext,
    FailurePolicy,
    Job,
    JobError,
    JobOutcome,
    PERMANENT,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SweepStats,
    TRANSIENT,
    Task,
    backoff_delay,
    classify_error,
    configure,
    execute_job,
    execute_task,
    get_executor,
    register_error_class,
    sweep,
    sweep_outcomes,
)
from repro.errors import (
    ConfigurationError,
    ContractViolationError,
    SweepFailure,
    WorkerCrashError,
)
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedPermanentError,
    InjectedTransientError,
)
from repro.lint.contracts import check_sweep_stats

PROVIDER = "tests.engine.fake_provider"


def echo_jobs(n, cfg="cfg"):
    return [Job.make(f"profile-{i}", None, cfg, "resilience_echo",
                     provider=PROVIDER, cell=i) for i in range(n)]


class TestKeepGoing:
    def test_one_fault_in_twenty_cells(self, tmp_path):
        """The acceptance sweep: 19 successes plus one typed failure."""
        with configure(cache_dir=tmp_path / "c",
                       policy=FailurePolicy.keep_going(),
                       faults="fail:#7:always") as ctx:
            outcomes = sweep(echo_jobs(20))
        assert len(outcomes) == 20
        assert all(isinstance(o, JobOutcome) for o in outcomes)
        oks = [o for o in outcomes if o.ok]
        failures = [o for o in outcomes if o.failed]
        assert len(oks) == 19 and len(failures) == 1
        assert failures[0].index == 7
        error = failures[0].last_error
        assert error.type_name == "InjectedTransientError"
        assert "Traceback (most recent call last)" in error.traceback
        assert "InjectedTransientError" in error.traceback
        assert ctx.stats.failures == 1
        assert ctx.stats.stores == 19

    def test_rerun_simulates_only_the_failed_cell(self, tmp_path):
        with configure(cache_dir=tmp_path / "c",
                       policy=FailurePolicy.keep_going(),
                       faults="fail:#7:always"):
            sweep(echo_jobs(20))
        # Same sweep, fault gone: 19 hits, one fresh simulation.
        with configure(cache_dir=tmp_path / "c",
                       policy=FailurePolicy.keep_going()) as ctx:
            outcomes = sweep(echo_jobs(20))
        assert all(o.ok for o in outcomes)
        assert ctx.stats.hits == 19
        assert ctx.stats.misses == 1
        assert sum(o.from_cache for o in outcomes) == 19

    def test_failed_outcome_unwrap_reraises(self):
        with configure(policy=FailurePolicy.keep_going(),
                       faults="fail:#0:always"):
            outcomes = sweep(echo_jobs(2))
        with pytest.raises(InjectedTransientError):
            outcomes[0].unwrap()
        assert outcomes[1].unwrap()["opts"] == {"cell": 1}

    def test_sweep_configs_rejects_ambient_keep_going(self):
        from repro.engine import sweep_configs

        with configure(policy=FailurePolicy.keep_going()):
            with pytest.raises(ConfigurationError, match="keep_going"):
                sweep_configs([], None, "cfg", [])


class TestRaiseMode:
    def test_reraises_original_type_with_remote_traceback(self):
        with configure(faults="fail:#1:always:permanent"):
            with pytest.raises(InjectedPermanentError) as exc_info:
                sweep(echo_jobs(3))
        notes = getattr(exc_info.value, "__notes__", [])
        assert any("remote traceback" in note for note in notes)
        assert any("sweep cell #1" in note for note in notes)

    def test_siblings_are_checkpointed_before_the_raise(self, tmp_path):
        with configure(cache_dir=tmp_path / "c", faults="fail:#2:always"):
            with pytest.raises(InjectedTransientError):
                sweep(echo_jobs(4))
        with configure(cache_dir=tmp_path / "c") as ctx:
            assert len(sweep(echo_jobs(4))) == 4
        assert ctx.stats.hits == 3
        assert ctx.stats.misses == 1

    def test_unpicklable_exception_degrades_to_sweep_failure(self):
        class LocalError(Exception):
            """Class is test-local, so instances never unpickle."""

        error = JobError.capture(LocalError("boom"), attempt=0)
        assert error.exception is None
        outcome = JobOutcome(job=echo_jobs(1)[0], index=0, ok=False,
                             attempts=1, errors=(error,))
        with pytest.raises(SweepFailure, match="boom"):
            outcome.unwrap()


class TestRetry:
    def test_transient_failure_is_retried_to_success(self):
        slept = []
        with configure(policy=FailurePolicy.retrying(retries=2),
                       faults="fail:#3:x1", sleep=slept.append) as ctx:
            results = sweep(echo_jobs(5))
        assert len(results) == 5
        assert results[3]["opts"] == {"cell": 3}
        assert ctx.stats.retries == 1
        assert slept == [backoff_delay(FailurePolicy.retrying(retries=2), 3, 0)]

    def test_retry_history_lands_on_the_final_outcome(self):
        policy = FailurePolicy.keep_going(retries=2)
        with configure(policy=policy, faults="fail:#0:x2"):
            outcomes = sweep(echo_jobs(1))
        assert outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert len(outcomes[0].errors) == 2
        assert [e.attempt for e in outcomes[0].errors] == [0, 1]
        assert outcomes[0].errors[0].backoff_s > 0

    def test_permanent_failure_is_never_retried(self):
        slept = []
        with configure(policy=FailurePolicy.keep_going(retries=3),
                       faults="fail:#0:always:permanent",
                       sleep=slept.append) as ctx:
            outcomes = sweep(echo_jobs(1))
        assert outcomes[0].failed
        assert outcomes[0].attempts == 1
        assert ctx.stats.retries == 0
        assert slept == []

    def test_retries_exhausted_keeps_every_error_record(self):
        with configure(policy=FailurePolicy.keep_going(retries=2),
                       faults="fail:#0:always"):
            outcomes = sweep(echo_jobs(1))
        assert outcomes[0].failed
        assert outcomes[0].attempts == 3
        assert len(outcomes[0].errors) == 3
        # The final attempt scheduled no backoff.
        assert outcomes[0].errors[-1].backoff_s == 0

    def test_backoff_is_deterministic_and_capped(self):
        policy = FailurePolicy.retrying(retries=8, seed=42,
                                        backoff_base=0.5, backoff_cap=2.0)
        first = [backoff_delay(policy, index=3, attempt=a) for a in range(8)]
        again = [backoff_delay(policy, index=3, attempt=a) for a in range(8)]
        assert first == again
        assert all(0 < d <= 2.0 for d in first)
        assert backoff_delay(policy, 3, 0) != backoff_delay(policy, 4, 0)
        other_seed = FailurePolicy.retrying(retries=8, seed=43,
                                            backoff_base=0.5, backoff_cap=2.0)
        assert backoff_delay(other_seed, 3, 0) != first[0]


class TestFailurePolicyValidation:
    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            FailurePolicy(mode="explode")

    def test_negative_retries(self):
        with pytest.raises(ConfigurationError, match="retries"):
            FailurePolicy(retries=-1)

    def test_retry_mode_needs_retries(self):
        with pytest.raises(ConfigurationError, match="retries >= 1"):
            FailurePolicy(mode="retry", retries=0)

    def test_negative_backoff(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            FailurePolicy(backoff_base=-0.1)

    def test_unknown_retry_class(self):
        with pytest.raises(ConfigurationError, match="retry class"):
            FailurePolicy(retry_classes=("flaky",))


class TestErrorTaxonomy:
    def test_default_classifications(self):
        assert classify_error(ConnectionError("x")) == TRANSIENT
        assert classify_error(TimeoutError("x")) == TRANSIENT
        assert classify_error(WorkerCrashError("x")) == TRANSIENT
        assert classify_error(ConfigurationError("x")) == PERMANENT
        assert classify_error(ValueError("x")) == PERMANENT

    def test_injected_faults_are_classified(self):
        assert classify_error(InjectedTransientError("x")) == TRANSIENT
        assert classify_error(InjectedPermanentError("x")) == PERMANENT

    def test_registry_is_extensible_newest_first(self):
        class FlakyBackendError(ValueError):
            pass

        assert classify_error(FlakyBackendError("x")) == PERMANENT
        register_error_class(FlakyBackendError, TRANSIENT)
        assert classify_error(FlakyBackendError("x")) == TRANSIENT
        assert classify_error(ValueError("x")) == PERMANENT

    def test_register_rejects_non_exceptions(self):
        with pytest.raises(ConfigurationError, match="exception types"):
            register_error_class(int, TRANSIENT)

    def test_register_rejects_unknown_class(self):
        with pytest.raises(ConfigurationError, match="error class"):
            register_error_class(RuntimeError, "flaky")


class TestPoolResilience:
    def test_kill_fault_matches_serial_run_bit_for_bit(self):
        jobs = echo_jobs(8)
        serial = sweep(jobs)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with configure(jobs=4, faults="kill:#2") as ctx:
                pooled = sweep(jobs)
        assert pooled == serial
        assert ctx.executor.pool_restarts >= 1

    def test_persistent_kills_degrade_to_serial(self):
        jobs = echo_jobs(6)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with configure(jobs=4, faults="kill:*:always") as ctx:
                pooled = sweep(jobs)
        assert pooled == sweep(jobs)
        assert ctx.executor.pool_restarts == ctx.executor.max_pool_failures
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert any("degrading to serial" in m for m in messages)

    def test_maxtasksperchild_retirement_is_not_a_crash(self):
        executor = ProcessExecutor(jobs=2, maxtasksperchild=1)
        tasks = [Task(job=job, index=i)
                 for i, job in enumerate(echo_jobs(6))]
        outcomes = executor.run_tasks(tasks)
        assert all(o.ok for o in outcomes)
        assert executor.pool_restarts == 0

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            ProcessExecutor(jobs=0)
        with pytest.raises(ConfigurationError, match="maxtasksperchild"):
            ProcessExecutor(jobs=2, maxtasksperchild=0)
        with pytest.raises(ConfigurationError, match="max_pool_failures"):
            ProcessExecutor(jobs=2, max_pool_failures=0)
        assert get_executor(2, maxtasksperchild=7).maxtasksperchild == 7


class AbortingExecutor:
    """Serial executor that raises KeyboardInterrupt after N completions."""

    jobs = 1

    def __init__(self, abort_after):
        self.abort_after = abort_after

    def run_tasks(self, tasks, on_outcome=None):
        outcomes = []
        for completed, task in enumerate(tasks):
            if completed >= self.abort_after:
                raise KeyboardInterrupt
            outcome = execute_task(task)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(task, outcome)
        return outcomes


class ExplodingExecutor:
    """Serial executor whose batch dies with an infrastructure error."""

    jobs = 1

    def run_tasks(self, tasks, on_outcome=None):
        raise RuntimeError("executor infrastructure failure")


class TestAbortConsistency:
    def test_keyboard_interrupt_leaves_no_corrupt_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        ctx = EngineContext(executor=AbortingExecutor(abort_after=3),
                            cache=cache)
        jobs = echo_jobs(6)
        with pytest.raises(KeyboardInterrupt):
            sweep_outcomes(jobs, context=ctx)
        # Completed cells are durably checkpointed, nothing half-written.
        assert len(cache) == 3
        assert list((tmp_path / "c").rglob("*.tmp")) == []
        check_sweep_stats(ctx.stats)
        assert ctx.stats.misses == 3
        assert ctx.stats.stores == 3
        # A rerun serves the checkpointed cells from cache.
        with configure(cache_dir=tmp_path / "c") as fresh:
            assert len(sweep(jobs)) == 6
        assert fresh.stats.hits == 3
        assert fresh.stats.misses == 3

    def test_stats_stay_consistent_when_the_executor_raises(self):
        ctx = EngineContext(executor=ExplodingExecutor())
        with pytest.raises(RuntimeError, match="infrastructure"):
            sweep_outcomes(echo_jobs(4), context=ctx)
        check_sweep_stats(ctx.stats)
        assert ctx.stats.jobs == 4
        assert ctx.stats.misses == 0
        assert ctx.stats.failures == 0

    def test_sweep_stats_contract_catches_impossible_counts(self):
        bad = SweepStats(jobs=1, hits=1, misses=1)
        with pytest.raises(ContractViolationError, match="exceed"):
            check_sweep_stats(bad)
        with pytest.raises(ContractViolationError, match="negative"):
            check_sweep_stats(SweepStats(jobs=-1))
        with pytest.raises(ContractViolationError, match="stored"):
            check_sweep_stats(SweepStats(jobs=2, misses=1, stores=2))
        with pytest.raises(ContractViolationError, match="failures"):
            check_sweep_stats(SweepStats(jobs=2, misses=1, failures=2))


class TestCorruptionFault:
    def test_corrupt_fault_exercises_cache_eviction(self, tmp_path):
        jobs = echo_jobs(3)
        with configure(cache_dir=tmp_path / "c"):
            first = sweep(jobs)
        cache = ResultCache(tmp_path / "c")
        ctx_faulty = EngineContext(executor=SerialExecutor(), cache=cache,
                                   faults=FaultPlan.coerce("corrupt:#1"))
        outcomes = sweep_outcomes(jobs, context=ctx_faulty)
        assert [o.value for o in outcomes] == first
        # The corrupted entry was evicted, re-simulated and re-stored.
        assert cache.stats.errors == 1
        assert ctx_faulty.stats.hits == 2
        assert ctx_faulty.stats.misses == 1
        assert ctx_faulty.stats.stores == 1

    def test_cache_corrupt_helper_reports_absence(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.corrupt("0" * 64) is False
        cache.put("ab" * 32, {"x": 1})
        assert cache.corrupt("ab" * 32) is True
        hit, _ = cache.get("ab" * 32)
        assert hit is False


class TestProviderImportErrors:
    def test_unimportable_provider_names_job_and_module(self):
        job = Job.make("p", None, "cfg", "resilience_echo",
                       provider="tests.engine.no_such_provider")
        with pytest.raises(ConfigurationError) as exc_info:
            execute_job(job)
        message = str(exc_info.value)
        assert "tests.engine.no_such_provider" in message
        assert "p/resilience_echo" in message

    def test_import_failure_is_a_permanent_typed_outcome(self):
        job = Job.make("p", None, "cfg", "resilience_echo",
                       provider="tests.engine.no_such_provider")
        outcome = execute_task(Task(job=job, index=0))
        assert outcome.failed
        assert outcome.last_error.type_name == "ConfigurationError"
        assert not outcome.last_error.transient
