"""Tests for the Jukebox record phase."""

from repro.core.metadata import MetadataBuffer
from repro.core.recorder import JukeboxRecorder, record_miss_stream
from repro.core.regions import RegionGeometry
from repro.sim.memory import MainMemory
from repro.sim.params import JukeboxParams, MemoryParams
from repro.sim.stats import MemoryTraffic
from repro.units import KB, LINE_SIZE


def make_recorder(metadata_bytes=4 * KB, crrb_entries=4, memory=None):
    params = JukeboxParams(crrb_entries=crrb_entries,
                           metadata_bytes=metadata_bytes)
    buf = MetadataBuffer(geometry=RegionGeometry(params.region_size),
                         limit_bytes=metadata_bytes)
    return JukeboxRecorder(params, buf, memory=memory)


class TestRecordLogic:
    def test_misses_coalesce_in_crrb_before_writing(self):
        rec = make_recorder()
        for line in range(4):
            rec.on_l2_inst_miss(1024 + line * LINE_SIZE, 0.0)
        assert rec.entries_written == 0  # still in the CRRB
        rec.finish()
        assert rec.entries_written == 1

    def test_crrb_overflow_writes_to_buffer(self):
        rec = make_recorder(crrb_entries=2)
        for region in range(5):
            rec.on_l2_inst_miss(region * 1024, 0.0)
        assert rec.entries_written == 3  # 5 regions through a 2-entry CRRB
        rec.finish()
        assert rec.entries_written == 5

    def test_on_fetch_is_ignored(self):
        rec = make_recorder()
        rec.on_fetch(1024, 0.0)
        rec.finish()
        assert len(rec.buffer) == 0

    def test_finish_deactivates(self):
        rec = make_recorder()
        rec.finish()
        assert not rec.active
        rec.on_l2_inst_miss(1024, 0.0)  # ignored after finish
        assert rec.l2_misses_seen == 0

    def test_records_in_temporal_order(self):
        rec = make_recorder(crrb_entries=1)
        for region in (7, 3, 9):
            rec.on_l2_inst_miss(region * 1024, 0.0)
        buf = rec.finish()
        assert [r for r, _v in buf] == [7, 3, 9]

    def test_metadata_write_traffic_charged(self):
        memory = MainMemory(MemoryParams(), MemoryTraffic())
        rec = make_recorder(crrb_entries=1, memory=memory)
        rec.on_l2_inst_miss(0, 0.0)
        rec.on_l2_inst_miss(1024, 0.0)  # evicts entry -> one write
        assert memory.traffic.metadata_record == 7  # ceil(54/8)
        rec.finish()
        assert memory.traffic.metadata_record == 14

    def test_truncation_counts_drops(self):
        rec = make_recorder(metadata_bytes=7, crrb_entries=1)  # one entry
        for region in range(4):
            rec.on_l2_inst_miss(region * 1024, 0.0)
        buf = rec.finish()
        assert len(buf) == 1
        assert buf.dropped_entries == 3


class TestRecordMissStream:
    def test_stream_helper_unbounded_by_default(self):
        stream = [region * 1024 for region in range(100)]
        buf = record_miss_stream(stream, JukeboxParams())
        assert len(buf) == 100
        assert buf.dropped_entries == 0

    def test_stream_helper_respects_limit(self):
        stream = [region * 1024 for region in range(100)]
        buf = record_miss_stream(stream, JukeboxParams(), limit_bytes=70)
        assert len(buf) == 10
        assert buf.dropped_entries == 90

    def test_spatial_locality_shrinks_metadata(self):
        """Dense streams coalesce into fewer entries than scattered ones."""
        dense = [i * LINE_SIZE for i in range(256)]           # 16 regions
        sparse = [i * 2048 for i in range(256)]               # 256 regions
        params = JukeboxParams()
        assert len(record_miss_stream(dense, params)) \
            < len(record_miss_stream(sparse, params))

    def test_region_size_tradeoff(self):
        """Bigger regions coalesce more but cost more bits per entry --
        the Fig. 8 trade-off in miniature."""
        stream = [i * LINE_SIZE for i in range(512)]
        small = record_miss_stream(stream, JukeboxParams(region_size=128))
        large = record_miss_stream(stream, JukeboxParams(region_size=8 * KB))
        assert len(small) > len(large)
        # but per-entry cost is larger for the big regions:
        assert large.entry_bits > small.entry_bits
