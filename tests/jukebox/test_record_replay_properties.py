"""Property-based tests on the record -> metadata -> replay pipeline."""

from hypothesis import given, settings, strategies as st

from repro.core.metadata import MetadataBuffer
from repro.core.recorder import record_miss_stream, record_miss_stream_merging
from repro.core.regions import RegionGeometry
from repro.core.replayer import JukeboxReplayer
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import JukeboxParams, skylake
from repro.units import KB, LINE_SHIFT, LINE_SIZE

#: Addresses drawn from a small code area so regions repeat.
addresses = st.lists(
    st.integers(min_value=0, max_value=64 * KB - 1).map(
        lambda a: 0x5555_0000_0000 + (a // LINE_SIZE) * LINE_SIZE),
    min_size=1, max_size=300)

params_strategy = st.builds(
    JukeboxParams,
    crrb_entries=st.sampled_from([1, 4, 16]),
    region_size=st.sampled_from([256, 1 * KB, 4 * KB]),
    metadata_bytes=st.just(64 * KB),
)


class TestRecordProperties:
    @settings(max_examples=40, deadline=None)
    @given(addresses, params_strategy)
    def test_unbounded_recording_is_lossless(self, addrs, params):
        """Every missed block appears in the recorded metadata."""
        buffer = record_miss_stream(addrs, params)
        blocks = buffer.encoded_blocks()
        expected = {(a >> LINE_SHIFT) << LINE_SHIFT for a in addrs}
        assert blocks == expected

    @settings(max_examples=40, deadline=None)
    @given(addresses, params_strategy)
    def test_merging_variant_agrees_on_coverage(self, addrs, params):
        fifo = record_miss_stream(addrs, params)
        merged = record_miss_stream_merging(addrs, params)
        assert fifo.encoded_blocks() == merged.encoded_blocks()

    @settings(max_examples=40, deadline=None)
    @given(addresses, params_strategy)
    def test_merging_never_larger(self, addrs, params):
        fifo = record_miss_stream(addrs, params)
        merged = record_miss_stream_merging(addrs, params)
        assert merged.size_bytes <= fifo.size_bytes

    @settings(max_examples=30, deadline=None)
    @given(addresses)
    def test_bigger_crrb_never_inflates_metadata(self, addrs):
        sizes = []
        for crrb in (1, 8, 32):
            params = JukeboxParams(crrb_entries=crrb)
            sizes.append(len(record_miss_stream(addrs, params)))
        assert sizes[0] >= sizes[1] >= sizes[2]

    @settings(max_examples=30, deadline=None)
    @given(addresses, st.integers(min_value=1, max_value=40))
    def test_bounded_recording_is_a_prefix(self, addrs, limit_entries):
        params = JukeboxParams()
        geometry = RegionGeometry(params.region_size)
        limit_bytes = -(-limit_entries * geometry.entry_bits // 8)
        full = list(record_miss_stream(addrs, params))
        bounded_buf = record_miss_stream(addrs, params,
                                         limit_bytes=limit_bytes)
        bounded = list(bounded_buf)
        assert bounded == full[: len(bounded)]
        assert len(bounded) <= bounded_buf.capacity_entries


class TestReplayProperties:
    @settings(max_examples=25, deadline=None)
    @given(addresses, params_strategy)
    def test_replay_prefetches_exactly_the_recorded_blocks(self, addrs,
                                                           params):
        buffer = record_miss_stream(addrs, params)
        hier = MemoryHierarchy(skylake())
        replayer = JukeboxReplayer(hier)
        stats = replayer.replay(buffer)
        scheduled = {b << LINE_SHIFT for b in hier.l2_fills.inflight}
        assert scheduled == buffer.encoded_blocks()
        assert stats.lines_prefetched == len(scheduled)

    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_replayed_blocks_land_in_l2_after_drain(self, addrs):
        params = JukeboxParams()
        buffer = record_miss_stream(addrs, params)
        hier = MemoryHierarchy(skylake())
        JukeboxReplayer(hier).replay(buffer)
        hier.finish_invocation()
        for block_addr in buffer.encoded_blocks():
            assert hier.l2.contains(block_addr >> LINE_SHIFT)

    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_completions_monotone_in_schedule_order(self, addrs):
        buffer = record_miss_stream(addrs, JukeboxParams())
        hier = MemoryHierarchy(skylake())
        JukeboxReplayer(hier).replay(buffer)
        completions = [c for c, _b in hier.l2_fills._schedule]
        assert completions == sorted(completions)
