"""Tests for Jukebox metadata snapshotting (Sec. 3.4.2)."""

import pytest

from repro.core.jukebox import Jukebox
from repro.core.snapshot import (
    MetadataSnapshot,
    restore_jukebox,
    snapshot_jukebox,
)
from repro.errors import MetadataError
from repro.sim.core import Simulator
from repro.sim.params import JukeboxParams, skylake
from repro.units import KB


def record_one_invocation(trace):
    core = Simulator(skylake())
    jukebox = Jukebox(JukeboxParams())
    core.flush_microarch_state()
    jukebox.begin_invocation(core.hierarchy)
    result = core.run(trace)
    jukebox.end_invocation(core.hierarchy, result)
    return jukebox


class TestSnapshotRoundTrip:
    def test_empty_jukebox_has_no_snapshot(self):
        assert snapshot_jukebox(Jukebox(JukeboxParams())) is None

    def test_capture_after_recording(self, tiny_traces):
        jukebox = record_one_invocation(tiny_traces[0])
        snapshot = snapshot_jukebox(jukebox)
        assert snapshot is not None
        assert snapshot.n_entries > 0
        assert snapshot.region_size == 1 * KB

    def test_serialize_deserialize_roundtrip(self, tiny_traces):
        snapshot = snapshot_jukebox(record_one_invocation(tiny_traces[0]))
        blob = snapshot.serialize()
        restored = MetadataSnapshot.deserialize(blob)
        assert restored.entries == snapshot.entries
        assert restored.region_size == snapshot.region_size
        assert restored.architectural_bytes == snapshot.architectural_bytes

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(MetadataError):
            MetadataSnapshot.deserialize(b"nope")
        with pytest.raises(MetadataError):
            MetadataSnapshot.deserialize(b"XXXX" + bytes(10))

    def test_deserialize_rejects_truncated_body(self, tiny_traces):
        blob = snapshot_jukebox(record_one_invocation(tiny_traces[0])) \
            .serialize()
        with pytest.raises(MetadataError):
            MetadataSnapshot.deserialize(blob[:-3])


class TestColdStartAcceleration:
    def test_restored_instance_replays_on_first_invocation(self, tiny_traces):
        snapshot = snapshot_jukebox(record_one_invocation(tiny_traces[0]))
        fresh = restore_jukebox(snapshot)
        assert fresh.has_replay_metadata

        core = Simulator(skylake())
        core.flush_microarch_state()
        stats = fresh.begin_invocation(core.hierarchy)
        assert stats.lines_prefetched > 0

    def test_restored_first_invocation_is_faster(self, tiny_traces):
        trace = tiny_traces[1]
        snapshot = snapshot_jukebox(record_one_invocation(tiny_traces[0]))

        # Cold boot without snapshot metadata.
        cold_core = Simulator(skylake())
        cold = cold_core.run(trace)

        # Cold boot restored from snapshot: replay covers the fetch storm.
        warm_core = Simulator(skylake())
        jukebox = restore_jukebox(snapshot)
        jukebox.begin_invocation(warm_core.hierarchy)
        accelerated = warm_core.run(trace)
        jukebox.end_invocation(warm_core.hierarchy, accelerated)

        assert accelerated.cycles < 0.9 * cold.cycles

    def test_restore_rejects_mismatched_region_size(self, tiny_traces):
        snapshot = snapshot_jukebox(record_one_invocation(tiny_traces[0]))
        with pytest.raises(MetadataError):
            restore_jukebox(snapshot, JukeboxParams(region_size=2 * KB))

    def test_restore_respects_budget(self, tiny_traces):
        snapshot = snapshot_jukebox(record_one_invocation(tiny_traces[0]))
        tight = restore_jukebox(
            snapshot, JukeboxParams(metadata_bytes=256))
        assert tight.replay_metadata_bytes <= 256
