"""Tests for the Jukebox replay phase."""

import pytest

from repro.core.metadata import MetadataBuffer
from repro.core.regions import RegionGeometry
from repro.core.replayer import JukeboxReplayer
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import skylake
from repro.units import KB, LINE_SHIFT, PAGE_SHIFT

GEO = RegionGeometry(1 * KB)
BASE = 0x5555_0000_0000


def make_buffer(entries) -> MetadataBuffer:
    buf = MetadataBuffer(geometry=GEO, limit_bytes=16 * KB)
    for e in entries:
        buf.append(e)
    return buf


@pytest.fixture
def hier():
    return MemoryHierarchy(skylake())


class TestReplay:
    def test_schedules_all_encoded_lines(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, 0b1011)])
        stats = JukeboxReplayer(hier).replay(buf)
        assert stats.lines_prefetched == 3
        assert hier.l2_fills.pending == 3

    def test_empty_buffer_is_noop(self, hier):
        stats = JukeboxReplayer(hier).replay(make_buffer([]))
        assert stats.lines_prefetched == 0
        assert hier.stats.memory.metadata_replay == 0

    def test_metadata_read_traffic(self, hier):
        buf = make_buffer([(GEO.region_of(BASE), 1)])
        JukeboxReplayer(hier).replay(buf)
        assert hier.stats.memory.metadata_replay == buf.size_bytes

    def test_completion_times_bandwidth_spaced(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, (1 << 16) - 1)])
        JukeboxReplayer(hier).replay(buf)
        completions = sorted(hier.l2_fills.inflight.values())
        spacing = completions[1] - completions[0]
        assert spacing == pytest.approx(hier.memory.cycles_per_line)

    def test_replay_order_matches_metadata_order(self, hier):
        regions = [GEO.region_of(BASE + i * 4 * KB) for i in range(3)]
        buf = make_buffer([(r, 1) for r in regions])
        JukeboxReplayer(hier).replay(buf)
        fills = hier.l2_fills._schedule
        blocks = [b for _c, b in fills]
        expected = [GEO.region_base(r) >> LINE_SHIFT for r in regions]
        assert blocks == expected

    def test_duplicate_regions_prefetched_once(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, 0b11), (region, 0b110)])
        stats = JukeboxReplayer(hier).replay(buf)
        assert stats.lines_prefetched == 3  # union of the two vectors
        assert stats.duplicate_lines_skipped == 1

    def test_warms_itlb(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, 1)])
        stats = JukeboxReplayer(hier).replay(buf)
        assert stats.tlb_warmed_pages == 1
        assert hier.itlb.contains(BASE >> PAGE_SHIFT)

    def test_prefetch_traffic_charged_per_line(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, 0b111)])
        JukeboxReplayer(hier).replay(buf)
        assert hier.stats.memory.prefetch_overpredicted == 3 * 64

    def test_start_cycle_offsets_completions(self, hier):
        region = GEO.region_of(BASE)
        buf = make_buffer([(region, 1)])
        JukeboxReplayer(hier).replay(buf, start_cycle=1000.0)
        completion = next(iter(hier.l2_fills.inflight.values()))
        assert completion > 1000.0
