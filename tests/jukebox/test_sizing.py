"""Tests for dynamic per-function metadata sizing."""

import pytest

from repro.core.jukebox import JukeboxInvocationReport
from repro.core.replayer import ReplayStats
from repro.core.sizing import MetadataSizer
from repro.errors import ConfigurationError
from repro.units import KB, PAGE_SIZE


def report(recorded_bytes, dropped=0):
    return JukeboxInvocationReport(
        replay=ReplayStats(),
        recorded_entries=recorded_bytes // 7,
        recorded_bytes=recorded_bytes,
        recorded_dropped=dropped,
    )


class TestRecommendations:
    def test_no_samples_keeps_current_budget(self):
        sizer = MetadataSizer()
        decision = sizer.recommend("f", current_budget=16 * KB)
        assert decision.budget_bytes == 16 * KB
        assert decision.samples == 0

    def test_budget_page_aligned(self):
        sizer = MetadataSizer()
        for _ in range(8):
            sizer.observe("f", report(5 * KB))
        decision = sizer.recommend("f", 16 * KB)
        assert decision.budget_bytes % PAGE_SIZE == 0

    def test_small_function_gets_small_budget(self):
        sizer = MetadataSizer()
        for _ in range(8):
            sizer.observe("go-fn", report(4 * KB))
        decision = sizer.recommend("go-fn", 16 * KB)
        assert decision.budget_bytes < 16 * KB
        assert decision.budget_bytes >= int(4 * KB * sizer.headroom) // PAGE_SIZE * PAGE_SIZE

    def test_headroom_above_p95(self):
        sizer = MetadataSizer(headroom=1.5)
        for size in (8 * KB,) * 10:
            sizer.observe("f", report(size))
        decision = sizer.recommend("f", 16 * KB)
        assert decision.budget_bytes >= 12 * KB
        assert decision.observed_p95_bytes == 8 * KB

    def test_truncation_doubles_budget(self):
        sizer = MetadataSizer()
        for _ in range(4):
            sizer.observe("py-fn", report(16 * KB, dropped=100))
        decision = sizer.recommend("py-fn", 16 * KB)
        assert decision.truncating
        assert decision.budget_bytes == 32 * KB

    def test_clamped_to_max(self):
        sizer = MetadataSizer(max_bytes=32 * KB)
        for _ in range(4):
            sizer.observe("f", report(32 * KB, dropped=1))
        decision = sizer.recommend("f", 32 * KB)
        assert decision.budget_bytes == 32 * KB

    def test_clamped_to_min(self):
        sizer = MetadataSizer(min_bytes=PAGE_SIZE)
        for _ in range(4):
            sizer.observe("f", report(100))
        assert sizer.recommend("f", 16 * KB).budget_bytes == PAGE_SIZE

    def test_window_forgets_old_behaviour(self):
        sizer = MetadataSizer(window=8)
        for _ in range(8):
            sizer.observe("f", report(30 * KB))
        for _ in range(8):
            sizer.observe("f", report(4 * KB))
        decision = sizer.recommend("f", 32 * KB)
        assert decision.budget_bytes <= 8 * KB

    def test_per_function_isolation(self):
        sizer = MetadataSizer()
        for _ in range(6):
            sizer.observe("small", report(3 * KB))
            sizer.observe("large", report(24 * KB))
        assert sizer.recommend("small", 16 * KB).budget_bytes \
            < sizer.recommend("large", 16 * KB).budget_bytes


class TestFleetAccounting:
    def test_total_fleet_bytes(self):
        sizer = MetadataSizer()
        budgets = {"a": 8 * KB, "b": 16 * KB}
        assert sizer.total_fleet_bytes(budgets) == 2 * 24 * KB

    def test_rejects_bad_headroom(self):
        with pytest.raises(ConfigurationError):
            MetadataSizer(headroom=0.5)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            MetadataSizer(min_bytes=64 * KB, max_bytes=8 * KB)


class TestEndToEndSizing:
    def test_sizer_on_real_function(self, tiny_traces):
        """Feed real Jukebox reports; the Go-like tiny function should get
        a budget well under the paper's 16KB default."""
        from repro.core.jukebox import Jukebox
        from repro.sim.core import Simulator
        from repro.sim.params import JukeboxParams, skylake

        core = Simulator(skylake())
        jukebox = Jukebox(JukeboxParams())
        sizer = MetadataSizer()
        for trace in tiny_traces:
            core.flush_microarch_state()
            jukebox.begin_invocation(core.hierarchy)
            result = core.run(trace)
            sizer.observe("tiny", jukebox.end_invocation(core.hierarchy,
                                                         result))
        decision = sizer.recommend("tiny", 16 * KB)
        assert decision.samples == len(tiny_traces)
        assert decision.budget_bytes < 16 * KB
