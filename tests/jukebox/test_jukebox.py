"""Tests for the Jukebox facade: the record/replay lifecycle."""

import pytest

from repro.core.jukebox import Jukebox
from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.params import JukeboxParams, skylake
from repro.units import KB


def run_lukewarm_sequence(core, jukebox, traces):
    reports = []
    for trace in traces:
        core.flush_microarch_state()
        jukebox.begin_invocation(core.hierarchy)
        result = core.run(trace)
        reports.append((result, jukebox.end_invocation(core.hierarchy, result)))
    return reports


class TestLifecycle:
    def test_first_invocation_has_no_replay(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        stats = jb.begin_invocation(core.hierarchy)
        assert stats.lines_prefetched == 0
        assert not jb.has_replay_metadata

    def test_second_invocation_replays_first_recording(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        reports = run_lukewarm_sequence(core, jb, tiny_traces[:2])
        _, first = reports[0]
        assert first.recorded_entries > 0
        _, second = reports[1]
        assert second.replay.lines_prefetched > 0

    def test_double_begin_rejected(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        jb.begin_invocation(core.hierarchy)
        with pytest.raises(SimulationError):
            jb.begin_invocation(core.hierarchy)

    def test_end_without_begin_rejected(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        result = core.run(tiny_traces[0])
        with pytest.raises(SimulationError):
            jb.end_invocation(core.hierarchy, result)

    def test_record_hook_cleared_after_invocation(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        run_lukewarm_sequence(core, jb, tiny_traces[:1])
        assert core.hierarchy.record_hook is None

    def test_invocation_counter(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        run_lukewarm_sequence(core, jb, tiny_traces[:3])
        assert jb.invocations == 3
        assert len(jb.reports) == 3


class TestEffectiveness:
    def test_covered_invocations_are_faster(self, tiny_traces):
        baseline = Simulator(skylake())
        base_cycles = []
        for trace in tiny_traces:
            baseline.flush_microarch_state()
            base_cycles.append(baseline.run(trace).cycles)

        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        reports = run_lukewarm_sequence(core, jb, tiny_traces)
        jb_cycles = [result.cycles for result, _ in reports]
        # First invocation has no metadata -> same as baseline.
        assert jb_cycles[0] == pytest.approx(base_cycles[0], rel=0.01)
        # Subsequent invocations are measurably faster.
        for base, with_jb in zip(base_cycles[1:], jb_cycles[1:]):
            assert with_jb < base * 0.95

    def test_coverage_is_high_and_stable(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        reports = run_lukewarm_sequence(core, jb, tiny_traces)
        for result, report in reports[1:]:
            covered = report.replay.covered
            prefetched = report.replay.lines_prefetched
            assert covered > 0.5 * prefetched

    def test_metadata_stable_across_covered_invocations(self, tiny_traces):
        """The recorded metadata must not decay once replay covers the
        working set (the record-on-prefetched-hit rule)."""
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        reports = run_lukewarm_sequence(core, jb, tiny_traces)
        sizes = [report.recorded_bytes for _, report in reports]
        assert sizes[-1] > 0.6 * sizes[0]

    def test_overprediction_bounded(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        reports = run_lukewarm_sequence(core, jb, tiny_traces)
        for _, report in reports[1:]:
            over = report.replay.overpredicted
            assert over < 0.35 * report.replay.lines_prefetched

    def test_tight_budget_truncates_and_covers_less(self, tiny_traces):
        def coverage(budget):
            core = Simulator(skylake())
            jb = Jukebox(JukeboxParams(metadata_bytes=budget))
            reports = run_lukewarm_sequence(core, jb, tiny_traces)
            return sum(r.replay.covered for _, r in reports[1:])

        assert coverage(1 * KB) < coverage(16 * KB)

    def test_replay_metadata_bytes_accessor(self, tiny_traces):
        core = Simulator(skylake())
        jb = Jukebox(JukeboxParams())
        assert jb.replay_metadata_bytes == 0
        run_lukewarm_sequence(core, jb, tiny_traces[:1])
        assert jb.replay_metadata_bytes > 0
