"""Tests for the bounded in-memory metadata buffer."""

from repro.core.metadata import MetadataBuffer, unbounded_metadata_size_bytes
from repro.core.regions import RegionGeometry
from repro.units import KB

GEO = RegionGeometry(1 * KB)


def buffer(limit_bytes=1 * KB) -> MetadataBuffer:
    return MetadataBuffer(geometry=GEO, limit_bytes=limit_bytes)


class TestCapacity:
    def test_capacity_entries_from_bits(self):
        buf = buffer(limit_bytes=54)  # 54 bytes = 432 bits = 8 entries
        assert buf.capacity_entries == 8

    def test_paper_16kb_budget(self):
        buf = buffer(limit_bytes=16 * KB)
        assert buf.capacity_entries == (16 * KB * 8) // 54 == 2427

    def test_append_under_limit(self):
        buf = buffer()
        assert buf.append((1, 0b1))
        assert len(buf) == 1
        assert not buf.is_truncated

    def test_append_over_limit_drops(self):
        buf = buffer(limit_bytes=7)  # one 54-bit entry
        assert buf.append((1, 1))
        assert not buf.append((2, 1))
        assert buf.dropped_entries == 1
        assert buf.is_truncated
        assert len(buf) == 1


class TestAccounting:
    def test_size_bytes_rounds_up_bits(self):
        buf = buffer()
        buf.append((1, 1))
        assert buf.size_bytes == 7  # ceil(54 / 8)
        buf.append((2, 1))
        assert buf.size_bytes == 14  # ceil(108 / 8)

    def test_unbounded_size_helper(self):
        assert unbounded_metadata_size_bytes(100, GEO) == -(-100 * 54 // 8)

    def test_unique_regions(self):
        buf = buffer()
        buf.append((1, 1))
        buf.append((2, 1))
        buf.append((1, 2))  # re-recorded region
        assert len(buf) == 3
        assert buf.unique_regions() == 2

    def test_encoded_blocks_deduplicates(self):
        buf = buffer()
        buf.append((0, 0b11))
        buf.append((0, 0b10))  # overlapping second entry
        assert buf.encoded_blocks() == {0, 64}

    def test_iteration_preserves_order(self):
        buf = buffer()
        entries = [(5, 1), (3, 2), (9, 4)]
        for e in entries:
            buf.append(e)
        assert list(buf) == entries

    def test_clear(self):
        buf = buffer(limit_bytes=7)
        buf.append((1, 1))
        buf.append((2, 1))  # dropped
        buf.clear()
        assert len(buf) == 0
        assert not buf.is_truncated
