"""Tests for the code-region geometry and 54-bit entry encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regions import RegionGeometry
from repro.errors import ConfigurationError
from repro.units import KB, LINE_SIZE


class TestPaperEncoding:
    def test_1kb_region_is_54_bits(self):
        """Sec. 3.2: 38-bit pointer + 16-bit vector = 54 bits per entry."""
        geo = RegionGeometry(1 * KB)
        assert geo.pointer_bits == 38
        assert geo.vector_bits == 16
        assert geo.entry_bits == 54

    @pytest.mark.parametrize("region,pointer,vector", [
        (128, 41, 2), (256, 40, 4), (512, 39, 8),
        (2 * KB, 37, 32), (4 * KB, 36, 64), (8 * KB, 35, 128),
    ])
    def test_other_region_sizes(self, region, pointer, vector):
        geo = RegionGeometry(region)
        assert geo.pointer_bits == pointer
        assert geo.vector_bits == vector


class TestGeometry:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            RegionGeometry(1000)

    def test_rejects_sub_line_region(self):
        with pytest.raises(ConfigurationError):
            RegionGeometry(32)

    def test_region_of(self):
        geo = RegionGeometry(1 * KB)
        assert geo.region_of(0) == 0
        assert geo.region_of(1023) == 0
        assert geo.region_of(1024) == 1

    def test_region_base_inverts_region_of(self):
        geo = RegionGeometry(1 * KB)
        assert geo.region_base(geo.region_of(5000)) == 4096

    def test_line_offset(self):
        geo = RegionGeometry(1 * KB)
        assert geo.line_offset(0) == 0
        assert geo.line_offset(64) == 1
        assert geo.line_offset(1024) == 0  # wraps at region boundary

    def test_expand(self):
        geo = RegionGeometry(1 * KB)
        addrs = geo.expand(region=2, vector=0b101)
        assert addrs == [2048, 2048 + 2 * LINE_SIZE]

    def test_expand_empty_vector(self):
        geo = RegionGeometry(1 * KB)
        assert geo.expand(0, 0) == []

    def test_expand_full_vector(self):
        geo = RegionGeometry(1 * KB)
        assert len(geo.expand(0, (1 << 16) - 1)) == 16


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.sampled_from([128, 512, 1 * KB, 4 * KB]))
    def test_encode_decode_roundtrip(self, vaddr, region_size):
        """Any address encodes to (region, bit) and decodes to its block."""
        geo = RegionGeometry(region_size)
        region = geo.region_of(vaddr)
        bit = geo.line_offset(vaddr)
        addrs = geo.expand(region, 1 << bit)
        assert addrs == [(vaddr // LINE_SIZE) * LINE_SIZE]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 38) - 1),
           st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_expand_count_is_popcount(self, region, vector):
        geo = RegionGeometry(1 * KB)
        assert len(geo.expand(region, vector)) == bin(vector).count("1")
