"""Tests for the Code Region Reference Buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crrb import CRRB
from repro.core.regions import RegionGeometry
from repro.errors import ConfigurationError
from repro.units import KB, LINE_SIZE

GEO = RegionGeometry(1 * KB)


def region_addr(region: int, line: int = 0) -> int:
    return region * 1024 + line * LINE_SIZE


class TestRecording:
    def test_first_miss_allocates(self):
        crrb = CRRB(4, GEO)
        assert crrb.record(region_addr(1)) is None
        assert len(crrb) == 1
        assert crrb.allocations == 1

    def test_same_region_coalesces(self):
        crrb = CRRB(4, GEO)
        crrb.record(region_addr(1, 0))
        crrb.record(region_addr(1, 3))
        crrb.record(region_addr(1, 15))
        assert len(crrb) == 1
        assert crrb.hits == 2
        assert crrb.occupancy_vector(1) == (1 << 0) | (1 << 3) | (1 << 15)

    def test_fifo_eviction_order(self):
        crrb = CRRB(2, GEO)
        crrb.record(region_addr(1))
        crrb.record(region_addr(2))
        evicted = crrb.record(region_addr(3))
        assert evicted == (1, 1)  # oldest region, its vector

    def test_hits_do_not_refresh_fifo_age(self):
        """FIFO means allocation order, not recency (Sec. 3.2)."""
        crrb = CRRB(2, GEO)
        crrb.record(region_addr(1))
        crrb.record(region_addr(2))
        crrb.record(region_addr(1, 5))   # hit on region 1
        evicted = crrb.record(region_addr(3))
        assert evicted[0] == 1           # region 1 still evicts first

    def test_evicted_entry_is_immutable(self):
        """A miss to an evicted region allocates a *new* entry."""
        crrb = CRRB(1, GEO)
        crrb.record(region_addr(1, 0))
        crrb.record(region_addr(2))      # evicts region 1
        evicted = crrb.record(region_addr(1, 7))  # region 1 again
        assert evicted == (2, 1)
        assert crrb.occupancy_vector(1) == 1 << 7  # fresh vector

    def test_vector_bit_positions(self):
        crrb = CRRB(4, GEO)
        crrb.record(region_addr(9, 12))
        assert crrb.occupancy_vector(9) == 1 << 12


class TestDrain:
    def test_drain_preserves_fifo_order(self):
        crrb = CRRB(8, GEO)
        for region in (5, 3, 9):
            crrb.record(region_addr(region))
        drained = crrb.drain()
        assert [r for r, _v in drained] == [5, 3, 9]
        assert len(crrb) == 0

    def test_drain_counts_evictions(self):
        crrb = CRRB(8, GEO)
        crrb.record(region_addr(1))
        crrb.record(region_addr(2))
        crrb.drain()
        assert crrb.evictions == 2

    def test_flush_discards_silently(self):
        crrb = CRRB(8, GEO)
        crrb.record(region_addr(1))
        crrb.flush()
        assert len(crrb) == 0
        assert crrb.evictions == 0


class TestConfiguration:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            CRRB(0, GEO)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20), max_size=200),
           st.sampled_from([1, 8, 16, 32]))
    def test_occupancy_bounded_and_unique(self, addrs, capacity):
        crrb = CRRB(capacity, GEO)
        for addr in addrs:
            crrb.record(addr)
        assert len(crrb) <= capacity
        regions = [r for r, _ in crrb.drain()]
        assert len(set(regions)) == len(regions)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 20), max_size=200))
    def test_every_miss_lands_in_exactly_one_entry(self, addrs):
        """Union of all evicted + drained vectors covers every recorded line."""
        crrb = CRRB(4, GEO)
        produced = []
        for addr in addrs:
            evicted = crrb.record(addr)
            if evicted is not None:
                produced.append(evicted)
        produced.extend(crrb.drain())
        covered = set()
        for region, vector in produced:
            covered.update(GEO.expand(region, vector))
        expected = {(a // LINE_SIZE) * LINE_SIZE for a in addrs}
        assert covered == expected
