"""Tests for the PIF temporal-streaming baseline."""

import pytest

from repro.core.pif import PIF, PIFParams, pif_ideal_params
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import skylake
from repro.units import KB, LINE_SIZE

BASE = 0x5555_0000_0000


def feed(pif, blocks, cycle=0.0):
    for b in blocks:
        pif.on_fetch(BASE + b * LINE_SIZE, cycle)


class TestParams:
    def test_paper_configuration(self):
        p = PIFParams()
        assert p.index_bytes == 49 * KB
        assert p.stream_bytes == 164 * KB
        assert not p.persistent

    def test_ideal_configuration(self):
        p = pif_ideal_params()
        assert p.persistent
        assert p.unlimited
        assert p.stream_capacity > 10 ** 6


class TestRecording:
    def test_stream_grows(self):
        pif = PIF(PIFParams())
        feed(pif, [1, 2, 3])
        base_block = BASE // LINE_SIZE
        assert pif._stream == [base_block + 1, base_block + 2, base_block + 3]

    def test_consecutive_duplicates_collapsed(self):
        pif = PIF(PIFParams())
        feed(pif, [1, 1, 1, 2])
        assert len(pif._stream) == 2

    def test_stream_capacity_wraps(self):
        params = PIFParams(stream_bytes=7 * 10)  # 10 entries
        pif = PIF(params)
        feed(pif, range(25))
        assert len(pif._stream) <= 10
        # Index positions must remain valid.
        for pos in pif._index.values():
            assert 0 <= pos < len(pif._stream)

    def test_index_capacity_respected(self):
        params = PIFParams(index_bytes=6 * 5)  # 5 entries
        pif = PIF(params)
        feed(pif, range(20))
        assert len(pif._index) <= 5


class TestReplay:
    def test_repeating_pattern_followed(self):
        hier = MemoryHierarchy(skylake())
        pif = PIF(pif_ideal_params(), hier)
        pattern = list(range(50))
        feed(pif, pattern)
        feed(pif, pattern)
        assert pif.stats.stream_follows > 30
        assert pif.stats.prefetches_issued > 0

    def test_divergence_reindexes_and_squashes(self):
        hier = MemoryHierarchy(skylake())
        pif = PIF(pif_ideal_params(), hier)
        feed(pif, range(30))
        feed(pif, list(range(10)) + [100, 101, 102])
        assert pif.stats.reindexes >= 1
        assert hier.l1i_fills.pending == 0  # squashed

    def test_non_persistent_flush_clears_state(self):
        pif = PIF(PIFParams())
        feed(pif, range(10))
        pif.flush()
        assert not pif._stream
        assert not pif._index

    def test_persistent_flush_keeps_metadata(self):
        pif = PIF(pif_ideal_params())
        feed(pif, range(10))
        pif.flush()
        assert pif._stream
        assert pif._pointer is None  # pointer is a core register: reset

    def test_index_miss_counted(self):
        pif = PIF(PIFParams())
        feed(pif, [5])
        assert pif.stats.index_misses == 1  # nothing recorded before it

    def test_prefetches_not_reissued_for_resident_lines(self):
        hier = MemoryHierarchy(skylake())
        pif = PIF(pif_ideal_params(), hier)
        pattern = list(range(20))
        # Demand-load the pattern so everything is in the L1-I.
        for b in pattern:
            hier.access_instr(BASE + b * LINE_SIZE, 0.0)
        hier.record_hook = pif
        for b in pattern:
            hier.access_instr(BASE + b * LINE_SIZE, 1000.0)
        for b in pattern:
            hier.access_instr(BASE + b * LINE_SIZE, 2000.0)
        assert pif.stats.prefetches_issued == 0


class TestEndToEnd:
    def test_pif_between_baseline_and_jukebox(self, tiny_traces):
        """Paper ordering: baseline < PIF <= PIF-ideal < Jukebox."""
        from repro.core.jukebox import Jukebox
        from repro.sim.core import Simulator
        from repro.sim.params import JukeboxParams

        def run_baseline():
            core = Simulator(skylake())
            cycles = 0.0
            for i, trace in enumerate(tiny_traces):
                core.flush_microarch_state()
                r = core.run(trace)
                if i:
                    cycles += r.cycles
            return cycles

        def run_with_pif(params):
            core = Simulator(skylake())
            pif = PIF(params, core.hierarchy)
            core.hierarchy.record_hook = pif
            cycles = 0.0
            for i, trace in enumerate(tiny_traces):
                core.flush_microarch_state()
                pif.flush()
                r = core.run(trace)
                if i:
                    cycles += r.cycles
            return cycles

        def run_with_jukebox():
            core = Simulator(skylake())
            jb = Jukebox(JukeboxParams())
            cycles = 0.0
            for i, trace in enumerate(tiny_traces):
                core.flush_microarch_state()
                jb.begin_invocation(core.hierarchy)
                r = core.run(trace)
                jb.end_invocation(core.hierarchy, r)
                if i:
                    cycles += r.cycles
            return cycles

        base = run_baseline()
        ideal = run_with_pif(pif_ideal_params())
        jukebox = run_with_jukebox()
        assert ideal < base
        assert jukebox < ideal
