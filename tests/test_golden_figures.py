"""Golden-trace regression tests: figure outputs pinned as canonical JSON.

Each golden file under ``tests/golden/`` is the canonical-JSON dump of one
figure experiment's ``run()`` result on the two smallest workload
profiles (Auth-G and ProdL-G by instruction count) at a reduced scale.
The comparison is *byte-exact*: any change to the simulator's arithmetic,
iteration order, or defaults shows up as a diff here before it can
silently move a paper figure.

Intentional model changes: rerun with ``--update-golden``::

    PYTHONPATH=src python -m pytest tests/test_golden_figures.py --update-golden

then commit the regenerated snapshots and describe the model change in
the PR (the diff *is* the review artifact).  See EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import fig02_topdown, fig05_mpki, fig10_speedup
from repro.experiments.common import RunConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The two smallest profiles in the suite by instruction count.
GOLDEN_FUNCTIONS = ("Auth-G", "ProdL-G")

#: Reduced scale: small enough to run in seconds, large enough that every
#: simulator subsystem (caches, TLBs, prefetcher, Top-Down) contributes.
GOLDEN_CFG = RunConfig(invocations=3, warmup=1, seed=1,
                       instruction_scale=0.25)

FIGURES = {
    "fig02_topdown": fig02_topdown,
    "fig05_mpki": fig05_mpki,
    "fig10_speedup": fig10_speedup,
}


def canonical_json(result) -> str:
    """Canonical JSON for a figure result dataclass: sorted keys, indented,
    trailing newline -- byte-stable for identical float values."""
    payload = dataclasses.asdict(result)
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_matches_golden(name, update_golden):
    module = FIGURES[name]
    result = module.run(GOLDEN_CFG, functions=list(GOLDEN_FUNCTIONS))
    actual = canonical_json(result)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual, encoding="utf-8")
        pytest.skip(f"golden snapshot {golden_path.name} regenerated")
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; generate it with "
        f"pytest --update-golden and commit it")
    expected = golden_path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{name} output drifted from its golden snapshot. If this model "
        f"change is intentional, rerun with --update-golden and commit "
        f"the regenerated {golden_path.name}; otherwise the simulator's "
        f"determinism broke.")


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_golden_snapshot_is_canonical(name):
    """The committed snapshots themselves round-trip canonically, so a
    hand edit (or a non-canonical rewrite) fails even without rerunning
    the simulator."""
    golden_path = GOLDEN_DIR / f"{name}.json"
    text = golden_path.read_text(encoding="utf-8")
    payload = json.loads(text)
    assert json.dumps(payload, sort_keys=True, indent=2) + "\n" == text


def test_golden_runs_are_deterministic():
    """Two in-process runs of the same figure produce identical bytes --
    the precondition that makes byte-exact goldens fair to enforce."""
    first = canonical_json(
        fig05_mpki.run(GOLDEN_CFG, functions=list(GOLDEN_FUNCTIONS)))
    second = canonical_json(
        fig05_mpki.run(GOLDEN_CFG, functions=list(GOLDEN_FUNCTIONS)))
    assert first == second
