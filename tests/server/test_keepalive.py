"""Tests for keep-alive policies."""

import pytest

from repro.errors import ConfigurationError
from repro.server.keepalive import FixedTTL, HistogramTTL


class TestFixedTTL:
    def test_ttl_in_ms(self):
        assert FixedTTL(10).ttl_ms("f") == 600_000

    def test_eviction_decision(self):
        policy = FixedTTL(1)
        assert not policy.should_evict("f", 59_000)
        assert policy.should_evict("f", 61_000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedTTL(0)

    def test_observe_is_noop(self):
        policy = FixedTTL(1)
        policy.observe_iat("f", 5.0)
        assert policy.ttl_ms("f") == 60_000


class TestHistogramTTL:
    def test_default_until_enough_samples(self):
        policy = HistogramTTL(default_ttl_minutes=5)
        assert policy.ttl_ms("f") == 300_000
        policy.observe_iat("f", 100.0)
        assert policy.ttl_ms("f") == 300_000  # still < 4 samples

    def test_adapts_to_observed_iats(self):
        policy = HistogramTTL(percentile=99, margin=1.2)
        for _ in range(50):
            policy.observe_iat("f", 1000.0)
        assert policy.ttl_ms("f") == pytest.approx(1200.0)

    def test_capped_at_max(self):
        policy = HistogramTTL(max_ttl_minutes=1)
        for _ in range(50):
            policy.observe_iat("f", 10_000_000.0)
        assert policy.ttl_ms("f") == 60_000

    def test_per_function_isolation(self):
        policy = HistogramTTL()
        for _ in range(20):
            policy.observe_iat("fast", 10.0)
            policy.observe_iat("slow", 60_000.0)
        assert policy.ttl_ms("fast") < policy.ttl_ms("slow")

    def test_fewer_evictions_than_tight_fixed_ttl(self):
        """An adaptive policy avoids evicting a slow-but-regular function."""
        adaptive = HistogramTTL(percentile=99, margin=1.5)
        fixed = FixedTTL(ttl_minutes=0.5)  # 30s
        for _ in range(20):
            adaptive.observe_iat("f", 45_000.0)
        idle = 45_000.0
        assert fixed.should_evict("f", idle)
        assert not adaptive.should_evict("f", idle)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ConfigurationError):
            HistogramTTL(percentile=0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ConfigurationError):
            HistogramTTL(margin=0.5)
