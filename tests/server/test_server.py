"""Tests for the server-level interleaving model (Sec. 2.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.server.instance import WarmInstance
from repro.server.keepalive import FixedTTL
from repro.server.server import ServerConfig, ServerSimulator
from repro.units import MB
from repro.workloads.arrival import FixedIAT, PoissonArrivals
from repro.workloads.suite import SUITE, get_profile


class TestWarmInstance:
    def test_record_invocation_tracks_iat(self):
        inst = WarmInstance("i", get_profile("Auth-G"))
        inst.record_invocation(100.0, global_seq=0, core=0)
        inst.record_invocation(1100.0, global_seq=5, core=0)
        assert inst.iats_ms == [1000.0]
        assert inst.interleave_degrees == [4]

    def test_cold_start_counted(self):
        inst = WarmInstance("i", get_profile("Auth-G"))
        inst.record_invocation(0.0, 0, 0, cold=True)
        assert inst.cold_starts == 1

    def test_memory_includes_runtime_overhead(self):
        inst = WarmInstance("i", get_profile("Auth-G"))
        assert inst.memory_bytes > 20 * MB

    def test_jukebox_metadata_allocation(self):
        inst = WarmInstance("i", get_profile("Auth-G"))
        inst.allocate_jukebox_metadata(16 * 1024)
        assert inst.jukebox_metadata_bytes == 32 * 1024

    def test_idle_ms(self):
        inst = WarmInstance("i", get_profile("Auth-G"), created_ms=10.0)
        assert inst.idle_ms(110.0) == 100.0
        inst.record_invocation(200.0, 0, 0)
        assert inst.idle_ms(260.0) == 60.0


class TestServerSimulator:
    def make_server(self, instances=50, mean_iat=1000.0, seed=1,
                    keepalive=None):
        server = ServerSimulator(ServerConfig(cores=10), keepalive=keepalive,
                                 seed=seed)
        profiles = SUITE
        server.populate(
            profiles, instances,
            lambda i, p: PoissonArrivals(mean_iat, seed=seed * 1000 + i))
        return server

    def test_invocations_happen(self):
        stats = self.make_server().run(20_000.0)
        assert stats.invocations > 500

    def test_duplicate_instance_rejected(self):
        server = ServerSimulator()
        server.add_instance(get_profile("Auth-G"), FixedIAT(100.0), "x")
        with pytest.raises(ConfigurationError):
            server.add_instance(get_profile("Auth-G"), FixedIAT(100.0), "x")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            self.make_server().run(0.0)

    def test_interleaving_scales_with_instance_count(self):
        """Sec. 2.2: more co-resident warm instances -> more invocations
        interleaved between two invocations of the same instance."""
        few = self.make_server(instances=10, seed=2).run(30_000.0)
        many = self.make_server(instances=200, seed=2).run(30_000.0)
        assert many.mean_interleaving() > 5 * few.mean_interleaving()

    def test_interleaving_matches_occupancy_arithmetic(self):
        """With N instances at equal rates, ~N-1 other invocations land
        between two invocations of a given instance."""
        n = 100
        stats = self.make_server(instances=n, mean_iat=500.0, seed=3) \
            .run(30_000.0)
        assert stats.mean_interleaving() == pytest.approx(n - 1, rel=0.25)

    def test_no_evictions_with_long_ttl(self):
        stats = self.make_server(keepalive=FixedTTL(60)).run(20_000.0)
        assert stats.cold_starts == 0
        assert stats.warm_fraction == 1.0

    def test_short_ttl_causes_cold_starts(self):
        server = self.make_server(instances=20, mean_iat=5_000.0,
                                  keepalive=FixedTTL(0.02))  # 1.2s TTL
        stats = server.run(60_000.0)
        assert stats.cold_starts > 0
        assert stats.warm_fraction < 1.0

    def test_memory_accounting(self):
        server = self.make_server(instances=100)
        stats = server.run(1_000.0)
        assert stats.peak_memory_bytes > 0
        assert 0 < server.memory_pressure() < 1

    def test_jukebox_metadata_headline(self):
        """Abstract: a thousand warm instances cost ~32MB of metadata."""
        server = ServerSimulator(ServerConfig())
        server.populate(SUITE, 1000, lambda i, p: PoissonArrivals(10_000.0,
                                                                  seed=i))
        stats = server.run(1_000.0)
        assert stats.jukebox_metadata_bytes == 1000 * 32 * 1024

    def test_iats_recorded(self):
        stats = self.make_server(instances=5, mean_iat=200.0).run(10_000.0)
        assert len(stats.iats_ms) > 10
        mean_iat = sum(stats.iats_ms) / len(stats.iats_ms)
        assert mean_iat == pytest.approx(200.0, rel=0.4)

    def test_deterministic_for_seed(self):
        a = self.make_server(seed=9).run(5_000.0)
        b = self.make_server(seed=9).run(5_000.0)
        assert a.invocations == b.invocations
        assert a.interleave_degrees == b.interleave_degrees


class TestServerConfigValidation:
    """Regression battery: malformed server parameters fail at
    construction, not as NaN-poisoned results deep in a fleet sweep."""

    @pytest.mark.parametrize("cores", [0, -1, -10])
    def test_rejects_nonpositive_cores(self, cores):
        with pytest.raises(ConfigurationError):
            ServerConfig(cores=cores)

    @pytest.mark.parametrize("memory_gb", [0, -1])
    def test_rejects_nonpositive_memory(self, memory_gb):
        with pytest.raises(ConfigurationError):
            ServerConfig(memory_gb=memory_gb)

    @pytest.mark.parametrize("service_time_ms",
                             [0.0, -1.0, float("nan"), float("inf"),
                              float("-inf")])
    def test_rejects_bad_service_time(self, service_time_ms):
        with pytest.raises(ConfigurationError):
            ServerConfig(service_time_ms=service_time_ms)

    @pytest.mark.parametrize("penalty", [-0.001, float("nan"), float("inf")])
    def test_rejects_bad_cold_start_penalty(self, penalty):
        with pytest.raises(ConfigurationError):
            ServerConfig(cold_start_penalty_ms=penalty)

    def test_rejects_negative_metadata_bytes(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(jukebox_metadata_bytes_per_instance=-1)

    def test_defaults_are_valid(self):
        cfg = ServerConfig()
        assert cfg.cores == 10 and cfg.memory_gb == 64
        assert cfg.memory_bytes == 64 * 1024 * MB

    @pytest.mark.parametrize("scale", [0.0, -0.5, float("nan"), float("inf")])
    def test_add_instance_rejects_bad_service_scale(self, scale):
        server = ServerSimulator()
        with pytest.raises(ConfigurationError):
            server.add_instance(get_profile("Auth-G"), FixedIAT(100.0),
                                "x", service_scale=scale)


class TestEnforceMemory:
    """The fleet admission model: warm-set tracking, memory-bounded
    admission, and latency accounting."""

    def overcommitted(self, seed=1):
        server = ServerSimulator(
            ServerConfig(cores=4, memory_gb=1, enforce_memory=True),
            keepalive=FixedTTL(60.0), seed=seed)
        server.populate(
            SUITE, 100,
            lambda i, p: PoissonArrivals(500.0, seed=seed * 1000 + i))
        return server

    def test_drops_when_memory_exhausted(self):
        stats = self.overcommitted().run(20_000.0)
        assert stats.dropped > 0
        assert stats.arrivals == stats.invocations + stats.dropped

    def test_peak_memory_within_capacity(self):
        server = self.overcommitted()
        stats = server.run(20_000.0)
        assert stats.peak_memory_bytes <= server.config.memory_bytes

    def test_legacy_path_never_drops(self):
        server = ServerSimulator(ServerConfig(cores=4, memory_gb=1),
                                 keepalive=FixedTTL(60.0), seed=1)
        server.populate(
            SUITE, 100, lambda i, p: PoissonArrivals(500.0, seed=1000 + i))
        stats = server.run(20_000.0)
        assert stats.dropped == 0
        assert stats.arrivals == stats.invocations

    def test_latencies_include_cold_start_penalty(self):
        cfg = ServerConfig(cores=10, enforce_memory=True,
                           cold_start_penalty_ms=250.0)
        server = ServerSimulator(cfg, keepalive=FixedTTL(60.0), seed=2)
        server.populate(
            SUITE, 10, lambda i, p: PoissonArrivals(1000.0, seed=i))
        stats = server.run(10_000.0)
        assert len(stats.latencies_ms) == stats.invocations
        assert stats.cold_starts > 0
        # Every instance cold-starts once, so the max latency carries
        # the penalty and the p99 sits at or above it.
        assert max(stats.latencies_ms) >= 250.0
        assert stats.p99_latency_ms >= 250.0
        assert stats.busy_ms > 0
