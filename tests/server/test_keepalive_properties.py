"""Seeded property tests for the keep-alive policies (satellite of the
fleet battery).

Inputs are generated with stdlib ``random.Random`` from fixed master
seeds: every run exercises the same population, and a failing case
reproduces exactly from the seed.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.server.keepalive import FixedTTL, HistogramTTL


def _random_iats(rng: random.Random, n: int) -> list:
    return [rng.uniform(1.0, 600_000.0) for _ in range(n)]


class TestHistogramTTLProperties:
    def test_ttl_monotone_in_safety_margin(self):
        """A larger margin never shortens the keep-alive window."""
        rng = random.Random(501)
        for _ in range(50):
            iats = _random_iats(rng, rng.randrange(4, 60))
            margins = sorted(rng.uniform(1.0, 3.0) for _ in range(3))
            ttls = []
            for margin in margins:
                policy = HistogramTTL(margin=margin)
                for iat in iats:
                    policy.observe_iat("f", iat)
                ttls.append(policy.ttl_ms("f"))
            assert ttls == sorted(ttls), (margins, ttls)

    def test_should_evict_consistent_with_ttl(self):
        """should_evict(idle) is exactly idle > ttl_ms, for any policy
        state and any idle time."""
        rng = random.Random(502)
        for _ in range(50):
            policy = HistogramTTL(percentile=rng.uniform(50.0, 100.0),
                                  margin=rng.uniform(1.0, 2.0))
            for iat in _random_iats(rng, rng.randrange(0, 40)):
                policy.observe_iat("f", iat)
            ttl = policy.ttl_ms("f")
            for _ in range(20):
                idle = rng.uniform(0.0, 2.0 * ttl)
                assert policy.should_evict("f", idle) == (idle > ttl)
            # Boundary: exactly at the TTL is *not* evicted.
            assert not policy.should_evict("f", ttl)

    def test_ttl_bounded_by_max(self):
        rng = random.Random(503)
        policy = HistogramTTL(max_ttl_minutes=1.0)
        for iat in _random_iats(rng, 100):
            policy.observe_iat("f", iat)
        assert policy.ttl_ms("f") <= 60_000.0

    def test_few_observations_fall_back_to_default(self):
        policy = HistogramTTL(default_ttl_minutes=7.0)
        for iat in (10.0, 20.0, 30.0):  # below the 4-sample threshold
            policy.observe_iat("f", iat)
        assert policy.ttl_ms("f") == 7.0 * 60_000.0
        assert policy.ttl_ms("never-seen") == 7.0 * 60_000.0

    def test_per_function_isolation(self):
        rng = random.Random(504)
        policy = HistogramTTL()
        for iat in _random_iats(rng, 50):
            policy.observe_iat("busy", iat)
        assert policy.ttl_ms("other") == policy._default_ms


class TestFixedTTLProperties:
    def test_should_evict_consistent_with_ttl(self):
        rng = random.Random(505)
        for _ in range(20):
            minutes = rng.uniform(0.01, 60.0)
            policy = FixedTTL(minutes)
            ttl = policy.ttl_ms("f")
            assert ttl == pytest.approx(minutes * 60_000.0)
            for _ in range(10):
                idle = rng.uniform(0.0, 2.0 * ttl)
                assert policy.should_evict("f", idle) == (idle > ttl)


class TestKeepAliveValidation:
    @pytest.mark.parametrize("minutes", [0.0, -1.0, -0.001])
    def test_fixed_ttl_rejects_nonpositive(self, minutes):
        with pytest.raises(ConfigurationError):
            FixedTTL(minutes)

    @pytest.mark.parametrize("percentile", [0.0, -5.0, 100.5, 200.0])
    def test_histogram_rejects_bad_percentile(self, percentile):
        with pytest.raises(ConfigurationError):
            HistogramTTL(percentile=percentile)

    @pytest.mark.parametrize("margin", [0.99, 0.0, -1.0])
    def test_histogram_rejects_margin_below_one(self, margin):
        with pytest.raises(ConfigurationError):
            HistogramTTL(margin=margin)

    @pytest.mark.parametrize("minutes", [0.0, -2.0])
    def test_histogram_rejects_nonpositive_default_ttl(self, minutes):
        with pytest.raises(ConfigurationError):
            HistogramTTL(default_ttl_minutes=minutes)

    @pytest.mark.parametrize("minutes", [0.0, -2.0])
    def test_histogram_rejects_nonpositive_max_ttl(self, minutes):
        with pytest.raises(ConfigurationError):
            HistogramTTL(max_ttl_minutes=minutes)
