"""Tests for the co-tenant interference stressor."""

import pytest

from repro.errors import ConfigurationError
from repro.server.stressor import Stressor
from repro.sim.core import Simulator
from repro.sim.params import skylake

ADDR = 0x5555_0000_0000


@pytest.fixture
def core():
    return Simulator(skylake())


def warm_up(core, n_blocks=64):
    for i in range(n_blocks):
        core.hierarchy.access_instr(ADDR + i * 64, 0.0)


class TestFullThrash:
    def test_obliterates_all_state(self, core):
        warm_up(core)
        Stressor(load=0.5).full_thrash(core)
        assert core.hierarchy.l1i.occupancy == 0
        assert core.hierarchy.l2.occupancy == 0
        assert core.hierarchy.llc.occupancy == 0


class TestIdleGap:
    def test_zero_gap_is_noop(self, core):
        warm_up(core)
        occupancy = core.hierarchy.llc.occupancy
        Stressor(load=0.5).idle_gap(core, 0.0)
        assert core.hierarchy.llc.occupancy == occupancy

    def test_zero_load_is_noop(self, core):
        warm_up(core)
        before = core.hierarchy.l1i.occupancy
        Stressor(load=0.0).idle_gap(core, 1000.0)
        assert core.hierarchy.l1i.occupancy == before

    def test_long_gap_thrashes_private_caches(self, core):
        warm_up(core)
        Stressor(load=0.5).idle_gap(core, 10.0)
        assert core.hierarchy.l1i.occupancy == 0
        assert core.hierarchy.l2.occupancy == 0

    def test_short_gap_keeps_some_private_state(self, core):
        warm_up(core, n_blocks=256)
        Stressor(load=0.5).idle_gap(core, 0.5)
        resident = sum(1 for i in range(256)
                       if core.hierarchy.l1i.contains((ADDR >> 6) + i))
        assert resident > 0

    def test_llc_decay_is_graded(self, core):
        def survivors(gap_ms):
            c = Simulator(skylake())
            for i in range(4096):
                c.hierarchy.llc.insert((ADDR >> 6) + i)
            Stressor(load=0.5, seed=1).idle_gap(c, gap_ms)
            return sum(1 for i in range(4096)
                       if c.hierarchy.llc.contains((ADDR >> 6) + i))

        s10, s100, s1000 = survivors(10), survivors(100), survivors(1000)
        assert s10 > s100 > s1000
        assert s1000 < 0.02 * 4096  # saturated: Fig. 1 plateau

    def test_rejects_negative_gap(self, core):
        with pytest.raises(ConfigurationError):
            Stressor(load=0.5).idle_gap(core, -1.0)

    def test_rejects_bad_load(self):
        with pytest.raises(ConfigurationError):
            Stressor(load=1.5)


class TestContention:
    def test_contention_applied_and_cleared(self, core):
        stressor = Stressor(load=0.5)
        stressor.apply_contention(core)
        assert core.hierarchy.memory.contention > 1.0
        stressor.clear_contention(core)
        assert core.hierarchy.memory.contention == 1.0

    def test_contention_scales_with_load(self, core):
        low, high = Simulator(skylake()), core
        Stressor(load=0.2).apply_contention(low)
        Stressor(load=0.9).apply_contention(high)
        assert high.hierarchy.memory.contention > low.hierarchy.memory.contention


class TestAnalyticSurvival:
    def test_expected_survival_monotone_in_gap(self, core):
        stressor = Stressor(load=0.5)
        survival = [stressor.expected_llc_survival(core, gap)
                    for gap in (1, 10, 100, 1000)]
        assert survival == sorted(survival, reverse=True)
        assert survival[0] > 0.9
        assert survival[-1] < 0.05

    def test_expected_matches_simulated(self, core):
        """The analytic per-set Poisson survival matches bulk_pollute."""
        stressor = Stressor(load=0.5, seed=2)
        llc = core.hierarchy.llc
        n = llc.params.num_lines  # fill the LLC completely
        for i in range(n):
            llc.insert((ADDR >> 6) + i)
        gap = 50.0
        expected = stressor.expected_llc_survival(core, gap)
        stressor.idle_gap(core, gap)
        actual = sum(1 for i in range(n)
                     if core.hierarchy.llc.contains((ADDR >> 6) + i)) / n
        assert actual == pytest.approx(expected, abs=0.12)
