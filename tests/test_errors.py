"""Tests for the exception hierarchy and package-level exports."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    MetadataError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [ConfigurationError, MetadataError,
                                     SimulationError, TraceError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("x")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes_exported(self):
        for name in ("Jukebox", "LukewarmCore", "FunctionModel", "PIF",
                     "skylake", "broadwell", "SUITE", "get_profile"):
            assert name in repro.__all__

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.server
        import repro.sim
        import repro.workloads
        for module in (repro.analysis, repro.core, repro.server, repro.sim,
                       repro.workloads, repro.experiments):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExamplesCompile:
    def test_examples_are_valid_python(self):
        import pathlib
        import py_compile
        examples = pathlib.Path(__file__).parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 4
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
