"""Scalar-vs-columnar differential battery.

The columnar backend's contract is *byte identity*: for every trace, the
vectorized interpreter must produce an :class:`InvocationResult` whose
canonical JSON encoding equals the scalar reference's, and must leave the
simulator in exactly the same microarchitectural state (cache LRU orders,
prefetch ledgers, TLBs, predictor training, BTB contents, counters).

Three tiers of evidence:

* the full Table-2 suite (all 20 profiles), flushed and warm;
* seeded-random :class:`TraceBuilder` programs exercising event mixes the
  generator never emits (the property battery);
* targeted shapes that aim at the bulk-execution preconditions (repeat
  folding, fused inserts, prefetch interactions).
"""

import json

import numpy as np
import pytest

from repro.engine.job import canonicalize
from repro.experiments.common import RunConfig, make_traces
from repro.sim.core import Simulator
from repro.sim.params import skylake
from repro.sim.simulate import simulate
from repro.workloads import TraceBuilder
from repro.workloads.suite import SUITE, get_profile
from repro.workloads.trace import LoopSpec

ALL_PROFILES = tuple(p.abbrev for p in SUITE)


def canonical_json(results) -> str:
    return json.dumps([canonicalize(r) for r in results], sort_keys=True,
                      separators=(",", ":"))


def full_state(sim):
    """Every observable bit of microarchitectural state, as a comparable
    value (not just the result: divergent state would poison the *next*
    invocation even if this one matched)."""
    h = sim.hierarchy
    caches = tuple(
        (tuple(tuple(s) for s in c._sets), frozenset(c._pf_pending))
        for c in (h.l1i, h.l1d, h.l2, h.llc))
    tlbs = tuple(tuple(tuple(s) for s in t._sets) for t in (h.itlb, h.dtlb))
    br = sim.branches
    btb = br.btb
    return (caches, tlbs, frozenset(br._trained),
            tuple(tuple(s) for s in btb._sets),
            br.mispredicts, br.cold_mispredicts, br.executions,
            btb.lookups, btb.misses)


def run_sequence(traces, backend, flush):
    sim = Simulator(skylake(), backend=backend)
    results = []
    for trace in traces:
        if flush:
            sim.flush_microarch_state()
        results.append(simulate(trace, sim=sim))
        sim.hierarchy.finish_invocation()
    return canonical_json(results), full_state(sim)


def assert_backends_identical(traces, flush):
    scalar_json, scalar_state = run_sequence(traces, "scalar", flush)
    columnar_json, columnar_state = run_sequence(traces, "columnar", flush)
    assert columnar_json == scalar_json
    assert columnar_state == scalar_state


class TestTable2Suite:
    """Byte identity over every Table-2 workload, lukewarm and warm."""

    CFG = RunConfig(invocations=3, warmup=1, seed=1, instruction_scale=0.05)

    @pytest.mark.parametrize("abbrev", ALL_PROFILES)
    def test_flushed_sequence_identical(self, abbrev):
        traces = make_traces(get_profile(abbrev), self.CFG)
        assert_backends_identical(traces, flush=True)

    @pytest.mark.parametrize("abbrev", ALL_PROFILES)
    def test_warm_sequence_identical(self, abbrev):
        traces = make_traces(get_profile(abbrev), self.CFG)
        assert_backends_identical(traces, flush=False)


def random_trace(seed: int):
    """A seeded random program over the full event vocabulary."""
    rng = np.random.default_rng(seed)
    b = TraceBuilder()
    code_blocks = [int(x) * 64 for x in rng.integers(0, 4096, size=64)]
    data_blocks = [(1 << 24) + int(x) * 64
                   for x in rng.integers(0, 2048, size=64)]
    walk = [code_blocks[i] for i in rng.integers(0, len(code_blocks),
                                                 size=24)]
    for _ in range(int(rng.integers(40, 140))):
        roll = rng.random()
        if roll < 0.45:
            b.fetch(code_blocks[int(rng.integers(0, len(code_blocks)))],
                    insts=int(rng.integers(1, 30)),
                    taken_branches=int(rng.integers(0, 3)))
        elif roll < 0.60:
            # Repeated walks drive the bulk classifier and repeat folding.
            for addr in walk:
                b.fetch(addr, insts=int(rng.integers(2, 16)))
        elif roll < 0.80:
            addr = data_blocks[int(rng.integers(0, len(data_blocks)))]
            count = int(rng.integers(1, 12))
            if rng.random() < 0.3:
                b.store(addr, count=count)
            else:
                b.load(addr, count=count)
        elif roll < 0.95:
            b.branch_site(0x400000 + int(rng.integers(0, 512)) * 4,
                          executions=int(rng.integers(1, 80)),
                          taken_prob=float(rng.random()))
        else:
            body = tuple(
                (1 << 22) + int(x) * 64
                for x in rng.integers(0, 64, size=int(rng.integers(2, 9))))
            b.loop(LoopSpec(blocks=body,
                            iterations=int(rng.integers(2, 40)),
                            insts_per_iteration=int(rng.integers(8, 64)),
                            branches_per_iteration=int(rng.integers(1, 4))))
    return b.build()


class TestSeededRandomPrograms:
    """Property battery: arbitrary seeded event streams never diverge."""

    @pytest.mark.parametrize("seed", range(12))
    def test_flushed_identical(self, seed):
        traces = [random_trace(seed * 31 + k) for k in range(3)]
        assert_backends_identical(traces, flush=True)

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_warm_identical(self, seed):
        traces = [random_trace(seed * 31 + k) for k in range(3)]
        assert_backends_identical(traces, flush=False)


class TestTargetedShapes:
    """Hand-built shapes aimed at specific bulk-path preconditions."""

    def test_pure_repeat_walk_folds_identically(self):
        b = TraceBuilder()
        blocks = [i * 64 for i in range(12)]
        for _ in range(20):
            for addr in blocks:
                b.fetch(addr, insts=8, taken_branches=1)
        assert_backends_identical([b.build()], flush=True)

    def test_itlb_aliasing_walk(self):
        # Pages far apart so the walk spans many I-TLB sets and the walk's
        # pages do not all fit one set.
        b = TraceBuilder()
        blocks = [i * 4096 * 17 for i in range(40)]
        for _ in range(4):
            for addr in blocks:
                b.fetch(addr, insts=4)
        assert_backends_identical([b.build()], flush=True)

    def test_set_conflicting_walk(self):
        # All blocks in the same L1-I set: walk exceeds associativity, so
        # repeats can never fold and every pass re-walks cold.
        b = TraceBuilder()
        stride = 64 * 64  # one full L1-I set period
        blocks = [i * stride for i in range(16)]
        for _ in range(6):
            for addr in blocks:
                b.fetch(addr, insts=4)
        assert_backends_identical([b.build()], flush=True)

    def test_data_stream_with_next_line_prefetch(self):
        b = TraceBuilder()
        for i in range(200):
            b.load((1 << 26) + i * 64, count=2)
        for i in range(200):
            b.load((1 << 26) + i * 64)  # re-touch: hits + prefetch flags
        assert_backends_identical([b.build()], flush=True)

    def test_interleaved_code_and_data_same_blocks(self):
        # Data accesses to the blocks the instruction walk touches: the
        # d-side and i-side are separate caches but share L2/LLC.
        b = TraceBuilder()
        blocks = [i * 64 for i in range(30)]
        for _ in range(3):
            for addr in blocks:
                b.fetch(addr, insts=6)
                b.load(addr)
        assert_backends_identical([b.build()], flush=True)

    def test_branch_heavy_with_cold_btb(self):
        b = TraceBuilder()
        for site in range(300):
            b.branch_site(0x500000 + site * 4, executions=1 + site % 7,
                          taken_prob=(site % 11) / 10.0)
        assert_backends_identical([b.build()], flush=True)
