"""Tests for the branch predictor, BTB and per-site aggregate model."""

import pytest

from repro.sim.branch import BTB, BimodalTable, BranchPredictor, SiteBranchModel
from repro.sim.params import CoreParams


class TestBimodalTable:
    def test_initial_prediction_weakly_taken(self):
        table = BimodalTable(16)
        assert table.predict(0)

    def test_learns_not_taken(self):
        table = BimodalTable(16)
        table.update(3, False)
        table.update(3, False)
        assert not table.predict(3)

    def test_saturates(self):
        table = BimodalTable(16)
        for _ in range(10):
            table.update(3, True)
        table.update(3, False)
        assert table.predict(3)  # one bad outcome can't flip a saturated counter

    def test_flush_resets(self):
        table = BimodalTable(16)
        table.update(3, False)
        table.update(3, False)
        table.flush()
        assert table.predict(3)

    def test_index_wraps(self):
        table = BimodalTable(16)
        table.update(16 + 3, False)
        table.update(16 + 3, False)
        assert not table.predict(3)


class TestBranchPredictor:
    def test_learns_stable_branch(self):
        bp = BranchPredictor(CoreParams())
        pc = 0x1000
        for _ in range(20):
            bp.predict_and_update(pc, True)
        before = bp.mispredicts
        for _ in range(100):
            bp.predict_and_update(pc, True)
        assert bp.mispredicts == before

    def test_alternating_branch_learned_by_gshare(self):
        bp = BranchPredictor(CoreParams())
        pc = 0x2000
        outcomes = [bool(i % 2) for i in range(600)]
        for t in outcomes[:300]:
            bp.predict_and_update(pc, t)
        before = bp.mispredicts
        for t in outcomes[300:]:
            bp.predict_and_update(pc, t)
        # History-based prediction captures strict alternation well.
        assert bp.mispredicts - before < 30

    def test_flush_forgets(self):
        bp = BranchPredictor(CoreParams())
        pc = 0x3000
        for _ in range(50):
            bp.predict_and_update(pc, False)
        bp.flush()
        assert not bp.predict_and_update(pc, False)  # mispredicts again

    def test_stats_counters(self):
        bp = BranchPredictor(CoreParams())
        for i in range(10):
            bp.predict_and_update(0x10 * i, True)
        assert bp.lookups == 10
        bp.reset_stats()
        assert bp.lookups == 0


class TestBTB:
    def test_first_access_misses(self):
        btb = BTB(CoreParams())
        assert not btb.access(0x1000)
        assert btb.access(0x1000)

    def test_capacity(self):
        params = CoreParams(btb_entries=16, btb_assoc=2)
        btb = BTB(params)
        # Fill one set beyond capacity.
        pcs = [((i * btb.num_sets) << 2) for i in range(3)]
        for pc in pcs:
            btb.access(pc)
        assert not btb.access(pcs[0])  # evicted

    def test_flush(self):
        btb = BTB(CoreParams())
        btb.access(0x1000)
        btb.flush()
        assert not btb.access(0x1000)


class TestSiteBranchModel:
    def make(self):
        btb = BTB(CoreParams())
        return SiteBranchModel(btb)

    def test_cold_site_costs_one_mispredict_and_bubble(self):
        model = self.make()
        mispredicts, bubbles = model.execute_site(0x100, 1, 0.9)
        assert mispredicts == 1.0
        assert bubbles == 1

    def test_warm_site_steady_rate(self):
        model = self.make()
        model.execute_site(0x100, 1, 0.9)
        mispredicts, bubbles = model.execute_site(0x100, 1000, 0.9)
        expected = 1000 * 2 * 0.9 * 0.1 * SiteBranchModel.CORRELATION_MISS_FACTOR
        assert mispredicts == pytest.approx(expected)
        assert bubbles == 0

    def test_biased_sites_mispredict_less(self):
        model = self.make()
        m_biased, _ = model.execute_site(0x200, 1001, 0.97)
        m_even, _ = model.execute_site(0x300, 1001, 0.5)
        assert m_biased < m_even

    def test_flush_recolds_all_sites(self):
        model = self.make()
        model.execute_site(0x100, 100, 0.9)
        model.flush()
        mispredicts, bubbles = model.execute_site(0x100, 1, 0.9)
        assert mispredicts == 1.0
        assert bubbles == 1

    def test_executions_accumulate(self):
        model = self.make()
        model.execute_site(0x100, 10, 0.9)
        model.execute_site(0x200, 5, 0.9)
        assert model.executions == 15
        assert model.trained_sites == 2

    def test_reset_stats_keeps_training(self):
        model = self.make()
        model.execute_site(0x100, 10, 0.9)
        model.reset_stats()
        assert model.executions == 0
        mispredicts, _ = model.execute_site(0x100, 1, 0.9)
        assert mispredicts < 1.0  # still trained
