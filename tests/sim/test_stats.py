"""Tests for the statistics counter bundles."""

import pytest

from repro.sim.stats import AccessStats, HierarchyStats, MemoryTraffic


class TestAccessStats:
    def test_mpki(self):
        s = AccessStats(inst_misses=10, data_misses=5)
        assert s.mpki(1000, "inst") == 10.0
        assert s.mpki(1000, "data") == 5.0
        assert s.mpki(1000, "all") == 15.0

    def test_mpki_zero_instructions(self):
        assert AccessStats(inst_misses=10).mpki(0) == 0.0

    def test_mpki_unknown_kind(self):
        with pytest.raises(ValueError):
            AccessStats().mpki(1000, "bogus")

    def test_aggregates(self):
        s = AccessStats(inst_hits=3, inst_misses=1, data_hits=2, data_misses=4)
        assert s.accesses == 10
        assert s.hits == 5
        assert s.misses == 5

    def test_snapshot_is_independent(self):
        s = AccessStats(inst_hits=1)
        snap = s.snapshot()
        s.inst_hits += 10
        assert snap.inst_hits == 1

    def test_delta(self):
        s = AccessStats(inst_hits=5, data_misses=2)
        snap = s.snapshot()
        s.inst_hits += 3
        s.data_misses += 1
        d = s.delta(snap)
        assert d.inst_hits == 3
        assert d.data_misses == 1
        assert d.inst_misses == 0

    def test_reset(self):
        s = AccessStats(inst_hits=5)
        s.reset()
        assert s.accesses == 0


class TestMemoryTraffic:
    def test_baseline_equivalent_includes_useful_prefetch(self):
        t = MemoryTraffic(demand_inst=100, demand_data=50, prefetch_useful=64)
        assert t.baseline_equivalent == 214

    def test_overhead(self):
        t = MemoryTraffic(prefetch_overpredicted=64, metadata_record=54,
                          metadata_replay=10)
        assert t.overhead == 128

    def test_overhead_fraction_empty(self):
        assert MemoryTraffic().overhead_fraction() == 0.0

    def test_delta(self):
        t = MemoryTraffic(demand_inst=64)
        snap = t.snapshot()
        t.metadata_replay += 32
        d = t.delta(snap)
        assert d.demand_inst == 0
        assert d.metadata_replay == 32


class TestHierarchyStats:
    def test_levels_mapping(self):
        h = HierarchyStats()
        assert set(h.levels()) == {"l1i", "l1d", "l2", "llc", "itlb", "dtlb"}

    def test_delta_covers_all_levels(self):
        h = HierarchyStats()
        snap = h.snapshot()
        h.l2.inst_misses += 7
        h.memory.demand_inst += 64
        d = h.delta(snap)
        assert d.l2.inst_misses == 7
        assert d.memory.demand_inst == 64
        assert d.l1i.inst_misses == 0

    def test_reset(self):
        h = HierarchyStats()
        h.llc.data_hits += 3
        h.reset()
        assert h.llc.data_hits == 0
