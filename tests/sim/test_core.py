"""Tests for the analytic core timing model."""

import pytest

from repro.sim.core import Simulator
from repro.sim.params import skylake
from repro.units import LINE_SIZE
from repro.workloads.trace import LoopSpec, TraceBuilder

CODE = 0x5555_0000_0000
DATA = 0x0000_2000_0000


def build_trace(fn):
    builder = TraceBuilder()
    fn(builder)
    return builder.build()


class TestBasicAccounting:
    def test_retiring_cycles(self):
        trace = build_trace(lambda b: b.fetch(CODE, insts=8))
        core = Simulator(skylake())
        result = core.run(trace)
        assert result.instructions == 8
        assert result.topdown.retiring == pytest.approx(
            8 / skylake().core.issue_width)

    def test_cold_fetch_charges_fetch_latency(self):
        trace = build_trace(lambda b: b.fetch(CODE, insts=4))
        core = Simulator(skylake())
        result = core.run(trace)
        assert result.topdown.fetch_latency > 0
        assert result.fetch_sources == {"memory": 1}

    def test_warm_refetch_is_free(self):
        def body(b):
            b.fetch(CODE, 4)
            b.fetch(CODE, 4)
        result = Simulator(skylake()).run(build_trace(body))
        assert result.fetch_sources == {"memory": 1, "l1": 1}

    def test_taken_branches_charge_fetch_bandwidth(self):
        t1 = build_trace(lambda b: b.fetch(CODE, 4, taken_branches=0))
        t2 = build_trace(lambda b: b.fetch(CODE, 4, taken_branches=3))
        r1 = Simulator(skylake()).run(t1)
        r2 = Simulator(skylake()).run(t2)
        assert r2.topdown.fetch_bandwidth > r1.topdown.fetch_bandwidth

    def test_loads_charge_backend(self):
        trace = build_trace(lambda b: b.load(DATA, count=4))
        result = Simulator(skylake()).run(trace)
        assert result.topdown.backend_bound > 0
        assert result.topdown.fetch_latency == 0

    def test_branch_site_charges_bad_speculation(self):
        trace = build_trace(lambda b: b.branch_site(CODE + 16, 100, 0.5))
        result = Simulator(skylake()).run(trace)
        assert result.topdown.bad_speculation > 0

    def test_cycles_equals_topdown_total(self):
        def body(b):
            b.fetch(CODE, 8, 1)
            b.load(DATA, 4)
            b.branch_site(CODE + 16, 50, 0.9)
        result = Simulator(skylake()).run(build_trace(body))
        assert result.cycles == pytest.approx(result.topdown.total_cycles)


class TestLoops:
    def test_loop_instructions_counted(self):
        spec = LoopSpec(blocks=(CODE, CODE + LINE_SIZE), iterations=100,
                        insts_per_iteration=20)
        trace = build_trace(lambda b: b.loop(spec))
        result = Simulator(skylake()).run(trace)
        assert result.instructions == 2000

    def test_small_loop_refetches_nothing(self):
        """A loop body resident in the L1-I misses only on the first pass."""
        spec = LoopSpec(blocks=(CODE, CODE + LINE_SIZE), iterations=50,
                        insts_per_iteration=16)
        result = Simulator(skylake()).run(build_trace(lambda b: b.loop(spec)))
        assert result.stats.l1i.inst_misses == 2

    def test_large_loop_steady_state_charged(self):
        """A loop body exceeding the L1-I pays L2-hit latency per pass."""
        machine = skylake()
        n_blocks = machine.l1i.num_lines * 2
        blocks = tuple(CODE + i * LINE_SIZE for i in range(n_blocks))
        small = LoopSpec(blocks=blocks[:4], iterations=50,
                         insts_per_iteration=4 * 10)
        big = LoopSpec(blocks=blocks, iterations=50,
                       insts_per_iteration=n_blocks * 10)
        r_small = Simulator(skylake()).run(
            build_trace(lambda b: b.loop(small)))
        r_big = Simulator(skylake()).run(build_trace(lambda b: b.loop(big)))
        # Per-instruction fetch latency is higher for the L1I-overflowing loop.
        fl_small = r_small.topdown.fetch_latency / r_small.instructions
        fl_big = r_big.topdown.fetch_latency / r_big.instructions
        assert fl_big > fl_small

    def test_loop_exit_mispredicts_once(self):
        spec = LoopSpec(blocks=(CODE,), iterations=10, insts_per_iteration=10)
        result = Simulator(skylake()).run(build_trace(lambda b: b.loop(spec)))
        assert result.mispredicts == 1


class TestFlush:
    def test_flush_recolds_everything(self):
        def body(b):
            b.fetch(CODE, 4)
            b.branch_site(CODE + 4, 10, 0.9)
        trace = build_trace(body)
        core = Simulator(skylake())
        first = core.run(trace)
        warm = core.run(trace)
        core.flush_microarch_state()
        lukewarm = core.run(trace)
        assert warm.cycles < first.cycles
        assert lukewarm.cycles == pytest.approx(first.cycles)

    def test_flush_recolds_branch_sites(self):
        trace = build_trace(lambda b: b.branch_site(CODE, 100, 0.95))
        core = Simulator(skylake())
        first = core.run(trace)
        core.flush_microarch_state()
        again = core.run(trace)
        assert again.mispredicts == pytest.approx(first.mispredicts)


class TestResultHelpers:
    def test_cpi(self):
        trace = build_trace(lambda b: b.fetch(CODE, 100))
        result = Simulator(skylake()).run(trace)
        assert result.cpi == pytest.approx(result.cycles / 100)

    def test_mpki_delegates_to_stats(self):
        trace = build_trace(lambda b: b.fetch(CODE, 1000))
        result = Simulator(skylake()).run(trace)
        assert result.mpki("llc", "inst") == pytest.approx(1.0)

    def test_stats_are_per_invocation_deltas(self):
        trace = build_trace(lambda b: b.fetch(CODE, 4))
        core = Simulator(skylake())
        r1 = core.run(trace)
        r2 = core.run(trace)
        assert r1.stats.l1i.inst_misses == 1
        assert r2.stats.l1i.inst_misses == 0
        assert r2.stats.l1i.inst_hits == 1


class TestDeterminism:
    def test_same_trace_same_cycles(self, tiny_model):
        trace = tiny_model.invocation_trace(0)
        r1 = Simulator(skylake()).run(trace)
        r2 = Simulator(skylake()).run(trace)
        assert r1.cycles == pytest.approx(r2.cycles)
        assert r1.instructions == r2.instructions
