"""Tests for the TLB model."""

from hypothesis import given, settings, strategies as st

from repro.sim.params import TLBParams
from repro.sim.tlb import TLB


def make_tlb(entries=16, assoc=4) -> TLB:
    return TLB(TLBParams("T", entries=entries, assoc=assoc))


class TestTLB:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert not tlb.access(5)
        assert tlb.access(5)

    def test_capacity_eviction_is_lru(self):
        tlb = make_tlb(entries=4, assoc=4)  # one set
        for page in range(4):
            tlb.access(page * tlb.num_sets)
        tlb.access(0)  # refresh page 0
        tlb.access(99 * tlb.num_sets)  # evicts LRU = page 1*num_sets
        assert tlb.contains(0)
        assert not tlb.contains(1 * tlb.num_sets)

    def test_warm_prepopulates(self):
        tlb = make_tlb()
        assert not tlb.warm(7)
        assert tlb.access(7)

    def test_warm_reports_already_resident(self):
        tlb = make_tlb()
        tlb.access(7)
        assert tlb.warm(7)

    def test_flush(self):
        tlb = make_tlb()
        for page in range(8):
            tlb.access(page)
        tlb.flush()
        assert tlb.occupancy == 0
        assert not tlb.access(0)

    def test_contains_no_side_effect(self):
        tlb = make_tlb(entries=2, assoc=2)
        tlb.access(0)
        tlb.access(tlb.num_sets)  # same set
        tlb.contains(0)
        tlb.access(2 * tlb.num_sets)  # evicts true LRU (0)
        assert not tlb.contains(0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=200))
    def test_occupancy_bounded(self, pages):
        tlb = make_tlb(entries=16, assoc=4)
        for page in pages:
            tlb.access(page)
        assert tlb.occupancy <= 16
