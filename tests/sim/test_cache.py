"""Unit and property tests for the set-associative cache model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import SetAssocCache
from repro.sim.params import CacheParams
from repro.units import KB


def small_cache(size=4 * KB, assoc=4) -> SetAssocCache:
    return SetAssocCache(CacheParams("T", size=size, assoc=assoc, latency=1))


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.lookup(42)
        assert not hit
        cache.insert(42)
        hit, _ = cache.lookup(42)
        assert hit

    def test_contains_has_no_lru_side_effect(self):
        cache = small_cache(size=256, assoc=4)  # one set
        for block in range(4):
            cache.insert(block * cache.num_sets)
        victim = 0  # LRU
        assert cache.contains(victim)
        # contains() must not refresh LRU: inserting a new block evicts it.
        cache.insert(100 * cache.num_sets)
        assert not cache.contains(victim)

    def test_insert_returns_eviction(self):
        cache = small_cache(size=256, assoc=4)
        blocks = [i * cache.num_sets for i in range(4)]
        for b in blocks:
            evicted, _ = cache.insert(b)
            assert evicted is None
        evicted, _ = cache.insert(99 * cache.num_sets)
        assert evicted == blocks[0]

    def test_lru_order_respects_hits(self):
        cache = small_cache(size=256, assoc=2)
        a, b, c = (i * cache.num_sets for i in (1, 2, 3))
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)          # a becomes MRU
        evicted, _ = cache.insert(c)
        assert evicted == b

    def test_reinsert_refreshes_lru(self):
        cache = small_cache(size=256, assoc=2)
        a, b, c = (i * cache.num_sets for i in (1, 2, 3))
        cache.insert(a)
        cache.insert(b)
        cache.insert(a)
        evicted, _ = cache.insert(c)
        assert evicted == b

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.invalidate(7)

    def test_flush_empties_cache(self):
        cache = small_cache()
        for b in range(32):
            cache.insert(b)
        dropped = cache.flush()
        assert dropped == 32
        assert cache.occupancy == 0

    def test_blocks_map_to_correct_set(self):
        cache = small_cache(size=4 * KB, assoc=4)
        block = 5 * cache.num_sets + 3
        cache.insert(block)
        assert cache.contains(block)
        assert not cache.contains(block + 1)


class TestPrefetchTracking:
    def test_prefetch_hit_reported_once(self):
        cache = small_cache()
        cache.insert(10, prefetch=True)
        hit, was_pf = cache.lookup(10)
        assert hit and was_pf
        hit, was_pf = cache.lookup(10)
        assert hit and not was_pf

    def test_unused_prefetch_eviction_flagged(self):
        cache = small_cache(size=256, assoc=2)
        a, b, c = (i * cache.num_sets for i in (1, 2, 3))
        cache.insert(a, prefetch=True)
        cache.insert(b)
        evicted, unused = cache.insert(c)
        assert evicted == a
        assert unused

    def test_used_prefetch_eviction_not_flagged(self):
        cache = small_cache(size=256, assoc=2)
        a, b, c = (i * cache.num_sets for i in (1, 2, 3))
        cache.insert(a, prefetch=True)
        cache.lookup(a)  # use it
        cache.insert(b)
        evicted, unused = cache.insert(c)
        assert evicted == a
        assert not unused

    def test_demand_reinsert_clears_prefetch_flag(self):
        cache = small_cache()
        cache.insert(10, prefetch=True)
        cache.insert(10)  # demand insert counts as use
        assert cache.pending_prefetches == 0

    def test_clear_prefetch_flag(self):
        cache = small_cache()
        cache.insert(10, prefetch=True)
        assert cache.clear_prefetch_flag(10)
        assert not cache.clear_prefetch_flag(10)

    def test_invalidate_unused_prefetches(self):
        cache = small_cache()
        cache.insert(1, prefetch=True)
        cache.insert(2, prefetch=True)
        cache.insert(3)
        cache.lookup(1)  # used
        dropped = cache.invalidate_unused_prefetches()
        assert dropped == 1
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)

    def test_pending_prefetches_counter(self):
        cache = small_cache()
        for b in range(5):
            cache.insert(b, prefetch=True)
        assert cache.pending_prefetches == 5
        cache.lookup(0)
        assert cache.pending_prefetches == 4


class TestPollution:
    def test_pollute_fills_cache(self):
        cache = small_cache()
        cache.pollute(cache.params.num_lines * 2)
        assert cache.occupancy > cache.params.num_lines * 0.5

    def test_pollute_evicts_resident_lines(self):
        cache = small_cache(size=256, assoc=2)
        cache.insert(1)
        cache.pollute(64)
        assert not cache.contains(1)

    def test_pollution_tags_never_collide_with_real_blocks(self):
        cache = small_cache()
        cache.pollute(100)
        for block in cache.resident_blocks():
            assert block >= (1 << 48)  # beyond any 48-bit VA block

    def test_bulk_pollute_zero_is_noop(self):
        cache = small_cache()
        cache.insert(1)
        cache.bulk_pollute(0)
        assert cache.contains(1)

    def test_bulk_pollute_full_thrash(self):
        cache = small_cache()
        for b in range(cache.params.num_lines):
            cache.insert(b)
        rng = np.random.default_rng(1)
        cache.bulk_pollute(cache.params.num_lines * 40, rng)
        survivors = [b for b in range(cache.params.num_lines)
                     if cache.contains(b)]
        assert len(survivors) < cache.params.num_lines * 0.02

    def test_bulk_pollute_partial_survival(self):
        cache = small_cache(size=32 * KB, assoc=8)
        n = cache.params.num_lines
        for b in range(n):
            cache.insert(b)
        rng = np.random.default_rng(2)
        cache.bulk_pollute(n // 2, rng)
        survivors = sum(1 for b in range(n) if cache.contains(b))
        # Expected survival with lambda = assoc/2: well above zero, below all.
        assert 0.3 * n < survivors < 0.95 * n

    def test_bulk_pollute_statistically_matches_exact(self):
        """bulk_pollute is the O(sets) equivalent of exact pollution."""
        rng = np.random.default_rng(3)
        survivals = []
        for mode in ("exact", "bulk"):
            cache = small_cache(size=16 * KB, assoc=8)
            n = cache.params.num_lines
            for b in range(n):
                cache.insert(b)
            if mode == "exact":
                cache.pollute(n)
            else:
                cache.bulk_pollute(n, rng)
            survivals.append(sum(1 for b in range(n) if cache.contains(b)))
        exact, bulk = survivals
        assert abs(exact - bulk) < 0.25 * cache.params.num_lines


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = small_cache(size=1 * KB, assoc=2)
        for b in blocks:
            cache.insert(b)
        assert cache.occupancy <= cache.params.num_lines
        for lru in cache._sets:
            assert len(lru) <= cache.assoc
            assert len(set(lru)) == len(lru)  # no duplicate tags in a set

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=200))
    def test_most_recent_insert_always_resident(self, blocks):
        cache = small_cache(size=1 * KB, assoc=2)
        for b in blocks:
            cache.insert(b)
            assert cache.contains(b)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=200)),
                    max_size=300))
    def test_pf_pending_subset_of_resident(self, ops):
        cache = small_cache(size=1 * KB, assoc=2)
        for is_insert, block in ops:
            if is_insert:
                cache.insert(block, prefetch=(block % 3 == 0))
            else:
                cache.lookup(block)
        resident = cache.resident_blocks()
        assert cache._pf_pending <= resident
