"""Tests for the DRAM latency/bandwidth/traffic model."""

import pytest

from repro.sim.memory import MainMemory
from repro.sim.params import MemoryParams
from repro.sim.stats import MemoryTraffic
from repro.units import LINE_SIZE


@pytest.fixture
def memory():
    return MainMemory(MemoryParams(), MemoryTraffic())


class TestDemandPath:
    def test_demand_latency(self, memory):
        assert memory.demand_fetch(instruction=True) == MemoryParams().latency

    def test_demand_traffic_classes(self, memory):
        memory.demand_fetch(instruction=True)
        memory.demand_fetch(instruction=False)
        memory.demand_fetch(instruction=False)
        assert memory.traffic.demand_inst == LINE_SIZE
        assert memory.traffic.demand_data == 2 * LINE_SIZE

    def test_contention_scales_latency(self, memory):
        base = memory.demand_fetch(instruction=True)
        memory.contention = 1.5
        assert memory.demand_fetch(instruction=True) == pytest.approx(base * 1.5)


class TestPrefetchPath:
    def test_prefetch_uses_row_hit_latency(self, memory):
        assert memory.prefetch_fetch() == MemoryParams().row_hit_latency

    def test_prefetch_charged_overpredicted_until_credited(self, memory):
        memory.prefetch_fetch()
        assert memory.traffic.prefetch_overpredicted == LINE_SIZE
        assert memory.traffic.prefetch_useful == 0
        memory.credit_useful_prefetch()
        assert memory.traffic.prefetch_overpredicted == 0
        assert memory.traffic.prefetch_useful == LINE_SIZE


class TestMetadataPath:
    def test_metadata_traffic(self, memory):
        memory.metadata_write(54)
        memory.metadata_read(1024)
        assert memory.traffic.metadata_record == 54
        assert memory.traffic.metadata_replay == 1024


class TestTrafficAccounting:
    def test_total_and_overhead(self, memory):
        memory.demand_fetch(instruction=True)
        memory.prefetch_fetch()
        memory.prefetch_fetch()
        memory.credit_useful_prefetch()
        memory.metadata_write(100)
        t = memory.traffic
        assert t.total == 2 * LINE_SIZE + LINE_SIZE + 100
        # Overhead = unused prefetch + metadata.
        assert t.overhead == LINE_SIZE + 100
        assert t.baseline_equivalent == 2 * LINE_SIZE

    def test_overhead_fraction(self, memory):
        memory.demand_fetch(instruction=True)
        memory.prefetch_fetch()
        frac = memory.traffic.overhead_fraction()
        assert frac == pytest.approx(1.0)

    def test_snapshot_delta(self, memory):
        memory.demand_fetch(instruction=True)
        snap = memory.traffic.snapshot()
        memory.demand_fetch(instruction=True)
        delta = memory.traffic.delta(snap)
        assert delta.demand_inst == LINE_SIZE


class TestStreaming:
    def test_stream_completion_linear_in_lines(self, memory):
        t1 = memory.stream_completion_cycles(100)
        t2 = memory.stream_completion_cycles(200)
        per_line = memory.cycles_per_line
        assert t2 - t1 == pytest.approx(100 * per_line)

    def test_stream_zero_lines(self, memory):
        assert memory.stream_completion_cycles(0) == 0.0

    def test_cycles_per_line_matches_bandwidth(self, memory):
        assert memory.cycles_per_line == pytest.approx(
            LINE_SIZE / MemoryParams().bytes_per_cycle)
