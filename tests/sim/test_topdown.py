"""Tests for Top-Down cycle accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.topdown import TopDownBreakdown, mean_breakdown


def sample() -> TopDownBreakdown:
    return TopDownBreakdown(retiring=100, fetch_latency=50, fetch_bandwidth=10,
                            bad_speculation=20, backend_bound=20)


class TestTopDownBreakdown:
    def test_total(self):
        assert sample().total_cycles == 200

    def test_frontend_bound(self):
        assert sample().frontend_bound == 60

    def test_stall_cycles(self):
        assert sample().stall_cycles == 100

    def test_cpi(self):
        assert sample().cpi(100) == 2.0

    def test_cpi_zero_instructions(self):
        assert sample().cpi(0) == 0.0

    def test_fraction(self):
        assert sample().fraction("retiring") == pytest.approx(0.5)

    def test_fraction_of_empty(self):
        assert TopDownBreakdown().fraction("retiring") == 0.0

    def test_cpi_stack_sums_to_cpi(self):
        td = sample()
        stack = td.cpi_stack(100)
        assert sum(stack.values()) == pytest.approx(td.cpi(100))
        assert set(stack) == {"retiring", "fetch_latency", "fetch_bandwidth",
                              "bad_speculation", "backend_bound"}

    def test_add_sub_roundtrip(self):
        a, b = sample(), sample()
        assert (a + b - b).total_cycles == pytest.approx(a.total_cycles)

    def test_scaled(self):
        assert sample().scaled(0.5).total_cycles == pytest.approx(100)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=5,
                    max_size=5))
    def test_total_is_sum_of_categories(self, values):
        td = TopDownBreakdown(*values)
        assert td.total_cycles == pytest.approx(sum(values))


class TestMeanBreakdown:
    def test_empty(self):
        assert mean_breakdown([]).total_cycles == 0.0

    def test_mean_of_identical(self):
        m = mean_breakdown([sample(), sample()])
        assert m.total_cycles == pytest.approx(200)

    def test_mean_averages(self):
        m = mean_breakdown([TopDownBreakdown(retiring=10),
                            TopDownBreakdown(retiring=30)])
        assert m.retiring == pytest.approx(20)
