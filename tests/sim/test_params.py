"""Tests for machine parameter definitions (Table 1)."""

import pytest

from repro.errors import ConfigError, ConfigurationError
from repro.sim.params import (
    BROADWELL,
    SKYLAKE,
    CacheParams,
    CoreParams,
    JukeboxParams,
    MODE_CHARACTERIZATION,
    MODE_EVALUATION,
    MemoryParams,
    TLBParams,
    broadwell,
    core_params_for_mode,
    skylake,
)
from repro.units import KB, MB


class TestCacheParams:
    def test_num_sets(self):
        c = CacheParams("L1I", size=32 * KB, assoc=8, latency=4)
        assert c.num_sets == 64
        assert c.num_lines == 512

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheParams("X", size=1000, assoc=8, latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheParams("X", size=3 * 64 * 8, assoc=8, latency=1)


class TestTLBParams:
    def test_num_sets(self):
        t = TLBParams("ITLB", entries=128, assoc=8)
        assert t.num_sets == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TLBParams("X", entries=100, assoc=8)


class TestJukeboxParams:
    def test_table1_defaults(self):
        jb = JukeboxParams()
        assert jb.crrb_entries == 16
        assert jb.region_size == 1 * KB
        assert jb.metadata_bytes == 16 * KB
        assert jb.lines_per_region == 16

    def test_rejects_tiny_region(self):
        with pytest.raises(ConfigurationError):
            JukeboxParams(region_size=32)

    def test_rejects_non_power_of_two_region(self):
        with pytest.raises(ConfigurationError):
            JukeboxParams(region_size=1500)

    def test_rejects_empty_crrb(self):
        with pytest.raises(ConfigurationError):
            JukeboxParams(crrb_entries=0)


class TestSkylakeTable1:
    """Table 1 of the paper, literally."""

    def test_l1i(self):
        assert SKYLAKE.l1i.size == 32 * KB
        assert SKYLAKE.l1i.assoc == 8
        assert SKYLAKE.l1i.latency == 4

    def test_l2_is_1mb(self):
        assert SKYLAKE.l2.size == 1 * MB
        assert SKYLAKE.l2.assoc == 8

    def test_llc_is_8mb_16way(self):
        assert SKYLAKE.llc.size == 8 * MB
        assert SKYLAKE.llc.assoc == 16

    def test_core(self):
        assert SKYLAKE.core.freq_ghz == 2.6
        assert SKYLAKE.core.fetch_bytes_per_cycle == 16
        assert SKYLAKE.core.rob_entries == 224
        assert SKYLAKE.core.btb_entries == 8192

    def test_jukebox_defaults(self):
        assert SKYLAKE.jukebox.metadata_bytes == 16 * KB


class TestBroadwell:
    def test_small_l2(self):
        assert BROADWELL.l2.size == 256 * KB

    def test_larger_metadata_store(self):
        """Sec. 5.6: Broadwell needs 32KB metadata per phase."""
        assert BROADWELL.jukebox.metadata_bytes == 32 * KB

    def test_default_mode_is_characterization(self):
        char = core_params_for_mode(MODE_CHARACTERIZATION, freq_ghz=2.4)
        assert BROADWELL.core.inst_stall_onchip == char.inst_stall_onchip


class TestModes:
    def test_modes_differ(self):
        ev = core_params_for_mode(MODE_EVALUATION)
        ch = core_params_for_mode(MODE_CHARACTERIZATION)
        assert ev.inst_stall_onchip < ch.inst_stall_onchip
        assert ev.inst_stall_dram < ch.inst_stall_dram

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            core_params_for_mode("bogus")

    def test_skylake_accepts_mode(self):
        m = skylake(mode=MODE_CHARACTERIZATION)
        assert m.core.inst_stall_onchip == core_params_for_mode(
            MODE_CHARACTERIZATION).inst_stall_onchip

    def test_broadwell_evaluation_mode(self):
        m = broadwell(mode=MODE_EVALUATION)
        assert m.core.inst_stall_onchip == core_params_for_mode(
            MODE_EVALUATION).inst_stall_onchip


class TestMachineHelpers:
    def test_with_jukebox_replaces_only_jukebox(self):
        jb = JukeboxParams(metadata_bytes=8 * KB)
        m = SKYLAKE.with_jukebox(jb)
        assert m.jukebox.metadata_bytes == 8 * KB
        assert m.l2.size == SKYLAKE.l2.size
        assert SKYLAKE.jukebox.metadata_bytes == 16 * KB  # original untouched

    def test_miss_latency_ladder_monotone(self):
        lats = [SKYLAKE.miss_latency_to(level)
                for level in ("l1", "l2", "llc", "memory")]
        assert lats == sorted(lats)
        assert lats[0] == 0

    def test_miss_latency_unknown_level(self):
        with pytest.raises(ConfigurationError):
            SKYLAKE.miss_latency_to("l9")


class TestValidationMessages:
    """Malformed params raise ``ConfigError`` with actionable messages.

    ``ConfigError`` is the short alias for ``ConfigurationError`` exported
    alongside the contract layer; both names must catch the same failures.
    """

    def test_alias_is_configuration_error(self):
        assert ConfigError is ConfigurationError

    def test_cache_zero_assoc(self):
        with pytest.raises(ConfigError, match="associativity must be >= 1"):
            CacheParams("L1I", size=32 * KB, assoc=0, latency=4)

    def test_cache_non_power_of_two_line_size(self):
        with pytest.raises(ConfigError, match="power of two"):
            CacheParams("L1I", size=48 * 48 * 8, assoc=8, latency=4,
                        line_size=48)

    def test_cache_negative_latency(self):
        with pytest.raises(ConfigError, match="latency must be >= 0"):
            CacheParams("L2", size=1 * MB, assoc=8, latency=-1)

    def test_cache_zero_mshrs(self):
        with pytest.raises(ConfigError, match="MSHR count must be > 0"):
            CacheParams("LLC", size=8 * MB, assoc=16, latency=36, mshrs=0)

    def test_cache_message_names_the_level(self):
        with pytest.raises(ConfigError, match="LLC"):
            CacheParams("LLC", size=8 * MB, assoc=16, latency=36, mshrs=0)

    def test_tlb_zero_assoc(self):
        with pytest.raises(ConfigError, match="associativity must be >= 1"):
            TLBParams("ITLB", entries=128, assoc=0)

    def test_tlb_negative_walk_latency(self):
        with pytest.raises(ConfigError, match="page-walk latency"):
            TLBParams("DTLB", entries=64, assoc=4, walk_latency=-5)

    def test_memory_zero_latency(self):
        with pytest.raises(ConfigError, match="latencies must be positive"):
            MemoryParams(latency=0)

    def test_memory_row_hit_slower_than_row_miss(self):
        with pytest.raises(ConfigError, match="cannot exceed"):
            MemoryParams(latency=100, row_hit_latency=150)

    def test_memory_zero_bandwidth(self):
        with pytest.raises(ConfigError, match="bandwidth must be positive"):
            MemoryParams(bytes_per_cycle=0.0)

    def test_core_zero_issue_width(self):
        with pytest.raises(ConfigError, match="widths must be >= 1"):
            CoreParams(issue_width=0)

    def test_core_fraction_out_of_range(self):
        with pytest.raises(ConfigError, match=r"lie in \[0, 1\]"):
            CoreParams(data_overlap=1.3)

    def test_core_negative_fraction(self):
        with pytest.raises(ConfigError, match="inst_stall_dram"):
            CoreParams(inst_stall_dram=-0.1)
