"""Tests for the memory hierarchy: demand paths, prefetch fills, merges."""

import pytest

from repro.sim.hierarchy import FillQueue, MemoryHierarchy
from repro.sim.params import skylake
from repro.units import LINE_SHIFT, LINE_SIZE

ADDR = 0x5555_0000_0000


@pytest.fixture
def hier():
    return MemoryHierarchy(skylake())


class TestFillQueue:
    def test_drain_respects_time(self):
        q = FillQueue()
        q.schedule([(10.0, 1), (20.0, 2), (30.0, 3)])
        assert q.drain(15.0) == [1]
        assert q.drain(25.0) == [2]
        assert q.pending == 1

    def test_inflight_tracking(self):
        q = FillQueue()
        q.schedule([(10.0, 1)])
        assert q.completion_of(1) == 10.0
        q.take(1)
        assert q.completion_of(1) is None

    def test_duplicate_block_keeps_earliest(self):
        q = FillQueue()
        q.schedule([(10.0, 1)])
        q.schedule([(5.0, 1)])
        assert q.completion_of(1) == 5.0
        q.schedule([(50.0, 1)])
        assert q.completion_of(1) == 5.0

    def test_clear(self):
        q = FillQueue()
        q.schedule([(10.0, 1)])
        q.clear()
        assert q.pending == 0
        assert q.completion_of(1) is None


class TestInstructionPath:
    def test_cold_fetch_comes_from_memory(self, hier):
        stall, level = hier.access_instr(ADDR, 0.0)
        assert level == "memory"
        assert stall > 0
        assert hier.stats.l1i.inst_misses == 1
        assert hier.stats.l2.inst_misses == 1
        assert hier.stats.llc.inst_misses == 1
        assert hier.stats.memory.demand_inst == LINE_SIZE

    def test_second_fetch_hits_l1(self, hier):
        hier.access_instr(ADDR, 0.0)
        stall, level = hier.access_instr(ADDR, 100.0)
        assert level == "l1"
        assert stall == 0.0

    def test_l2_hit_after_l1_eviction(self, hier):
        hier.access_instr(ADDR, 0.0)
        # Evict from the 512-line L1-I by touching many same-set blocks.
        n_sets = hier.l1i.num_sets
        for i in range(1, 12):
            hier.access_instr(ADDR + i * n_sets * LINE_SIZE, 0.0)
        stall, level = hier.access_instr(ADDR, 0.0)
        assert level == "l2"

    def test_fetch_fills_all_levels(self, hier):
        hier.access_instr(ADDR, 0.0)
        block = ADDR >> LINE_SHIFT
        assert hier.l1i.contains(block)
        assert hier.l2.contains(block)
        assert hier.llc.contains(block)

    def test_itlb_miss_charged_once(self, hier):
        hier.access_instr(ADDR, 0.0)
        assert hier.stats.itlb.inst_misses == 1
        hier.access_instr(ADDR + LINE_SIZE, 0.0)
        assert hier.stats.itlb.inst_misses == 1
        assert hier.stats.itlb.inst_hits == 1

    def test_flush_forgets_everything(self, hier):
        hier.access_instr(ADDR, 0.0)
        hier.flush_caches()
        stall, level = hier.access_instr(ADDR, 0.0)
        assert level == "memory"


class TestDataPath:
    def test_cold_load(self, hier):
        stall, level = hier.access_data(0x7000_0000, write=False, cycle=0.0)
        assert level == "memory"
        assert stall > 0
        assert hier.stats.memory.demand_data == LINE_SIZE

    def test_store_miss_not_charged(self, hier):
        hier.access_data(0x7000_0000, write=False, cycle=0.0)  # warm DTLB
        stall, level = hier.access_data(0x7000_0100, write=True, cycle=0.0)
        assert stall == 0.0  # stores retire through the store buffer
        assert level == "memory"  # still allocates and counts traffic

    def test_next_line_prefetch_from_l2(self, hier):
        addr = 0x7000_0000
        hier.access_data(addr, False, 0.0)
        hier.access_data(addr + LINE_SIZE, False, 0.0)  # fills L2 for +1 line
        # Evict both from tiny L1D view by touching conflicting blocks.
        n_sets = hier.l1d.num_sets
        for i in range(2, 12):
            hier.access_data(addr + i * n_sets * LINE_SIZE, False, 0.0)
        # Re-access first: the next-line (+1) should be pulled into L1D.
        hier.access_data(addr, False, 0.0)
        assert hier.l1d.contains((addr + LINE_SIZE) >> LINE_SHIFT)

    def test_data_does_not_touch_itlb(self, hier):
        hier.access_data(0x7000_0000, False, 0.0)
        assert hier.stats.itlb.inst_misses == 0
        assert hier.stats.dtlb.data_misses == 1


class TestPerfectICache:
    def test_blocks_accumulate_and_survive_flush(self, hier):
        hier.perfect_icache = True
        _, level1 = hier.access_instr(ADDR, 0.0)
        assert level1 == "memory"  # first-ever touch
        hier.flush_caches()
        stall, level2 = hier.access_instr(ADDR, 0.0)
        assert level2 == "perfect"
        # Only the I-TLB walk may be charged; no cache-miss stall.
        itlb_walk = hier.machine.itlb.walk_latency
        assert stall <= itlb_walk

    def test_perfect_disabled_by_default(self, hier):
        assert not hier.perfect_icache


class TestL2PrefetchFills:
    def test_completed_fill_gives_l2_prefetch_hit(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(10.0, block)])
        stall, level = hier.access_instr(ADDR, 100.0)
        assert level == "l2"
        assert hier.stats.l2.inst_prefetch_hits == 1
        assert hier.stats.memory.prefetch_useful == LINE_SIZE
        assert hier.stats.memory.prefetch_overpredicted == 0

    def test_fill_also_lands_in_llc(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(10.0, block)])
        hier.access_instr(ADDR + 0x10_0000, 100.0)  # trigger drain
        assert hier.llc.contains(block)

    def test_inflight_merge_is_late_coverage(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(1000.0, block)])
        stall, level = hier.access_instr(ADDR, 100.0)
        assert level == "prefetch_late"
        assert stall > 0
        assert hier.stats.l2.inst_prefetch_hits == 1

    def test_merge_capped_at_demand_equivalent(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(10_000_000.0, block)])
        stall_merge, _ = hier.access_instr(ADDR, 0.0)
        fresh = MemoryHierarchy(skylake())
        stall_demand, _ = fresh.access_instr(ADDR, 0.0)
        # A merge is never worse than a demand miss plus the L2 hit hop.
        assert stall_merge <= stall_demand + fresh.machine.l2.latency

    def test_unused_fill_counts_overpredicted_at_finish(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(10.0, block)])
        hier.finish_invocation()
        assert hier.unused_prefetches_resident() >= 1
        assert hier.stats.memory.prefetch_overpredicted == LINE_SIZE

    def test_record_hook_fires_on_prefetched_first_use(self, hier):
        calls = []

        class Hook:
            def on_fetch(self, addr, cycle):
                pass

            def on_l2_inst_miss(self, addr, cycle):
                calls.append(addr)

        hier.record_hook = Hook()
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(10.0, block)])
        hier.access_instr(ADDR, 100.0)
        # The first use of a prefetched line is recorded like a miss, so
        # Jukebox metadata stays stable across covered invocations.
        assert ADDR in calls


class TestL1IPrefetchFills:
    def test_timely_fill_hits_l1(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l1i_prefetches([(10.0, block)])
        stall, level = hier.access_instr(ADDR, 100.0)
        assert level == "l1"
        assert hier.stats.l1i.inst_prefetch_hits == 1

    def test_late_fill_merges(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l1i_prefetches([(1000.0, block)])
        stall, level = hier.access_instr(ADDR, 100.0)
        assert level == "l1_prefetch_late"

    def test_l2_resident_line_preempts_l1i_merge(self, hier):
        hier.access_instr(ADDR, 0.0)        # brings into L2
        hier.l1i.flush()                     # L1I no longer holds it
        block = ADDR >> LINE_SHIFT
        hier.schedule_l1i_prefetches([(1_000_000.0, block)])
        stall, level = hier.access_instr(ADDR, 10.0)
        assert level == "l2"

    def test_earlier_jukebox_fill_preempts_l1i_merge(self, hier):
        block = ADDR >> LINE_SHIFT
        hier.schedule_l2_prefetches([(50.0, block)])
        hier.schedule_l1i_prefetches([(500.0, block)])
        stall, level = hier.access_instr(ADDR, 10.0)
        assert level == "prefetch_late"


class TestPrefetchSourceLatency:
    def test_from_l2(self, hier):
        hier.access_instr(ADDR, 0.0)
        lat, from_dram = hier.prefetch_source_latency(ADDR >> LINE_SHIFT)
        assert not from_dram
        assert lat == hier.machine.l2.latency

    def test_from_dram_installs_nothing(self, hier):
        block = (ADDR + 0x100000) >> LINE_SHIFT
        lat, from_dram = hier.prefetch_source_latency(block)
        assert from_dram
        assert not hier.l2.contains(block)
        assert not hier.llc.contains(block)
        assert hier.stats.memory.prefetch_overpredicted == LINE_SIZE
