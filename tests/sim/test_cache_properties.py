"""Property-based tests of ``sim.cache`` LRU invariants.

Pure-stdlib property testing: a seeded ``random.Random`` drives long
random operation sequences against :class:`SetAssocCache` (and the
L1-I/L2 pair inside a :class:`MemoryHierarchy`), asserting structural
invariants after every step.  Failures print the seed so a shrinking
counterexample can be replayed by hand.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import CacheParams
from repro.units import KB

SEEDS = (0, 1, 2, 3, 4)
OPS_PER_RUN = 800


def tiny_cache() -> SetAssocCache:
    # 4 sets x 4 ways of 64B lines: collisions happen within a few ops.
    return SetAssocCache(CacheParams("T", size=1 * KB, assoc=4, latency=1,
                                     mshrs=4))


def random_block(rng: random.Random) -> int:
    # A few times the cache's capacity, so hits and misses interleave.
    return rng.randrange(64)


class TestSetAssocCacheProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_ops_preserve_invariants(self, seed):
        """Occupancy never exceeds ways x sets; no set holds duplicates;
        the prefetch-pending set only names resident blocks."""
        rng = random.Random(seed)
        cache = tiny_cache()
        capacity = cache.num_sets * cache.assoc
        for step in range(OPS_PER_RUN):
            op = rng.randrange(5)
            block = random_block(rng)
            if op == 0:
                cache.lookup(block)
            elif op == 1:
                cache.insert(block, prefetch=rng.random() < 0.3)
            elif op == 2:
                cache.invalidate(block)
            elif op == 3 and rng.random() < 0.05:
                cache.flush()
            elif op == 4 and rng.random() < 0.1:
                cache.invalidate_unused_prefetches()
            cache.check_invariants(deep=True)
            assert cache.occupancy <= capacity, f"seed={seed} step={step}"
            for lru in cache._sets:
                assert len(lru) <= cache.assoc, f"seed={seed} step={step}"
                assert len(lru) == len(set(lru)), f"seed={seed} step={step}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_a_hit_never_evicts(self, seed):
        """Looking up (or re-inserting) a resident block never changes the
        resident set -- only a miss insert may evict."""
        rng = random.Random(seed)
        cache = tiny_cache()
        for _ in range(OPS_PER_RUN // 2):
            cache.insert(random_block(rng), prefetch=rng.random() < 0.3)
        for step in range(OPS_PER_RUN // 2):
            resident = cache.resident_blocks()
            if not resident:
                break
            block = rng.choice(sorted(resident))
            if rng.random() < 0.5:
                hit, _ = cache.lookup(block)
                assert hit
                assert cache.resident_blocks() == resident, (
                    f"seed={seed} step={step}: a hit changed residency")
            else:
                evicted, _ = cache.insert(block)
                assert evicted is None, (
                    f"seed={seed} step={step}: re-insert evicted {evicted}")
                assert cache.resident_blocks() == resident

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lru_victim_is_least_recently_used(self, seed):
        """Filling one set then touching all-but-one block makes that
        untouched block the next victim."""
        rng = random.Random(seed)
        cache = tiny_cache()
        set_index = rng.randrange(cache.num_sets)
        blocks = [set_index + i * cache.num_sets
                  for i in range(cache.assoc)]
        for block in blocks:
            cache.insert(block)
        victim = rng.choice(blocks)
        for block in blocks:
            if block != victim:
                cache.lookup(block)
        newcomer = set_index + cache.assoc * cache.num_sets
        evicted, _ = cache.insert(newcomer)
        assert evicted == victim, f"seed={seed}"


class TestHierarchyInclusionProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fetched_block_resident_in_l1i_and_filled_into_l2(
            self, seed, tiny_machine):
        """After ``access_instr``, the fetched block is always resident in
        L1-I; an L1-I miss also installs the block into L2 (or it was
        already there) -- the cross-level consistency the MPKI accounting
        relies on."""
        rng = random.Random(seed)
        hierarchy = MemoryHierarchy(tiny_machine)
        line = tiny_machine.l1i.line_size
        cycle = 0.0
        for step in range(300):
            addr = rng.randrange(512) * line
            block = addr // line
            was_in_l1i = hierarchy.l1i.contains(block)
            hierarchy.access_instr(addr, cycle)
            cycle += 1.0
            assert hierarchy.l1i.contains(block), (
                f"seed={seed} step={step}: fetched block not in L1-I")
            if not was_in_l1i:
                assert hierarchy.l2.contains(block), (
                    f"seed={seed} step={step}: L1-I miss did not fill L2")
            hierarchy.l1i.check_invariants(deep=True)
            hierarchy.l2.check_invariants(deep=True)
