"""The stable ``repro.sim.simulate()`` facade and the backend plumbing.

The API-redesign contract: ``simulate()`` is the single public entry point
for executing a trace, ``Simulator(backend=...)`` carries warm state, and
the historical ``LukewarmCore`` name survives only as a deprecated shim.
"""

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments.common import RunConfig
from repro.sim import BACKENDS, simulate
from repro.sim.core import LukewarmCore, Simulator
from repro.sim.params import skylake
from repro.workloads import TraceBuilder


def small_trace():
    b = TraceBuilder()
    b.extend_walk(range(0, 64 * 40, 64), insts_per_block=10)
    b.load(1 << 20, count=4)
    b.store((1 << 20) + 64)
    b.branch_site(0x400100, executions=30, taken_prob=0.7)
    return b.build()


class TestSimulateFacade:
    def test_machine_only_builds_cold_simulator(self):
        result = simulate(small_trace(), skylake())
        assert result.instructions > 0
        assert result.cycles > 0

    def test_explicit_backend_accepted(self):
        trace = small_trace()
        cols = simulate(trace, skylake(), backend="columnar")
        scal = simulate(trace, skylake(), backend="scalar")
        assert cols.cycles == scal.cycles

    def test_sim_reuse_keeps_warm_state(self):
        trace = small_trace()
        sim = Simulator(skylake())
        first = simulate(trace, sim=sim)
        second = simulate(trace, sim=sim)
        assert second.cycles < first.cycles  # warm caches

    def test_sim_plus_machine_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            simulate(small_trace(), skylake(), sim=Simulator(skylake()))

    def test_sim_plus_conflicting_backend_rejected(self):
        sim = Simulator(skylake(), backend="columnar")
        with pytest.raises(ConfigurationError, match="conflicts"):
            simulate(small_trace(), sim=sim, backend="scalar")

    def test_sim_plus_matching_backend_accepted(self):
        sim = Simulator(skylake(), backend="scalar")
        result = simulate(small_trace(), sim=sim, backend="scalar")
        assert result.instructions > 0

    def test_neither_machine_nor_sim_rejected(self):
        with pytest.raises(ConfigurationError, match="machine= or sim="):
            simulate(small_trace())

    def test_exported_from_package_root(self):
        assert repro.simulate is simulate
        assert repro.Simulator is Simulator
        assert repro.TraceBuilder is TraceBuilder


class TestBackendSelection:
    def test_default_backend_is_columnar(self):
        assert Simulator(skylake()).backend == "columnar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown simulation"):
            Simulator(skylake(), backend="simd")

    def test_backends_registry(self):
        assert BACKENDS == ("columnar", "scalar")

    def test_runconfig_carries_backend(self):
        assert RunConfig().backend == "columnar"
        assert RunConfig(backend="scalar").backend == "scalar"

    def test_runconfig_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown simulation"):
            RunConfig(backend="simd")


class TestLukewarmCoreShim:
    def test_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="LukewarmCore"):
            LukewarmCore(skylake())

    def test_shim_pins_scalar_backend(self):
        with pytest.warns(DeprecationWarning):
            core = LukewarmCore(skylake())
        assert core.backend == "scalar"

    def test_shim_is_a_simulator(self):
        with pytest.warns(DeprecationWarning):
            core = LukewarmCore(skylake())
        assert isinstance(core, Simulator)
        trace = small_trace()
        assert core.run(trace).cycles == simulate(trace, skylake()).cycles

    def test_still_exported_for_compatibility(self):
        assert "LukewarmCore" in repro.__all__
