"""Metamorphic battery: directional properties that must hold per seed.

* doubling the node count at fixed total load never worsens region p99
  (within one histogram-bin tolerance);
* Jukebox-on capacity is >= Jukebox-off on *every* seed -- in this model
  it is a deterministic consequence of scaling service times down while
  the arrival streams (and therefore admission/eviction decisions) stay
  fixed.
"""

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.region import simulate_region

SEEDS = (1, 7, 23, 101)

#: One log-spaced histogram bin is ~1.8%; 5% also absorbs the service-
#: draw reshuffle that re-seeding twice as many nodes implies.
P99_TOLERANCE = 1.05


@pytest.mark.parametrize("seed", SEEDS)
def test_doubling_nodes_never_worsens_p99(seed):
    base = FleetConfig(nodes=3, instances=240, functions=12,
                       duration_ms=10_000.0, mean_iat_ms=300.0,
                       balancer="least-loaded", seed=seed)
    doubled = base.replace(nodes=6)
    p99_base = simulate_region(base)["region"]["p99_latency_ms"]
    p99_doubled = simulate_region(doubled)["region"]["p99_latency_ms"]
    assert p99_doubled <= p99_base * P99_TOLERANCE, (seed, p99_base,
                                                     p99_doubled)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arrival", ["poisson", "bursty"])
def test_jukebox_capacity_dominates_baseline(seed, arrival):
    cfg = FleetConfig(nodes=2, instances=80, functions=16,
                      duration_ms=10_000.0, mean_iat_ms=400.0,
                      arrival=arrival, seed=seed)
    base = simulate_region(cfg)["region"]
    jb = simulate_region(cfg.replace(jukebox=True))["region"]
    # Arrival streams are independent of service times, so the served
    # population is identical; only service durations shrink.
    assert jb["arrivals"] == base["arrivals"]
    assert jb["invocations"] == base["invocations"]
    assert jb["busy_ms"] < base["busy_ms"]
    assert jb["capacity_inv_s"] >= base["capacity_inv_s"]


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_jukebox_never_worsens_p99(seed):
    cfg = FleetConfig(nodes=2, instances=80, functions=16,
                      duration_ms=10_000.0, mean_iat_ms=400.0, seed=seed)
    base = simulate_region(cfg)["region"]
    jb = simulate_region(cfg.replace(jukebox=True))["region"]
    assert jb["p99_latency_ms"] <= base["p99_latency_ms"] * P99_TOLERANCE
