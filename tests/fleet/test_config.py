"""FleetConfig validation and shard-partition properties."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.fleet.config import (
    BALANCER_NAMES,
    KEEPALIVE_NAMES,
    FleetConfig,
    shard_bounds,
    shard_node_ids,
)


class TestFleetConfigValidation:
    def test_defaults_are_valid(self):
        cfg = FleetConfig()
        assert cfg.total_cores == cfg.nodes * cfg.cores_per_node

    @pytest.mark.parametrize("field", [
        "nodes", "cores_per_node", "memory_gb_per_node", "functions",
        "instances",
    ])
    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_nonpositive_counts(self, field, value):
        with pytest.raises(ConfigurationError):
            FleetConfig(**{field: value})

    @pytest.mark.parametrize("field", [
        "service_time_ms", "duration_ms", "mean_iat_ms", "ttl_minutes",
    ])
    @pytest.mark.parametrize("value",
                             [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonfinite_or_nonpositive_times(self, field, value):
        with pytest.raises(ConfigurationError):
            FleetConfig(**{field: value})

    @pytest.mark.parametrize("value", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_cold_start_penalty(self, value):
        with pytest.raises(ConfigurationError):
            FleetConfig(cold_start_penalty_ms=value)

    def test_zero_penalty_allowed(self):
        assert FleetConfig(cold_start_penalty_ms=0.0).cold_start_penalty_ms \
            == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects_bad_zipf_alpha(self, value):
        with pytest.raises(ConfigurationError):
            FleetConfig(zipf_alpha=value)

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(arrival="weibull")
        with pytest.raises(ConfigurationError):
            FleetConfig(balancer="power-of-two")
        with pytest.raises(ConfigurationError):
            FleetConfig(keepalive="lru")

    @pytest.mark.parametrize("balancer", BALANCER_NAMES)
    @pytest.mark.parametrize("keepalive", KEEPALIVE_NAMES)
    def test_all_policy_names_accepted(self, balancer, keepalive):
        cfg = FleetConfig(balancer=balancer, keepalive=keepalive)
        assert cfg.balancer == balancer

    def test_replace_revalidates(self):
        cfg = FleetConfig()
        with pytest.raises(ConfigurationError):
            cfg.replace(nodes=0)

    def test_abbrev_distinguishes_jukebox(self):
        base = FleetConfig()
        assert base.abbrev != base.replace(jukebox=True).abbrev
        assert base.abbrev.startswith("fleet-")


class TestShardBounds:
    def test_partitions_every_node_exactly_once(self):
        rng = random.Random(42)
        for _ in range(200):
            nodes = rng.randrange(1, 64)
            shards = rng.randrange(1, nodes + 1)
            covered = []
            for shard in range(shards):
                covered.extend(shard_node_ids(nodes, shard, shards))
            assert covered == list(range(nodes)), (nodes, shards)

    def test_near_equal_split(self):
        rng = random.Random(7)
        for _ in range(100):
            nodes = rng.randrange(1, 64)
            shards = rng.randrange(1, nodes + 1)
            sizes = [len(shard_node_ids(nodes, shard, shards))
                     for shard in range(shards)]
            assert max(sizes) - min(sizes) <= 1

    def test_rejects_invalid_sharding(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 0, 0)
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 4, 4)
        with pytest.raises(ConfigurationError):
            shard_bounds(4, -1, 4)
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 0, 5)
