"""Property battery for :mod:`repro.fleet.result` merging.

Hand-rolled seeded-random loops (no third-party property-testing
dependency): :class:`LatencyHistogram` merge must be associative and
commutative *exactly* -- bin counts are integers, so there is no
tolerance -- and :func:`aggregate_nodes` must report the same
percentiles, latency pairs, and integer tallies whatever order (or
shard grouping) the node results arrive in.

The floating-point sums (``busy_ms``, ``capacity_inv_s``) are
deliberately *not* asserted permutation-invariant: float addition is
not associative, and the fleet pipeline never reorders the node list
it sums over (shards are sorted before aggregation).  The invariants
the sharded/SIGKILL differential battery relies on are the integer
and histogram-derived fields, pinned here.
"""

import random

import pytest

from repro.fleet.result import LatencyHistogram, aggregate_nodes

SEEDS = (3, 17, 2022)


def random_histogram(rng: random.Random, n: int) -> LatencyHistogram:
    hist = LatencyHistogram()
    for _ in range(n):
        # Span sub-bin-0 clamping through multi-second latencies.
        hist.observe(rng.lognormvariate(1.5, 2.0))
    return hist


def snapshot(hist: LatencyHistogram):
    return (hist.total, tuple(map(tuple, hist.to_pairs())))


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_is_commutative(seed):
    rng = random.Random(seed)
    for _ in range(20):
        a = random_histogram(rng, rng.randrange(0, 400))
        b = random_histogram(rng, rng.randrange(0, 400))
        ab = LatencyHistogram.from_pairs(a.to_pairs())
        ab.merge(b)
        ba = LatencyHistogram.from_pairs(b.to_pairs())
        ba.merge(a)
        assert snapshot(ab) == snapshot(ba)


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_is_associative(seed):
    rng = random.Random(seed * 7 + 1)
    for _ in range(20):
        a, b, c = (random_histogram(rng, rng.randrange(0, 300))
                   for _ in range(3))
        left = LatencyHistogram.from_pairs(a.to_pairs())
        bc = LatencyHistogram.from_pairs(b.to_pairs())
        bc.merge(c)
        left.merge(bc)
        right = LatencyHistogram.from_pairs(a.to_pairs())
        right.merge(b)
        right.merge(c)
        assert snapshot(left) == snapshot(right)


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_matches_observing_everything_at_once(seed):
    rng = random.Random(seed * 13 + 2)
    samples = [rng.lognormvariate(1.0, 1.8) for _ in range(500)]
    whole = LatencyHistogram()
    whole.observe_many(samples)
    cut = rng.randrange(0, len(samples))
    parts = LatencyHistogram()
    parts.observe_many(samples[:cut])
    rest = LatencyHistogram()
    rest.observe_many(samples[cut:])
    parts.merge(rest)
    assert snapshot(parts) == snapshot(whole)
    for q in (0.0, 50.0, 90.0, 99.0, 100.0):
        assert parts.percentile(q) == whole.percentile(q)


def test_pairs_round_trip_is_canonical():
    rng = random.Random(5)
    hist = random_histogram(rng, 250)
    again = LatencyHistogram.from_pairs(hist.to_pairs())
    assert snapshot(again) == snapshot(hist)
    # Pairs are ascending by bin whatever the insertion order was.
    bins = [idx for idx, _ in hist.to_pairs()]
    assert bins == sorted(bins)


# ---------------------------------------------------------------------------
# aggregate_nodes: shard-order independence.

#: Fields whose aggregate must not depend on node order.  busy_ms and
#: capacity_inv_s are float sums and excluded on purpose (see module
#: docstring).
ORDER_FREE_FIELDS = (
    "nodes", "arrivals", "invocations", "cold_starts", "dropped",
    "evictions", "peak_warm_instances", "peak_memory_bytes",
    "p50_latency_ms", "p99_latency_ms", "latency_pairs",
    "drop_fraction", "warm_fraction",
)


def random_node(rng: random.Random) -> dict:
    arrivals = rng.randrange(1, 2000)
    dropped = rng.randrange(0, arrivals)
    invocations = arrivals - dropped
    hist = random_histogram(rng, invocations)
    return {
        "arrivals": arrivals,
        "invocations": invocations,
        "cold_starts": rng.randrange(0, invocations + 1),
        "dropped": dropped,
        "evictions": rng.randrange(0, 50),
        "busy_ms": rng.uniform(0.0, 1e6),
        "peak_warm_instances": rng.randrange(0, 200),
        "peak_memory_bytes": rng.randrange(0, 1 << 34),
        "capacity_inv_s": rng.uniform(1.0, 500.0),
        "latency_pairs": hist.to_pairs(),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_aggregate_is_shard_order_independent(seed):
    rng = random.Random(seed * 31 + 3)
    nodes = [random_node(rng) for _ in range(rng.randrange(2, 12))]
    base = aggregate_nodes(nodes)
    for _ in range(10):
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        agg = aggregate_nodes(shuffled)
        for field in ORDER_FREE_FIELDS:
            assert agg[field] == base[field], field


@pytest.mark.parametrize("seed", SEEDS)
def test_aggregate_percentiles_match_one_big_histogram(seed):
    """Sharding must be invisible: aggregating per-node histograms gives
    the same percentiles as one histogram over every invocation."""
    rng = random.Random(seed * 37 + 4)
    nodes = [random_node(rng) for _ in range(6)]
    agg = aggregate_nodes(nodes)
    whole = LatencyHistogram()
    for node in nodes:
        whole.merge(LatencyHistogram.from_pairs(node["latency_pairs"]))
    assert agg["p50_latency_ms"] == whole.p50_ms
    assert agg["p99_latency_ms"] == whole.p99_ms
    assert agg["latency_pairs"] == whole.to_pairs()


def test_aggregate_of_empty_nodes_is_quiet():
    node = {
        "arrivals": 0, "invocations": 0, "cold_starts": 0, "dropped": 0,
        "evictions": 0, "busy_ms": 0.0, "peak_warm_instances": 0,
        "peak_memory_bytes": 0, "capacity_inv_s": 0.0, "latency_pairs": [],
    }
    agg = aggregate_nodes([node, dict(node)])
    assert agg["p50_latency_ms"] == 0.0
    assert agg["drop_fraction"] == 0.0
    assert agg["warm_fraction"] == 0.0
