"""Golden fleet-trace snapshot: one region result pinned byte-exactly.

Same contract as ``tests/test_golden_figures.py``: the canonical-JSON
dump of one small region run is committed under ``tests/golden/`` and
compared byte-for-byte.  Any change to the fleet's planning, seeding,
node simulation, or aggregation arithmetic surfaces as a diff here
before it can silently move the ext_fleet numbers.  Regenerate an
intentional change with ``--update-golden`` and commit the diff.
"""

import json
from pathlib import Path

from repro.fleet.config import FleetConfig
from repro.fleet.region import simulate_region

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fleet_region.json"

#: Small enough to simulate in well under a second, rich enough to cover
#: Zipf allotment, affinity placement, evictions, and the Jukebox scale.
GOLDEN_CFG = FleetConfig(nodes=3, instances=90, functions=12,
                         duration_ms=12_000.0, mean_iat_ms=600.0,
                         balancer="function-affinity", ttl_minutes=0.05,
                         jukebox=True, seed=2022)


def canonical_json(result) -> str:
    return json.dumps(result, sort_keys=True, indent=2) + "\n"


def test_region_matches_golden(update_golden):
    actual = canonical_json(simulate_region(GOLDEN_CFG, shards=3))
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(actual, encoding="utf-8")
        import pytest
        pytest.skip("golden snapshot fleet_region.json regenerated")
    assert GOLDEN_PATH.exists(), (
        "missing golden snapshot tests/golden/fleet_region.json; generate "
        "it with pytest --update-golden and commit it")
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    assert actual == expected, (
        "fleet region output drifted from its golden snapshot. If this "
        "model change is intentional, rerun with --update-golden and "
        "commit the regenerated fleet_region.json; otherwise fleet "
        "determinism broke.")


def test_golden_snapshot_is_canonical():
    text = GOLDEN_PATH.read_text(encoding="utf-8")
    payload = json.loads(text)
    assert json.dumps(payload, sort_keys=True, indent=2) + "\n" == text


def test_golden_run_is_deterministic():
    a = canonical_json(simulate_region(GOLDEN_CFG, shards=3))
    b = canonical_json(simulate_region(GOLDEN_CFG, shards=1))
    assert a == b
