"""A sacrificial region-sweep driver for fleet crash drills.

The fleet analogue of :mod:`tests.engine.crash_driver`: simulates one
region shard-by-shard against an on-disk result cache, printing one
flushed ``shard <i> ok`` line as each shard's result is checkpointed and
a final ``RESULT <canonical json>`` line for the aggregated region.  The
chaos smoke SIGKILLs it mid-sweep, reruns it, and asserts the rerun (a)
serves the killed run's shards from the cache and (b) prints a RESULT
line byte-identical to an undisturbed run.

Serial on purpose: a SIGKILL leaves only the cache directory behind.
Invoke as ``python -m tests.fleet.fleet_driver`` from the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.engine import canonicalize, configure, sweep_outcomes
from repro.fleet.config import FleetConfig
from repro.fleet.region import shard_jobs
from repro.fleet.result import aggregate_nodes

#: The drill region: big enough that a mid-sweep SIGKILL has shards both
#: checkpointed and pending, small enough to run in well under a second.
DRILL_SHARDS = 4


def drill_config(seed: int = 1) -> FleetConfig:
    return FleetConfig(nodes=4, instances=120, functions=10,
                       duration_ms=8_000.0, mean_iat_ms=500.0,
                       balancer="least-loaded", seed=seed)


def result_line(node_results: Sequence[dict]) -> str:
    region = aggregate_nodes(list(node_results))
    return "RESULT " + json.dumps(canonicalize(region), sort_keys=True,
                                  separators=(",", ":"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tests.fleet.fleet_driver")
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    jobs = shard_jobs(drill_config(args.seed), shards=DRILL_SHARDS)
    node_results: List[dict] = []
    with configure(cache_dir=args.cache_dir) as ctx:
        for i, job in enumerate(jobs):
            [outcome] = sweep_outcomes([job])
            node_results.extend(outcome.value)
            # One flushed line per checkpoint: the parent counts these to
            # SIGKILL at an exact point in the schedule.
            print(f"shard {i} ok", flush=True)
        print(result_line(node_results), flush=True)
        print(f"STATS hits={ctx.stats.hits} misses={ctx.stats.misses}",
              flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
