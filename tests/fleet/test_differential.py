"""Differential battery: the fleet against its ground truths.

* a 1-node fleet must be byte-identical (canonical JSON) to a hand-built
  :class:`~repro.server.server.ServerSimulator` run on the same seed --
  region orchestration adds nothing on top of the node model;
* serial, sharded-parallel, and warm-cache-resumed region runs must be
  byte-identical on every seed -- sharding and caching only partition
  work, they never change results.
"""

import json

import pytest

from repro import engine
from repro.fleet.config import FleetConfig
from repro.fleet.node import make_keepalive
from repro.fleet.plan import node_seed_for, plan_region
from repro.fleet.region import simulate_region
from repro.fleet.result import LatencyHistogram
from repro.server.server import ServerConfig, ServerSimulator
from repro.workloads.arrival import make_arrival_process
from repro.workloads.suite import SUITE

SEEDS = (3, 17, 2022)


def canonical(value) -> str:
    return json.dumps(engine.canonicalize(value), sort_keys=True,
                      separators=(",", ":"))


@pytest.mark.parametrize("seed", SEEDS)
def test_one_node_fleet_matches_server_simulator(seed):
    """Hand-build the node with server/workload APIs only and compare."""
    cfg = FleetConfig(nodes=1, instances=60, functions=12,
                      duration_ms=15_000.0, mean_iat_ms=800.0, seed=seed)
    plan = plan_region(cfg)

    sim = ServerSimulator(
        config=ServerConfig(cores=cfg.cores_per_node,
                            memory_gb=cfg.memory_gb_per_node,
                            service_time_ms=cfg.service_time_ms,
                            enforce_memory=True,
                            cold_start_penalty_ms=cfg.cold_start_penalty_ms),
        keepalive=make_keepalive(cfg),
        seed=node_seed_for(cfg, 0))
    for spec in plan[0]:
        sim.add_instance(
            SUITE[spec.function_id % len(SUITE)],
            make_arrival_process(cfg.arrival, cfg.mean_iat_ms,
                                 seed=spec.arrival_seed),
            instance_id=spec.instance_id,
            service_scale=spec.service_scale)
    stats = sim.run(cfg.duration_ms)
    hist = LatencyHistogram()
    hist.observe_many(stats.latencies_ms)
    expected = {
        "node": 0,
        "instances": len(plan[0]),
        "arrivals": stats.arrivals,
        "invocations": stats.invocations,
        "cold_starts": stats.cold_starts,
        "dropped": stats.dropped,
        "evictions": stats.evictions,
        "busy_ms": stats.busy_ms,
        "capacity_inv_s": (cfg.cores_per_node * stats.invocations
                           / (stats.busy_ms / 1000.0)),
        "peak_warm_instances": stats.peak_warm_instances,
        "peak_memory_bytes": stats.peak_memory_bytes,
        "latency_pairs": hist.to_pairs(),
    }

    [node_result] = simulate_region(cfg)["node_results"]
    assert canonical(node_result) == canonical(expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_sharded_and_resumed_are_byte_identical(seed, tmp_path):
    cfg = FleetConfig(nodes=4, instances=120, functions=10,
                      duration_ms=10_000.0, mean_iat_ms=600.0,
                      balancer="least-loaded", seed=seed)

    serial = canonical(simulate_region(cfg, shards=1))

    with engine.configure(jobs=4):
        parallel = canonical(simulate_region(cfg, shards=4))
    assert parallel == serial

    cache_dir = tmp_path / f"cache-{seed}"
    with engine.configure(cache_dir=cache_dir) as ctx:
        cold = canonical(simulate_region(cfg, shards=4))
        assert ctx.stats.misses == 4
    assert cold == serial
    with engine.configure(cache_dir=cache_dir) as ctx:
        resumed = canonical(simulate_region(cfg, shards=4))
        assert ctx.stats.hits == 4 and ctx.stats.misses == 0
    assert resumed == serial


def test_shard_count_never_changes_results():
    cfg = FleetConfig(nodes=6, instances=90, functions=8,
                      duration_ms=8_000.0, mean_iat_ms=700.0, seed=11)
    baseline = canonical(simulate_region(cfg, shards=1))
    for shards in (2, 3, 6):
        assert canonical(simulate_region(cfg, shards=shards)) == baseline


def test_legacy_server_path_unchanged_by_service_scale():
    """enforce_memory=False with default scale is the pre-fleet model:
    same RNG draw order, same stats, no drops ever."""
    def run():
        sim = ServerSimulator(ServerConfig(cores=4), seed=9)
        for i, profile in enumerate(SUITE[:8]):
            sim.add_instance(profile,
                             make_arrival_process("poisson", 500.0, seed=i))
        return sim.run(5_000.0)

    a, b = run(), run()
    assert a.dropped == 0
    assert a.invocations == b.invocations
    assert a.latencies_ms == b.latencies_ms
    assert a.arrivals == a.invocations
