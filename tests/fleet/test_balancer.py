"""Placement policies and the Zipf popularity model."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.balancer import PlacementState, make_balancer
from repro.fleet.config import BALANCER_NAMES, FleetConfig
from repro.fleet.plan import plan_region
from repro.fleet.popularity import (
    JUKEBOX_UPLIFT,
    instances_per_function,
    service_scale,
    zipf_weights,
)
from repro.workloads.profiles import LANG_GO, LANG_NODEJS, LANG_PYTHON


class TestBalancers:
    def test_round_robin_rotates(self):
        state = PlacementState(nodes=4)
        rr = make_balancer("round-robin")
        placed = [rr.place(f, 0.1, state) for f in range(8)]
        assert placed == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_prefers_emptiest_node(self):
        state = PlacementState(nodes=3)
        state.record(0, 0, 0.5)
        state.record(1, 1, 0.2)
        ll = make_balancer("least-loaded")
        assert ll.place(2, 0.1, state) == 2

    def test_least_loaded_ties_break_low(self):
        state = PlacementState(nodes=3)
        ll = make_balancer("least-loaded")
        assert ll.place(0, 0.1, state) == 0

    def test_affinity_colocates_same_function(self):
        state = PlacementState(nodes=4)
        aff = make_balancer("function-affinity")
        first = aff.place(7, 0.1, state)
        state.record(7, first, 0.1)
        # Pile load on the affinity node: the function still sticks.
        state.record(99, first, 5.0)
        assert aff.place(7, 0.1, state) == first

    def test_affinity_falls_back_to_least_loaded(self):
        state = PlacementState(nodes=3)
        state.record(0, 0, 1.0)
        aff = make_balancer("function-affinity")
        assert aff.place(42, 0.1, state) in (1, 2)

    def test_random_is_seeded_and_in_range(self):
        state = PlacementState(nodes=5)
        a = make_balancer("random", seed=11)
        b = make_balancer("random", seed=11)
        seq_a = [a.place(f, 0.1, state) for f in range(64)]
        seq_b = [b.place(f, 0.1, state) for f in range(64)]
        assert seq_a == seq_b
        assert all(0 <= n < 5 for n in seq_a)
        assert len(set(seq_a)) == 5

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ConfigurationError):
            make_balancer("power-of-two")

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ConfigurationError):
            PlacementState(nodes=0)


class TestPopularity:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(20, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_allotment_sums_exactly(self):
        for functions, instances in ((20, 800), (7, 13), (40, 101), (3, 3)):
            counts = instances_per_function(functions, instances, 1.1)
            assert sum(counts) == instances
            assert all(c >= 0 for c in counts)

    def test_allotment_skews_to_popular_functions(self):
        counts = instances_per_function(20, 800, 1.1)
        assert counts[0] > counts[-1]

    def test_allotment_deterministic(self):
        assert instances_per_function(20, 800, 1.1) \
            == instances_per_function(20, 800, 1.1)

    def test_uniform_alpha_zero(self):
        counts = instances_per_function(10, 100, 0.0)
        assert counts == [10] * 10

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.1)
        with pytest.raises(ConfigurationError):
            instances_per_function(10, 0, 1.1)

    def test_service_scale_positive_and_jukebox_smaller(self):
        for f in range(40):
            base = service_scale(f, jukebox=False)
            jb = service_scale(f, jukebox=True)
            assert base > 0
            assert jb < base

    def test_uplift_ordering_matches_fig10(self):
        assert JUKEBOX_UPLIFT[LANG_GO] > JUKEBOX_UPLIFT[LANG_NODEJS] \
            > JUKEBOX_UPLIFT[LANG_PYTHON]


class TestPlanRegion:
    def test_every_instance_placed_exactly_once(self):
        cfg = FleetConfig(nodes=6, instances=200, functions=15)
        plan = plan_region(cfg)
        assert sorted(plan) == list(range(cfg.nodes))
        ids = [spec.global_id for specs in plan.values() for spec in specs]
        assert sorted(ids) == list(range(cfg.instances))

    def test_plan_is_pure_function_of_config(self):
        cfg = FleetConfig(nodes=4, instances=100, balancer="least-loaded")
        assert plan_region(cfg) == plan_region(cfg)

    @pytest.mark.parametrize("balancer", BALANCER_NAMES)
    def test_all_balancers_produce_valid_plans(self, balancer):
        cfg = FleetConfig(nodes=5, instances=120, balancer=balancer)
        plan = plan_region(cfg)
        total = sum(len(specs) for specs in plan.values())
        assert total == cfg.instances
        for node, specs in plan.items():
            for spec in specs:
                assert spec.node == node

    def test_round_robin_plan_is_balanced(self):
        cfg = FleetConfig(nodes=8, instances=200, balancer="round-robin")
        sizes = [len(s) for s in plan_region(cfg).values()]
        assert max(sizes) == min(sizes)  # 200 / 8 exactly

    def test_affinity_concentrates_functions(self):
        cfg = FleetConfig(nodes=8, instances=400, functions=10,
                          balancer="function-affinity")
        plan = plan_region(cfg)
        nodes_by_function = {}
        for specs in plan.values():
            for spec in specs:
                nodes_by_function.setdefault(spec.function_id,
                                             set()).add(spec.node)
        # Affinity pins each function to exactly one node.
        assert all(len(nodes) == 1 for nodes in nodes_by_function.values())

    def test_instance_ids_are_stable_and_unique(self):
        cfg = FleetConfig(nodes=4, instances=50)
        plan = plan_region(cfg)
        ids = [spec.instance_id for specs in plan.values() for spec in specs]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith("f") and "/i" in i for i in ids)
