"""Seeded property tests: the fleet's conservation invariants.

Configurations are generated with stdlib ``random.Random`` from fixed
master seeds, so every run checks the same population and a failure
reproduces exactly.  The invariants:

* every arrival is exactly one of served or dropped
  (``arrivals == invocations + dropped``, per node and region-wide);
* a node's warm set never exceeds its memory capacity;
* an instance is only evicted when its idle time exceeds its TTL.
"""

import random

from repro.fleet.config import FleetConfig
from repro.fleet.node import build_node
from repro.fleet.plan import plan_region
from repro.fleet.region import simulate_region
from repro.server.keepalive import KeepAlivePolicy


def _random_config(rng: random.Random) -> FleetConfig:
    return FleetConfig(
        nodes=rng.randrange(1, 5),
        cores_per_node=rng.randrange(2, 12),
        memory_gb_per_node=rng.choice([1, 2, 64]),
        functions=rng.randrange(3, 25),
        instances=rng.randrange(20, 150),
        duration_ms=rng.choice([5_000.0, 15_000.0]),
        mean_iat_ms=rng.choice([200.0, 1_000.0, 4_000.0]),
        arrival=rng.choice(["poisson", "bursty", "diurnal"]),
        balancer=rng.choice(["random", "round-robin", "least-loaded",
                             "function-affinity"]),
        keepalive=rng.choice(["fixed", "histogram"]),
        ttl_minutes=rng.choice([0.05, 1.0, 10.0]),
        jukebox=rng.random() < 0.5,
        seed=rng.randrange(1, 10_000),
    )


def test_every_arrival_served_or_dropped():
    rng = random.Random(1009)
    for _ in range(8):
        cfg = _random_config(rng)
        result = simulate_region(cfg)
        region = result["region"]
        assert region["arrivals"] == \
            region["invocations"] + region["dropped"], cfg
        for node in result["node_results"]:
            assert node["arrivals"] == \
                node["invocations"] + node["dropped"], (cfg, node["node"])
            # Served latencies account for every invocation, exactly.
            assert sum(c for _b, c in node["latency_pairs"]) \
                == node["invocations"]


def test_node_memory_never_exceeds_capacity():
    rng = random.Random(2003)
    saw_drop = False
    for _ in range(8):
        cfg = _random_config(rng)
        capacity = cfg.memory_gb_per_node * 1024 * 1024 * 1024
        result = simulate_region(cfg)
        for node in result["node_results"]:
            assert 0 <= node["peak_memory_bytes"] <= capacity, cfg
        saw_drop = saw_drop or result["region"]["dropped"] > 0
    # The population must include memory-constrained regions, otherwise
    # the capacity bound is vacuous.
    assert saw_drop


def test_overcommitted_node_drops_but_conserves():
    """~25MB/instance: 100 instances cannot fit a 1GB node."""
    cfg = FleetConfig(nodes=1, memory_gb_per_node=1, instances=100,
                      functions=10, duration_ms=10_000.0,
                      mean_iat_ms=500.0, seed=5)
    region = simulate_region(cfg)["region"]
    assert region["dropped"] > 0
    assert region["arrivals"] == region["invocations"] + region["dropped"]
    capacity = cfg.memory_gb_per_node * 1024 * 1024 * 1024
    assert region["peak_memory_bytes"] <= capacity


class _EvictionAudit(KeepAlivePolicy):
    """Proxy keep-alive recording every eviction decision it grants."""

    def __init__(self, inner: KeepAlivePolicy) -> None:
        self.inner = inner
        self.evictions = []

    def ttl_ms(self, function_id: str) -> float:
        return self.inner.ttl_ms(function_id)

    def observe_iat(self, function_id: str, iat_ms: float) -> None:
        self.inner.observe_iat(function_id, iat_ms)

    def should_evict(self, function_id: str, idle_ms: float) -> bool:
        evict = self.inner.should_evict(function_id, idle_ms)
        if evict:
            self.evictions.append(
                (function_id, idle_ms, self.inner.ttl_ms(function_id)))
        return evict


def test_eviction_only_when_idle_exceeds_ttl():
    rng = random.Random(3001)
    total_evictions = 0
    for _ in range(4):
        cfg = _random_config(rng).replace(ttl_minutes=0.02)  # 1.2s TTL
        plan = plan_region(cfg)
        for node_id in range(cfg.nodes):
            sim = build_node(cfg, node_id, plan[node_id])
            audit = _EvictionAudit(sim.keepalive)
            sim.keepalive = audit
            stats = sim.run(cfg.duration_ms)
            assert stats.evictions <= len(audit.evictions)
            for _fid, idle_ms, ttl_ms in audit.evictions:
                assert idle_ms > ttl_ms
            total_evictions += stats.evictions
    # The aggressive TTL must actually exercise the eviction path.
    assert total_evictions > 0


def test_cold_starts_bounded_by_admissions():
    rng = random.Random(4001)
    for _ in range(6):
        cfg = _random_config(rng)
        region = simulate_region(cfg)["region"]
        assert region["cold_starts"] <= region["invocations"]
        # Every instance's first served invocation is a cold start, and
        # re-warms only follow evictions.
        assert region["cold_starts"] <= \
            cfg.instances + region["evictions"], cfg
