"""Shared fixtures: small machines and workloads that keep tests fast."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden figure snapshots under tests/golden/ "
             "instead of comparing against them (commit the diff and "
             "explain the model change in the PR)")


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden snapshots, not compare."""
    return request.config.getoption("--update-golden")

from repro.experiments.common import RunConfig
from repro.sim.params import (
    CacheParams,
    JukeboxParams,
    MachineParams,
    MemoryParams,
    TLBParams,
    core_params_for_mode,
    MODE_EVALUATION,
    skylake,
    broadwell,
)
from repro.units import KB, MB
from repro.workloads.function import FunctionModel
from repro.workloads.profiles import FunctionProfile, LANG_GO, LANG_PYTHON


@pytest.fixture(scope="session")
def skylake_machine() -> MachineParams:
    return skylake()


@pytest.fixture(scope="session")
def broadwell_machine() -> MachineParams:
    return broadwell()


@pytest.fixture(scope="session")
def tiny_machine() -> MachineParams:
    """A scaled-down machine: tiny caches so capacity effects appear with
    tiny workloads, keeping unit tests fast."""
    return MachineParams(
        name="tiny",
        core=core_params_for_mode(MODE_EVALUATION),
        l1i=CacheParams("L1I", size=4 * KB, assoc=4, latency=4, mshrs=4),
        l1d=CacheParams("L1D", size=4 * KB, assoc=4, latency=8, mshrs=4),
        l2=CacheParams("L2", size=64 * KB, assoc=8, latency=20, mshrs=8),
        llc=CacheParams("LLC", size=512 * KB, assoc=16, latency=30, mshrs=8),
        itlb=TLBParams("ITLB", entries=32, assoc=4),
        dtlb=TLBParams("DTLB", entries=32, assoc=4),
        memory=MemoryParams(),
        jukebox=JukeboxParams(metadata_bytes=4 * KB),
    )


@pytest.fixture(scope="session")
def tiny_profile() -> FunctionProfile:
    """A small function whose invocations simulate in milliseconds."""
    return FunctionProfile(
        name="TinyService",
        abbrev="Tiny-G",
        language=LANG_GO,
        application="Test",
        footprint_kb=96,
        instructions=60_000,
        data_ws_kb=24,
        density=0.8,
        loopiness=0.3,
        phases=3,
        branch_sites=120,
    )


@pytest.fixture(scope="session")
def sparse_profile() -> FunctionProfile:
    """A Python-like sparse function for metadata-size tests."""
    return FunctionProfile(
        name="SparseService",
        abbrev="Sparse-P",
        language=LANG_PYTHON,
        application="Test",
        footprint_kb=160,
        instructions=90_000,
        data_ws_kb=48,
        density=0.5,
        loopiness=0.25,
        phases=4,
        branch_sites=160,
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_profile) -> FunctionModel:
    return FunctionModel(tiny_profile, seed=7)


@pytest.fixture(scope="session")
def tiny_traces(tiny_model):
    return [tiny_model.invocation_trace(i) for i in range(4)]


@pytest.fixture(scope="session")
def fast_cfg() -> RunConfig:
    return RunConfig(invocations=3, warmup=1, instruction_scale=1.0)
