"""Unit tests for address-math helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    KB,
    LINE_SIZE,
    MB,
    PAGE_SIZE,
    align_up,
    block_addr,
    block_of,
    is_power_of_two,
    log2_int,
    page_of,
)


class TestConstants:
    def test_line_size(self):
        assert LINE_SIZE == 64

    def test_kb_mb(self):
        assert KB == 1024
        assert MB == 1024 * KB

    def test_page_size(self):
        assert PAGE_SIZE == 4096


class TestBlockMath:
    def test_block_of_zero(self):
        assert block_of(0) == 0

    def test_block_of_within_first_line(self):
        assert block_of(63) == 0

    def test_block_of_second_line(self):
        assert block_of(64) == 1

    def test_block_addr_rounds_down(self):
        assert block_addr(100) == 64

    def test_block_addr_aligned_is_identity(self):
        assert block_addr(128) == 128

    def test_page_of(self):
        assert page_of(4095) == 0
        assert page_of(4096) == 1

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_block_addr_is_aligned(self, addr):
        assert block_addr(addr) % LINE_SIZE == 0
        assert block_addr(addr) <= addr < block_addr(addr) + LINE_SIZE

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_block_of_consistent_with_block_addr(self, addr):
        assert block_of(addr) * LINE_SIZE == block_addr(addr)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_zero(self):
        assert align_up(0, 64) == 0

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([1, 2, 64, 4096]))
    def test_result_is_aligned_and_minimal(self, value, alignment):
        result = align_up(value, alignment)
        assert result % alignment == 0
        assert result >= value
        assert result - value < alignment


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 64, 4096, 1 << 30])
    def test_accepts_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, value):
        assert not is_power_of_two(value)

    def test_log2(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6
        assert log2_int(1 << 20) == 20

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(100)
