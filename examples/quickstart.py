#!/usr/bin/env python3
"""Quickstart: the lukewarm phenomenon and Jukebox in ~60 lines.

Simulates one serverless function (Auth-G from Table 2) in the paper's
three key configurations on the Skylake-like machine:

1. reference   -- warm back-to-back invocations;
2. lukewarm    -- all microarchitectural state flushed between invocations
                  (the interleaved baseline of Sec. 5.2);
3. jukebox     -- lukewarm, plus Jukebox record/replay (Sec. 3).

Run:  python examples/quickstart.py
"""

from repro import Jukebox, Simulator, simulate, skylake
from repro.analysis import format_table, speedup
from repro.workloads import FunctionModel, get_profile

INVOCATIONS = 5


def run_sequence(flush: bool, with_jukebox: bool) -> float:
    """Return the cycles of the last (steady-state) invocation."""
    machine = skylake()
    sim = Simulator(machine)
    jukebox = Jukebox(machine.jukebox) if with_jukebox else None
    model = FunctionModel(get_profile("Auth-G"), seed=42)

    cycles = 0.0
    for i in range(INVOCATIONS):
        if flush:
            sim.flush_microarch_state()       # the lukewarm condition
        if jukebox is not None:
            jukebox.begin_invocation(sim.hierarchy)
        result = simulate(model.invocation_trace(i), sim=sim)
        if jukebox is not None:
            report = jukebox.end_invocation(sim.hierarchy, result)
            if i == INVOCATIONS - 1:
                replay = report.replay
                print(f"  jukebox replay: {replay.lines_prefetched} lines "
                      f"prefetched, {replay.covered} L2 misses covered, "
                      f"{replay.overpredicted} overpredicted, "
                      f"{report.recorded_bytes}B metadata recorded")
        cycles = result.cycles
        print(f"  invocation {i}: CPI={result.cpi:.3f} "
              f"(L2-I MPKI {result.mpki('l2', 'inst'):5.1f}, "
              f"LLC-I MPKI {result.mpki('llc', 'inst'):5.1f})")
    return cycles


def main() -> None:
    print("reference (warm back-to-back):")
    reference = run_sequence(flush=False, with_jukebox=False)
    print("\nlukewarm baseline (state flushed between invocations):")
    baseline = run_sequence(flush=True, with_jukebox=False)
    print("\nlukewarm + Jukebox:")
    jukebox = run_sequence(flush=True, with_jukebox=True)

    rows = [
        ["reference", f"{reference:,.0f}", "--"],
        ["lukewarm baseline", f"{baseline:,.0f}",
         f"{(baseline / reference - 1) * 100:+.0f}% vs. reference"],
        ["lukewarm + Jukebox", f"{jukebox:,.0f}",
         f"{speedup(baseline, jukebox) * 100:+.1f}% vs. baseline"],
    ]
    print()
    print(format_table(["Configuration", "cycles/invocation", "delta"], rows,
                       title="Steady-state comparison (Auth-G)"))
    print("\nPaper reference points: interleaving costs 31-114% CPI;"
          "\nJukebox recovers +18.7% on average (+29.5% on Auth-G).")


if __name__ == "__main__":
    main()
