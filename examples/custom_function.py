#!/usr/bin/env python3
"""Bring your own function: model a workload that is not in Table 2.

Shows the full modeling workflow a downstream user follows:

1. describe the function with a :class:`FunctionProfile` (footprint,
   instruction volume, language-like density, loop-heaviness);
2. sanity-check the generated traces against the description (footprint,
   Fig. 6b-style commonality);
3. predict its lukewarm penalty and how much Jukebox would recover;
4. size the Jukebox metadata budget for it (a per-function Fig. 9).

The example models a hypothetical Rust image-thumbnailing function: a
compact dense binary (Go-like layout) but compute-heavy (AES-like loops).

Run:  python examples/custom_function.py
"""

from repro import JukeboxParams, Simulator, simulate, skylake
from repro.analysis import format_table, pairwise_jaccard, speedup
from repro.experiments.common import RunConfig, run_config
from repro.units import KB
from repro.workloads import FunctionModel, FunctionProfile
from repro.workloads.profiles import LANG_GO

THUMBNAIL = FunctionProfile(
    name="Thumbnail",
    abbrev="Thumb-R",
    language=LANG_GO,          # closest layout archetype: dense static binary
    application="Custom",
    footprint_kb=380,          # compact compiled code
    instructions=1_200_000,    # ~0.5ms at ~2.5 GHz and CPI ~1
    data_ws_kb=220,            # pixel buffers
    density=0.85,
    loopiness=0.65,            # convolution / resample loops
    hot_fraction=0.4,
    branch_bias=0.9,
)


def validate_model() -> None:
    model = FunctionModel(THUMBNAIL, seed=1)
    footprints = [model.footprint_blocks(i) for i in range(8)]
    sizes_kb = [len(fp) * 64 / KB for fp in footprints]
    jaccards = pairwise_jaccard(footprints)
    rows = [
        ["target footprint", f"{THUMBNAIL.footprint_kb}KB"],
        ["generated footprint", f"{min(sizes_kb):.0f}-{max(sizes_kb):.0f}KB"],
        ["cross-invocation Jaccard",
         f"{sum(jaccards) / len(jaccards):.2f} "
         f"(min {min(jaccards):.2f})"],
        ["instructions/invocation",
         f"{model.invocation_trace(0).total_instructions:,}"],
    ]
    print(format_table(["Property", "Value"], rows,
                       title="Model validation (Thumb-R)"))
    print()


def predict_lukewarm_behaviour() -> None:
    cfg = RunConfig(invocations=4, warmup=1)
    machine = skylake()
    reference = Simulator(machine)
    model = FunctionModel(THUMBNAIL, seed=1)
    warm_cpi = 0.0
    for i in range(3):
        warm_cpi = simulate(model.invocation_trace(i), sim=reference).cpi

    base = run_config(THUMBNAIL, machine, cfg, "baseline")
    jb = run_config(THUMBNAIL, machine, cfg, "jukebox")
    report = jb.jukebox_reports[-1]
    rows = [
        ["warm CPI", f"{warm_cpi:.2f}"],
        ["lukewarm CPI", f"{base.cpi:.2f} "
         f"({(base.cpi / warm_cpi - 1) * 100:+.0f}%)"],
        ["Jukebox speedup", f"{speedup(base.cycles, jb.cycles) * 100:+.1f}%"],
        ["metadata recorded", f"{report.recorded_bytes / KB:.1f}KB "
         f"({'truncated' if report.recorded_dropped else 'fits 16KB'})"],
        ["L2 misses covered",
         f"{report.replay.covered} of ~{report.replay.lines_prefetched}"],
    ]
    print(format_table(["Metric", "Value"], rows,
                       title="Lukewarm prediction (Skylake-like)"))
    print()


def size_metadata_budget() -> None:
    cfg = RunConfig(invocations=4, warmup=1)
    machine = skylake()
    base = run_config(THUMBNAIL, machine, cfg, "baseline")
    rows = []
    for budget in (4 * KB, 8 * KB, 16 * KB):
        m = machine.with_jukebox(JukeboxParams(metadata_bytes=budget))
        jb = run_config(THUMBNAIL, m, cfg, "jukebox")
        rows.append([f"{budget // KB}KB",
                     f"{speedup(base.cycles, jb.cycles) * 100:+.1f}%"])
    print(format_table(["metadata budget", "speedup"], rows,
                       title="Per-function Fig. 9: metadata sizing"))
    print("\nA compact dense function saturates below the paper's 16KB "
          "default,\nso an OS could assign it a smaller buffer "
          "(Sec. 5.1's dynamic sizing).")


def main() -> None:
    validate_model()
    predict_lukewarm_behaviour()
    size_metadata_budget()


if __name__ == "__main__":
    main()
