#!/usr/bin/env python3
"""Compare instruction-supply strategies for lukewarm functions.

Runs the representative per-language trio (Email-P, Pay-N, ProdL-G --
Sec. 5.5's cast) through five configurations and prints a Fig. 13-style
table:

* baseline      -- lukewarm, no prefetching
* PIF           -- temporal streaming, state lost between invocations
* PIF-ideal     -- temporal streaming with unlimited persistent metadata
* Jukebox       -- the paper's record-and-replay prefetcher
* perfect I$    -- upper bound (no instruction misses at all)

Run:  python examples/prefetcher_comparison.py [--fast]
"""

import argparse

from repro import PIFParams, pif_ideal_params, skylake
from repro.analysis import format_table, geomean_speedup, speedup
from repro.experiments.common import (
    RunConfig,
    run_config,
)
from repro.workloads import REPRESENTATIVES, get_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down traces (quicker, same shape)")
    args = parser.parse_args()
    cfg = RunConfig.fast() if args.fast else RunConfig(invocations=5, warmup=1)
    machine = skylake()

    configs = {
        "PIF": lambda p: run_config(p, machine, cfg, "pif", params=PIFParams()),
        "PIF-ideal": lambda p: run_config(p, machine, cfg, "pif", params=pif_ideal_params()),
        "Jukebox": lambda p: run_config(p, machine, cfg, "jukebox"),
        "Perfect I$": lambda p: run_config(p, machine, cfg, "perfect"),
    }

    speedups = {name: [] for name in configs}
    rows = []
    for abbrev in REPRESENTATIVES:
        profile = get_profile(abbrev)
        base = run_config(profile, machine, cfg, "baseline")
        row = [abbrev, f"{base.cpi:.2f}"]
        for name, runner in configs.items():
            s = speedup(base.cycles, runner(profile).cycles)
            speedups[name].append(s)
            row.append(f"{s * 100:+.1f}%")
        rows.append(row)
    rows.append(["GEOMEAN", ""] + [
        f"{geomean_speedup(speedups[name]) * 100:+.1f}%" for name in configs])

    print(format_table(
        ["Function", "base CPI"] + list(configs), rows,
        title="Speedup over the lukewarm baseline (Skylake-like)"))
    print("\nWhy the ordering (Sec. 5.5): PIF re-indexes on every stream"
          "\ndivergence and cannot run far enough ahead to hide DRAM"
          "\nlatency; Jukebox replays the whole recorded working set into"
          "\nthe L2 without synchronizing with the core.")


if __name__ == "__main__":
    main()
