#!/usr/bin/env python3
"""Server-level characterization: why warm functions run lukewarm.

Reproduces the arithmetic of Sec. 2.2 with the server-level substrate:

* hundreds of warm instances on one 10-core server;
* per-instance inter-arrival times of seconds (Poisson/lognormal);
* the resulting *interleaving degree* -- how many other invocations
  execute between two consecutive invocations of the same instance;
* the keep-alive economics (warm rate vs. memory held);
* the CPI consequence, via the graded stressor of Fig. 1.

Run:  python examples/server_characterization.py
"""

from repro.analysis import format_table
from repro.server import FixedTTL, ServerConfig, ServerSimulator, Stressor
from repro.sim import Simulator, broadwell, simulate
from repro.units import MB
from repro.workloads import FunctionModel, SUITE, get_profile
from repro.workloads.arrival import LognormalArrivals


def interleaving_study() -> None:
    """Interleaving degree as a function of warm-instance count."""
    rows = []
    for instances in (10, 100, 400):
        server = ServerSimulator(ServerConfig(cores=10),
                                 keepalive=FixedTTL(30), seed=7)
        server.populate(
            SUITE, instances,
            lambda i, p: LognormalArrivals(mean_iat_ms=2000.0, sigma=1.0,
                                           seed=100 + i))
        stats = server.run(duration_ms=60_000.0)
        rows.append([
            instances,
            stats.invocations,
            f"{stats.mean_interleaving():.0f}",
            f"{stats.interleaving_percentile(95):.0f}",
            f"{stats.peak_memory_bytes / MB:.0f}MB",
            f"{stats.jukebox_metadata_bytes / MB:.1f}MB",
        ])
    print(format_table(
        ["warm instances", "invocations/min", "mean interleave",
         "p95 interleave", "instance memory", "Jukebox metadata"],
        rows,
        title=("Interleaving on a 10-core server (60s, ~2s mean IAT "
               "per instance)")))
    print("Sec. 2.2: with thousands of warm instances, hundreds to "
          "thousands of\nunrelated invocations interleave between two "
          "invocations of one function.\n")


def keepalive_study() -> None:
    """Warm rate vs. keep-alive TTL for slow-arriving instances."""
    rows = []
    for ttl_minutes in (0.05, 0.5, 5.0, 60.0):
        server = ServerSimulator(ServerConfig(cores=10),
                                 keepalive=FixedTTL(ttl_minutes), seed=3)
        server.populate(
            SUITE, 60,
            lambda i, p: LognormalArrivals(mean_iat_ms=8000.0, sigma=1.2,
                                           seed=500 + i))
        stats = server.run(duration_ms=120_000.0)
        rows.append([f"{ttl_minutes:g} min",
                     f"{stats.warm_fraction * 100:.1f}%",
                     stats.evictions])
    print(format_table(
        ["keep-alive TTL", "warm invocations", "evictions"], rows,
        title="Keep-alive policy vs. warm rate (60 instances, ~8s IAT)"))
    print("Providers keep instances warm 5-60 minutes (Sec. 2.1): long "
          "TTLs buy\nwarm starts at the cost of resident memory -- which "
          "is exactly what\ncreates the lukewarm population.\n")


def cpi_vs_iat_study() -> None:
    """The microarchitectural price of the idle gap (Fig. 1 in miniature)."""
    profile = get_profile("Auth-P")
    model = FunctionModel(profile, seed=11)
    traces = [model.invocation_trace(i) for i in range(4)]
    rows = []
    for iat_ms in (0.0, 10.0, 100.0, 1000.0):
        stressor = Stressor(load=0.5, seed=1)
        sim = Simulator(broadwell())
        cpi = 0.0
        for i, trace in enumerate(traces):
            if iat_ms > 0:
                stressor.idle_gap(sim, iat_ms)
                stressor.apply_contention(sim)
            result = simulate(trace, sim=sim)
            if i == len(traces) - 1:
                cpi = result.cpi
        rows.append([int(iat_ms), f"{cpi:.2f}"])
    baseline = float(rows[0][1])
    for row in rows:
        row.append(f"{float(row[1]) / baseline * 100:.0f}%")
    print(format_table(
        ["IAT [ms]", "CPI", "vs. back-to-back"], rows,
        title=f"{profile.abbrev} CPI vs. inter-arrival time at 50% load"))
    print("Fig. 1: the longer an instance idles on a busy server, the more "
          "of its\nmicroarchitectural state is gone when the next request "
          "arrives.")


def main() -> None:
    interleaving_study()
    keepalive_study()
    cpi_vs_iat_study()


if __name__ == "__main__":
    main()
