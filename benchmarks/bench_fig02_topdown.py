"""Benchmark: regenerate Figure 2 (Top-Down CPI stacks, all 20 functions)."""

from conftest import run_once

from repro.experiments import fig02_topdown


def test_fig02_topdown_stacks(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig02_topdown.run, bench_cfg)
    report("fig02_topdown", fig02_topdown.render(result))
    assert len(result.entries) == 20
    # Paper: interleaving costs 31-114% CPI (mean ~70%).
    assert 0.3 < result.mean_cpi_increase < 1.3
    # Paper: front-end is ~51%/55% of cycles in reference/interleaved.
    assert 0.35 < result.mean_frontend_fraction("reference") < 0.65
    assert 0.40 < result.mean_frontend_fraction("interleaved") < 0.75
