"""Benchmark: the extension experiment -- server-level capacity uplift.

Not a paper figure; quantifies the abstract's claim that the per-invocation
speedup "translates into a corresponding throughput improvement".
"""

from conftest import run_once

from repro.experiments import ext_throughput

FUNCTIONS = ["Auth-P", "Email-P", "Pay-N", "Curr-N",
             "Auth-G", "ProdL-G", "Rate-G", "AES-G"]


def test_ext_throughput_uplift(benchmark, bench_cfg, report):
    result = run_once(benchmark, ext_throughput.run, bench_cfg,
                      functions=FUNCTIONS)
    report("ext_throughput", ext_throughput.render(result))
    # Capacity uplift tracks the Fig. 10 speedup (paper: +18.7% -> a
    # "corresponding throughput improvement").
    assert 0.10 < result.geomean_uplift < 0.30
    assert result.server_rate("jukebox") > result.server_rate("baseline")
    for e in result.entries:
        assert e.capacity_uplift > 0
