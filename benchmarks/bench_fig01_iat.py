"""Benchmark: regenerate Figure 1 (CPI vs. inter-arrival time)."""

from conftest import run_once

from repro.experiments import fig01_iat


def test_fig01_iat_sweep(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig01_iat.run, bench_cfg)
    report("fig01_iat", fig01_iat.render(result))
    for abbrev, series in result.normalized_cpi.items():
        assert series[0] == 1.0
        # CPI grows with IAT and saturates in the 2-3x band (paper:
        # ~2.7x for Auth-P, ~2.5x for AES-N beyond a one-second IAT).
        assert series[-1] > 1.8
        assert series[-1] == max(series)
