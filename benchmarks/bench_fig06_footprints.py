"""Benchmark: regenerate Figure 6 (footprints and Jaccard commonality)."""

from conftest import run_once

from repro.experiments import fig06_footprints
from repro.units import KB


def test_fig06_footprints_and_commonality(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig06_footprints.run, bench_cfg,
                      invocations=10)
    report("fig06_footprints", fig06_footprints.render(result))
    assert len(result.entries) == 20
    # Paper: footprints range ~300KB to >800KB.
    for e in result.entries:
        assert 250 * KB < e.footprint_bytes["mean"] < 900 * KB
    # Paper: mean commonality exceeds 90% for all but three functions.
    high = [e for e in result.entries if e.jaccard["mean"] > 0.9]
    assert len(high) >= 15
    assert result.mean_jaccard > 0.88
