"""Benchmark: regenerate Table 2 (the function suite)."""

from conftest import run_once

from repro.experiments import table2_workloads


def test_table2_workloads(benchmark, report):
    result = run_once(benchmark, table2_workloads.run)
    rendered = table2_workloads.render(result)
    report("table2_workloads", rendered)
    assert len(result.profiles) == 20
    groups = result.by_application()
    assert len(groups["Hotel Reservation"]) == 5
    assert len(groups["Online Boutique"]) == 6
    assert len(groups["Other"]) == 9
