"""Benchmark: regenerate Table 1 (simulated processor parameters)."""

from conftest import run_once

from repro.experiments import table1_config


def test_table1_configuration(benchmark, report):
    result = run_once(benchmark, table1_config.run)
    rendered = table1_config.render(result)
    report("table1_config", rendered)
    for fragment in ("x86-64", "2.6GHz", "1024KB", "8192KB",
                     "CRRB: 16 entries", "Region size: 1KB"):
        assert fragment in rendered
