"""Ablation: Jukebox prefetching into the L2 vs. into the L1-I.

Sec. 3.1 motivates the L2 target: instruction footprints (300-800KB) fit
comfortably in a 1MB L2 but are 10-25x the L1-I capacity, so bulk replay
into the L1-I thrashes itself.  This bench quantifies that design choice.
"""

from conftest import run_once

from repro.analysis.metrics import geomean_speedup, speedup
from repro.analysis.report import format_table
from repro.core.jukebox import Jukebox
from repro.experiments.common import make_traces, run_config
from repro.sim.core import Simulator
from repro.sim.simulate import simulate
from repro.sim.params import skylake

FUNCTIONS = ["Email-P", "Pay-N", "ProdL-G", "Auth-G"]


def _run_with_target(profile, machine, cfg, target):
    sim = Simulator(machine, backend=cfg.backend)
    if target == "l1i":
        # Non-allocating L1-only prefetches: an evicted line is gone.
        sim.hierarchy.l1i_fill_allocates_lower = False
    jukebox = Jukebox(machine.jukebox, replay_target=target)
    cycles = 0.0
    for i, trace in enumerate(make_traces(profile, cfg)):
        sim.flush_microarch_state()
        jukebox.begin_invocation(sim.hierarchy)
        result = simulate(trace, sim=sim)
        jukebox.end_invocation(sim.hierarchy, result)
        if i >= cfg.warmup:
            cycles += result.cycles
    return cycles


def _sweep(cfg):
    from repro.workloads.suite import get_profile
    machine = skylake()
    rows = []
    l2_speedups, l1i_speedups = [], []
    for abbrev in FUNCTIONS:
        profile = get_profile(abbrev)
        base = run_config(profile, machine, cfg, "baseline").cycles
        s_l2 = speedup(base, _run_with_target(profile, machine, cfg, "l2"))
        s_l1i = speedup(base, _run_with_target(profile, machine, cfg, "l1i"))
        l2_speedups.append(s_l2)
        l1i_speedups.append(s_l1i)
        rows.append([abbrev, f"{s_l2 * 100:+.1f}%", f"{s_l1i * 100:+.1f}%"])
    rows.append(["GEOMEAN",
                 f"{geomean_speedup(l2_speedups) * 100:+.1f}%",
                 f"{geomean_speedup(l1i_speedups) * 100:+.1f}%"])
    return rows, l2_speedups, l1i_speedups


def test_ablation_prefetch_target(benchmark, bench_cfg, report):
    rows, l2_speedups, l1i_speedups = run_once(benchmark, _sweep, bench_cfg)
    report("ablation_target", format_table(
        ["Function", "replay into L2", "replay into L1-I"], rows,
        title="Ablation: Jukebox replay target (Sec. 3.1 design choice)"))
    # The L2 target must win decisively for every function.
    for s_l2, s_l1i in zip(l2_speedups, l1i_speedups):
        assert s_l2 > s_l1i + 0.03
