"""Ablation: immutable evicted CRRB entries vs. hypothetical merge-on-evict.

The paper's record logic never modifies an entry once it left the CRRB
(Sec. 3.2), accepting duplicate region entries to keep the hardware simple.
This bench measures the metadata inflation that choice costs, per language.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.recorder import record_miss_stream, record_miss_stream_merging
from repro.experiments.fig08_metadata import collect_miss_stream
from repro.sim.params import JukeboxParams, skylake
from repro.units import KB
from repro.workloads.suite import get_profile

FUNCTIONS = ["Email-P", "Pay-N", "Auth-G", "ProdL-G"]


def _sweep(cfg):
    machine = skylake()
    params = JukeboxParams()
    rows = []
    inflations = []
    for abbrev in FUNCTIONS:
        stream = collect_miss_stream(get_profile(abbrev), machine, cfg)
        fifo = record_miss_stream(stream, params)
        merged = record_miss_stream_merging(stream, params)
        inflation = fifo.size_bytes / max(1, merged.size_bytes)
        inflations.append(inflation)
        rows.append([abbrev,
                     f"{fifo.size_bytes / KB:.1f}KB",
                     f"{merged.size_bytes / KB:.1f}KB",
                     f"{inflation:.2f}x"])
    return rows, inflations


def test_ablation_entry_immutability(benchmark, bench_cfg, report):
    rows, inflations = run_once(benchmark, _sweep, bench_cfg)
    report("ablation_dedup", format_table(
        ["Function", "FIFO (paper)", "merge-on-evict", "inflation"], rows,
        title="Ablation: metadata cost of immutable evicted entries"))
    # Re-recording inflates metadata but within a small constant factor:
    # the simplification is cheap, which is the paper's argument.
    for inflation in inflations:
        assert 1.0 <= inflation < 3.5
