"""Shared benchmark infrastructure.

Every benchmark regenerates one paper table/figure at reduced scale
(``RunConfig.fast()``) and prints the same rows/series the paper reports,
so ``pytest benchmarks/ --benchmark-only -s`` doubles as a reproduction
report.  Rendered outputs are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import engine
from repro.experiments.common import RunConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def bench_engine_context():
    """Route benchmark sweeps through the engine, cache disabled.

    Caching would turn every benchmark after the first run into a
    cache-hit measurement; ``BENCH_JOBS`` opts into parallel sweeps
    (results are bit-identical either way).
    """
    jobs = int(os.environ.get("BENCH_JOBS", "1"))
    with engine.configure(jobs=jobs, cache=None) as ctx:
        yield ctx


@pytest.fixture(scope="session")
def bench_cfg() -> RunConfig:
    """Benchmark config: full-scale invocations, a reduced invocation
    count (the paper simulates 20; four suffice for stable means)."""
    return RunConfig(invocations=4, warmup=1, instruction_scale=1.0)


@pytest.fixture(scope="session")
def fig2_result(bench_cfg):
    """Shared Fig. 2 sweep: Figs. 3 and 4 are derived from the same runs,
    exactly as in the paper."""
    from repro.experiments import fig02_topdown
    return fig02_topdown.run(bench_cfg)


@pytest.fixture(scope="session")
def report():
    """Print a rendered experiment report and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, rendered: str) -> None:
        print(f"\n{rendered}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment benchmark exactly once (they are minutes-long
    at full scale; variance across rounds is not the quantity of interest)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
