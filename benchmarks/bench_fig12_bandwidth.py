"""Benchmark: regenerate Figure 12 (memory-bandwidth overhead)."""

from conftest import run_once

from repro.experiments import fig12_bandwidth


def test_fig12_bandwidth_overhead(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig12_bandwidth.run, bench_cfg)
    report("fig12_bandwidth", fig12_bandwidth.render(result))
    assert len(result.entries) == 20
    # Paper: +14% average overhead, +23% worst case.
    assert 0.02 < result.mean_overhead < 0.25
    assert result.max_overhead < 0.40
    # Overhead decomposes into metadata + overprediction, both non-zero.
    assert 0.0 < result.mean_metadata_share < 1.0
