"""Benchmark: the sweep engine and the simulation backends.

Two halves:

* pytest-benchmark cases measuring the engine machinery — fingerprinting
  a job, serving a sweep from the warm cache, the cache store path — so a
  regression there shows up separately from one in the simulator;
* a CLI (``python benchmarks/bench_engine.py --json``) measuring
  *sweep-cell throughput* of the columnar backend against the scalar
  reference and emitting ``BENCH_engine.json``.  ``scripts/check.sh``
  runs it as the throughput gate: the build fails if the columnar
  speedup on the gate cell drops below 5x.

The CLI reports two kinds of cells:

* ``kernel`` — a synthetic steady instruction-fetch walk (periodic
  block walks re-executed lukewarm), isolating the hot path the columnar
  IR was built for: bulk walk classification + repeat folding.  This is
  the gate cell; it currently runs >10x over the scalar reference.
* ``workload`` — full Table-2 functions under the paper's lukewarm
  protocol.  Their data-access streams are inherently pointer-chasing
  LRU updates with per-event state dependences, so the end-to-end
  speedup is bounded by that serial fraction (3.5-5x, Amdahl); the JSON
  records both kinds side by side rather than hiding the distinction.

Timing is best-of-N wall clock per backend with the trace IR and
region-summary tables warmed outside the timed region -- exactly the
steady state a long sweep runs in (traces are reused across the sweep
grid, so IR construction amortizes to zero there).
"""

from __future__ import annotations

from repro import engine
from repro.experiments.common import RunConfig
from repro.workloads.suite import get_profile
from repro.sim.params import skylake

BENCH_CFG = RunConfig(invocations=3, warmup=1, instruction_scale=0.1)


def _jobs():
    machine = skylake()
    return [engine.Job.make(get_profile(a), machine, BENCH_CFG, c)
            for a in ("Auth-G", "Email-P")
            for c in ("baseline", "jukebox")]


def test_engine_job_key(benchmark):
    """Cost of one content-address: canonicalize + sha256 a full job."""
    job = _jobs()[0]
    key = benchmark(job.key)
    assert key == job.key()


def test_engine_cache_hit_sweep(benchmark, tmp_path):
    """A fully warm sweep: four cells served without any simulation."""
    jobs = _jobs()
    with engine.configure(cache_dir=tmp_path / "cache") as ctx:
        expected = engine.sweep(jobs)  # populate

        def warm():
            return engine.sweep(jobs)

        results = benchmark(warm)
        assert ctx.stats.misses == len(jobs)  # only the populating sweep
    assert [r.cpi for r in results] == [r.cpi for r in expected]


def test_engine_cache_store(benchmark, tmp_path):
    """The miss path minus simulation: pickle + atomic rename of a result."""
    jobs = _jobs()
    with engine.configure(cache_dir=tmp_path / "seed") as ctx:
        result = engine.sweep(jobs[:1])[0]
        key = jobs[0].key()
    cache = engine.ResultCache(tmp_path / "store")

    def store():
        cache.put(key, result)

    benchmark(store)
    hit, value = cache.get(key)
    assert hit and value.cpi == result.cpi


# ---------------------------------------------------------------------------
# CLI: backend throughput gate (python benchmarks/bench_engine.py --json).

GATE_CELL = "ifetch-steady"
GATE_THRESHOLD = 5.0
BACKENDS = ("scalar", "columnar")


def _ifetch_kernel():
    """Steady periodic instruction-block walks, the columnar hot path."""
    from repro.workloads import TraceBuilder

    builder = TraceBuilder()
    block = 0
    for seg in range(60):
        period = 10 + (seg % 9)
        walk = [(block + i) * 64 for i in range(period)]
        block += period
        for _ in range(10):
            for addr in walk:
                builder.fetch(addr, insts=12, taken_branches=1)
        builder.branch_site(0x400000 + seg * 4, executions=40,
                            taken_prob=0.8)
    return builder.build()


def _time_lukewarm(traces, backend, reps):
    """Best-of-``reps`` wall time of a flushed (lukewarm) pass over
    ``traces``, IR and summary tables pre-warmed."""
    import time

    from repro.sim.core import Simulator
    from repro.sim.simulate import simulate

    sim = Simulator(skylake(), backend=backend)
    for trace in traces:  # untimed: builds the IR + summary tables
        simulate(trace, sim=sim)
        sim.hierarchy.finish_invocation()
    best = None
    for _ in range(reps):
        sim.flush_microarch_state()
        begin = time.perf_counter()
        for trace in traces:
            simulate(trace, sim=sim)
            sim.hierarchy.finish_invocation()
        elapsed = time.perf_counter() - begin
        best = elapsed if best is None else min(best, elapsed)
    return best


def _bench_cells(reps=3):
    from repro.experiments.common import make_traces

    cells = [(GATE_CELL, "kernel", [_ifetch_kernel()])]
    workload_cfg = RunConfig(invocations=2, warmup=1, seed=1,
                             instruction_scale=1.0)
    for abbrev in ("Auth-G", "Prof-G"):
        cells.append((f"{abbrev}-lukewarm", "workload",
                      make_traces(get_profile(abbrev), workload_cfg)))

    rows = []
    for name, kind, traces in cells:
        scalar = _time_lukewarm(traces, "scalar", reps)
        columnar = _time_lukewarm(traces, "columnar", reps)
        rows.append({
            "name": name,
            "kind": kind,
            "events": int(sum(len(t) for t in traces)),
            "scalar_ms": round(scalar * 1e3, 3),
            "columnar_ms": round(columnar * 1e3, 3),
            "speedup": round(scalar / columnar, 2),
        })
    return rows


def main(argv=None):
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(
        description="columnar-vs-scalar sweep-cell throughput gate")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_engine.json")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path for --json")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per cell")
    args = parser.parse_args(argv)

    cells = _bench_cells(reps=args.reps)
    gate = next(c for c in cells if c["name"] == GATE_CELL)
    report = {
        "bench": "backend-throughput",
        "machine": "skylake",
        "backends": list(BACKENDS),
        "cells": cells,
        "gate": {
            "cell": GATE_CELL,
            "threshold": GATE_THRESHOLD,
            "speedup": gate["speedup"],
            "pass": gate["speedup"] >= GATE_THRESHOLD,
        },
    }
    for cell in cells:
        print(f"{cell['name']:>16} [{cell['kind']:>8}] "
              f"scalar={cell['scalar_ms']:9.2f}ms "
              f"columnar={cell['columnar_ms']:9.2f}ms "
              f"speedup={cell['speedup']:6.2f}x")
    verdict = "PASS" if report["gate"]["pass"] else "FAIL"
    print(f"gate [{GATE_CELL}]: {gate['speedup']:.2f}x "
          f">= {GATE_THRESHOLD:.1f}x required ... {verdict}")
    if args.json:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if not report["gate"]["pass"]:
        sys.exit(1)


if __name__ == "__main__":
    main()
