"""Benchmark: overhead of the sweep engine itself.

Everything else under ``benchmarks/`` measures simulation; these three
measure the machinery around it — fingerprinting a job, serving a sweep
entirely from the warm cache, and the cache store path on a miss — so a
regression in the engine shows up separately from one in the simulator.
"""

from __future__ import annotations

from repro import engine
from repro.experiments.common import RunConfig
from repro.workloads.suite import get_profile
from repro.sim.params import skylake

BENCH_CFG = RunConfig(invocations=3, warmup=1, instruction_scale=0.1)


def _jobs():
    machine = skylake()
    return [engine.Job.make(get_profile(a), machine, BENCH_CFG, c)
            for a in ("Auth-G", "Email-P")
            for c in ("baseline", "jukebox")]


def test_engine_job_key(benchmark):
    """Cost of one content-address: canonicalize + sha256 a full job."""
    job = _jobs()[0]
    key = benchmark(job.key)
    assert key == job.key()


def test_engine_cache_hit_sweep(benchmark, tmp_path):
    """A fully warm sweep: four cells served without any simulation."""
    jobs = _jobs()
    with engine.configure(cache_dir=tmp_path / "cache") as ctx:
        expected = engine.sweep(jobs)  # populate

        def warm():
            return engine.sweep(jobs)

        results = benchmark(warm)
        assert ctx.stats.misses == len(jobs)  # only the populating sweep
    assert [r.cpi for r in results] == [r.cpi for r in expected]


def test_engine_cache_store(benchmark, tmp_path):
    """The miss path minus simulation: pickle + atomic rename of a result."""
    jobs = _jobs()
    with engine.configure(cache_dir=tmp_path / "seed") as ctx:
        result = engine.sweep(jobs[:1])[0]
        key = jobs[0].key()
    cache = engine.ResultCache(tmp_path / "store")

    def store():
        cache.put(key, result)

    benchmark(store)
    hit, value = cache.get(key)
    assert hit and value.cpi == result.cpi
