"""Benchmark: regenerate Figure 9 (speedup vs. metadata budget)."""

from conftest import run_once

from repro.experiments import fig09_storage
from repro.units import KB
from repro.workloads.suite import REPRESENTATIVES


def test_fig09_budget_sweep(benchmark, bench_cfg, report):
    functions = list(REPRESENTATIVES) + ["Auth-G", "Curr-N", "RecO-P"]
    result = run_once(benchmark, fig09_storage.run, bench_cfg,
                      functions=functions)
    report("fig09_storage", fig09_storage.render(result))
    # Paper: speedup saturates around 16KB -- little gain beyond it.
    assert result.saturation_budget(threshold=0.015) <= 16 * KB
    gain_8_to_16 = result.geomean[16 * KB] - result.geomean[8 * KB]
    gain_16_to_32 = result.geomean[32 * KB] - result.geomean[16 * KB]
    assert gain_8_to_16 > gain_16_to_32
    # Paper: large-working-set functions (Pay-N) are the most sensitive.
    pay_gain = result.speedups["Pay-N"][32 * KB] - result.speedups["Pay-N"][8 * KB]
    prod_gain = (result.speedups["ProdL-G"][32 * KB]
                 - result.speedups["ProdL-G"][8 * KB])
    assert pay_gain > prod_gain
