"""Benchmark: overhead of the always-on observability layer.

The engine carries an in-memory :class:`~repro.obs.tracer.Tracer` on
every context, so its cost rides on every sweep.  These tests pin that
cost from two directions: a microbenchmark of the raw ``emit`` path, and
an end-to-end guard asserting that a traced sweep stays within 3% of the
same sweep observed by a :class:`~repro.obs.tracer.NullTracer`.

Timing uses repeated-min (the minimum of several trials estimates the
noise-free cost; means conflate scheduler jitter with real overhead).
"""

from __future__ import annotations

import time

from repro import engine
from repro.experiments.common import RunConfig
from repro.obs import records
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

BENCH_CFG = RunConfig(invocations=3, warmup=1, instruction_scale=0.1)

#: Maximum tolerated traced-over-untraced sweep slowdown.
MAX_OVERHEAD = 0.03


def _jobs():
    machine = skylake()
    return [engine.Job.make(get_profile(a), machine, BENCH_CFG, c)
            for a in ("Auth-G", "Email-P")
            for c in ("baseline", "jukebox")]


def _min_of(fn, trials: int = 5) -> float:
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_emit_microbenchmark(benchmark):
    """Raw cost of one traced event (validation + counters + window)."""
    tracer = Tracer()

    def emit():
        tracer.emit(records.CACHE_HIT, key="0123456789abcdef")

    benchmark(emit)
    assert tracer.counts["cache.hit"] == tracer.events_emitted


def test_tracer_overhead_under_3_percent():
    """A traced sweep must cost within 3% of a NullTracer sweep.

    Both variants simulate the same four cells; only the tracer differs.
    Repeated-min on each side keeps the comparison about the tracer, not
    about scheduler noise.
    """
    jobs = _jobs()

    def run_with(tracer):
        with engine.configure(tracer=tracer):
            return engine.sweep(jobs)

    run_with(NullTracer())  # warm code paths and trace memory allocators

    untraced = _min_of(lambda: run_with(NullTracer()))
    traced = _min_of(lambda: run_with(Tracer()))
    overhead = traced / untraced - 1.0
    print(f"\nuntraced {untraced:.3f}s, traced {traced:.3f}s, "
          f"overhead {overhead:+.2%}")
    assert overhead < MAX_OVERHEAD, (
        f"tracer overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%} "
        f"(untraced {untraced:.3f}s vs traced {traced:.3f}s)")
