"""Benchmark: regenerate Figure 8 (metadata size vs. region size)."""

from conftest import run_once

from repro.experiments import fig08_metadata
from repro.units import KB


def test_fig08_metadata_sensitivity(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig08_metadata.run, bench_cfg)
    report("fig08_metadata", fig08_metadata.render(result))
    assert len(result.functions) == 20
    for fn in result.functions:
        best = result.best_region_size(fn, crrb=16)
        # Paper: the sweet spot sits at mid-size regions (1KB for the
        # majority; we accept the 512B-2KB neighbourhood).
        assert 512 <= best <= 2 * KB, (fn, best)
        # Metadata at the 1KB design point lands in the paper's 9.6-29.5KB
        # band (scaled runs can undershoot slightly for the densest Go
        # functions).
        at_1k = result.metadata_bytes[(fn, 16, 1 * KB)]
        assert 2 * KB < at_1k < 40 * KB, (fn, at_1k)


def test_fig08_crrb_sensitivity_modest(benchmark, bench_cfg, report):
    """Paper: metadata size has modest sensitivity to the CRRB size."""
    result = run_once(benchmark, fig08_metadata.run, bench_cfg,
                      functions=["Email-P", "Auth-G", "Pay-N"],
                      crrb_sizes=(8, 16, 32))
    lines = []
    for fn in result.functions:
        sizes = [result.metadata_bytes[(fn, c, 1 * KB)] for c in (8, 16, 32)]
        lines.append(f"{fn}: CRRB 8/16/32 -> "
                     + "/".join(f"{s / KB:.1f}KB" for s in sizes))
        assert sizes[2] <= sizes[1] <= sizes[0]   # bigger CRRB coalesces more
        assert sizes[0] < 1.6 * sizes[2]          # ...but only modestly
    report("fig08_crrb", "\n".join(lines))
