"""Benchmark: regenerate Figure 5 (L2/L3 MPKI breakdowns)."""

from conftest import run_once

from repro.experiments import fig05_mpki


def test_fig05_mpki_breakdowns(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig05_mpki.run, bench_cfg)
    report("fig05_mpki", fig05_mpki.render(result))
    assert len(result.entries) == 20
    # Paper: interleaved L2 MPKI exceeds reference (72 vs. 54 on average).
    assert result.mean_l2_int_total > result.mean_l2_ref_total
    # Paper: reference LLC instruction MPKI ~0; interleaved >10 for many.
    assert result.mean("llc_ref_inst") < 2.0
    assert result.mean("llc_int_inst") > 8.0
    # Paper: instruction misses exceed data misses.
    assert result.mean("l2_int_inst") > result.mean("l2_int_data")
