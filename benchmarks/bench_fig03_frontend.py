"""Benchmark: regenerate Figure 3 (fetch latency vs. bandwidth split)."""

from conftest import run_once

from repro.experiments import fig02_topdown, fig03_frontend


def test_fig03_frontend_split(benchmark, fig2_result, report):
    result = run_once(benchmark, fig03_frontend.run, fig2=fig2_result)
    report("fig03_frontend", fig03_frontend.render(result))
    # Paper: fetch-latency stalls grow ~94% under interleaving while
    # fetch-bandwidth stalls grow only ~22%.
    assert result.mean_latency_growth > 2 * result.mean_bandwidth_growth
    assert result.mean_latency_growth > 0.4
