"""Ablation: replay-engine bandwidth vs. timeliness.

The replay engine streams prefetches at DRAM row-hit bandwidth, decoupled
from the core (Sec. 3.3).  Throttling the engine delays the replay front;
once the demand stream catches up, covered misses degrade into in-flight
merges and the speedup collapses -- the quantitative version of "prefetches
must arrive just in time" (Sec. 3.1).
"""

from conftest import run_once

from repro.analysis.metrics import speedup
from repro.analysis.report import format_table
from repro.core.jukebox import Jukebox
from repro.experiments.common import make_traces, run_config
from repro.sim.core import Simulator
from repro.sim.simulate import simulate
from repro.sim.params import skylake
from repro.workloads.suite import get_profile

SHARES = (1.0, 0.5, 0.25, 0.1, 0.02)
FUNCTION = "Email-P"


def _run_with_share(profile, machine, cfg, share):
    sim = Simulator(machine, backend=cfg.backend)
    jukebox = Jukebox(machine.jukebox, replay_bandwidth_share=share)
    cycles = 0.0
    late = 0
    covered = 0
    for i, trace in enumerate(make_traces(profile, cfg)):
        sim.flush_microarch_state()
        jukebox.begin_invocation(sim.hierarchy)
        result = simulate(trace, sim=sim)
        rep = jukebox.end_invocation(sim.hierarchy, result)
        if i >= cfg.warmup:
            cycles += result.cycles
            late += rep.replay.covered_late
            covered += rep.replay.covered
    return cycles, late, covered


def _sweep(cfg):
    machine = skylake()
    profile = get_profile(FUNCTION)
    base = run_config(profile, machine, cfg, "baseline").cycles
    rows = []
    speedups = []
    for share in SHARES:
        cycles, late, covered = _run_with_share(profile, machine, cfg, share)
        s = speedup(base, cycles)
        speedups.append(s)
        late_frac = late / max(1, covered)
        rows.append([f"{share:.2f}", f"{s * 100:+.1f}%",
                     f"{late_frac * 100:.0f}%"])
    return rows, speedups


def test_ablation_replay_bandwidth(benchmark, bench_cfg, report):
    rows, speedups = run_once(benchmark, _sweep, bench_cfg)
    report("ablation_timeliness", format_table(
        ["bandwidth share", "speedup", "late coverage"], rows,
        title=f"Ablation: replay-engine bandwidth ({FUNCTION})"))
    # Full bandwidth must be near-best; a starved engine must lose most of
    # the benefit.
    assert speedups[0] > 0.95 * max(speedups)
    assert speedups[-1] < 0.5 * speedups[0]
    # A starved engine degrades toward (or below) the no-prefetch baseline.
    assert speedups[0] > speedups[2] > speedups[-1] - 0.02
