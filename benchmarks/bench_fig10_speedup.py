"""Benchmark: regenerate Figure 10 (the headline speedup result)."""

from conftest import run_once

from repro.experiments import fig10_speedup


def test_fig10_jukebox_and_perfect_speedups(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig10_speedup.run, bench_cfg)
    report("fig10_speedup", fig10_speedup.render(result))
    assert len(result.entries) == 20
    # Paper: Jukebox +18.7% geomean; perfect I-cache +31% mean.
    assert 0.12 < result.jukebox_geomean < 0.30
    assert 0.22 < result.perfect_geomean < 0.48
    assert result.jukebox_geomean < result.perfect_geomean
    # Paper: per-function Jukebox gains track the perfect-I$ opportunity.
    assert result.correlation() > 0.7
    # Paper: every function benefits; AES (loop-heavy) benefits least
    # within each language.
    by_abbrev = {e.abbrev: e for e in result.entries}
    for e in result.entries:
        assert e.jukebox_speedup > 0.02
    for lang in ("P", "N", "G"):
        aes = by_abbrev[f"AES-{lang}"].jukebox_speedup
        auth = by_abbrev[f"Auth-{lang}"].jukebox_speedup
        assert aes < auth
