"""Benchmark: region-scale fleet simulation (the ext_fleet extension).

Two halves, same pattern as ``bench_engine.py``:

* a pytest-benchmark case running the fleet experiment at reduced scale
  and asserting the paper-shaped outcome (positive Jukebox capacity
  uplift on every arrival mix);
* a CLI (``python benchmarks/bench_fleet.py --json``) run by
  ``scripts/check.sh`` as the fleet smoke gate: simulates a small region
  across two arrival mixes with Jukebox off/on and fails the build if
  the geomean capacity uplift is not positive or any region violates
  arrival conservation (arrivals != served + dropped).
"""

from __future__ import annotations

from repro.experiments import ext_fleet
from repro.experiments.common import RunConfig

BENCH_CFG = RunConfig.fast()


def test_fleet_region_sweep(benchmark, report):
    from conftest import run_once

    result = run_once(benchmark, ext_fleet.run, BENCH_CFG,
                      arrivals=("poisson", "bursty"))
    report("ext_fleet", ext_fleet.render(result))
    assert result.geomean_uplift > 0
    for entry in result.entries:
        assert entry.capacity_uplift > 0
        assert entry.p99_baseline_ms > 0


# ---------------------------------------------------------------------------
# CLI: fleet smoke gate (python benchmarks/bench_fleet.py --json).

GATE_MIXES = ("poisson", "bursty")


def _smoke_report(shards=2):
    import time

    from repro.fleet.config import FleetConfig

    fleet = FleetConfig(nodes=4, instances=160, functions=20,
                        duration_ms=20_000.0, mean_iat_ms=500.0, seed=1)
    begin = time.perf_counter()
    result = ext_fleet.run(BENCH_CFG, fleet=fleet, arrivals=GATE_MIXES,
                           shards=shards)
    elapsed = time.perf_counter() - begin
    mixes = []
    conserved = True
    for entry in result.entries:
        for region in (entry.baseline, entry.jukebox):
            if region["arrivals"] != region["invocations"] + region["dropped"]:
                conserved = False
        mixes.append({
            "arrival": entry.arrival,
            "capacity_base_inv_s": round(entry.baseline["capacity_inv_s"], 1),
            "capacity_jb_inv_s": round(entry.jukebox["capacity_inv_s"], 1),
            "uplift": round(entry.capacity_uplift, 4),
            "p99_base_ms": round(entry.p99_baseline_ms, 3),
            "p99_jb_ms": round(entry.p99_jukebox_ms, 3),
            "invocations": entry.baseline["invocations"],
        })
    uplift = result.geomean_uplift
    return {
        "bench": "fleet-region-smoke",
        "nodes": fleet.nodes,
        "instances": fleet.instances,
        "shards": shards,
        "seconds": round(elapsed, 3),
        "mixes": mixes,
        "gate": {
            "geomean_uplift": round(uplift, 4),
            "conservation": conserved,
            "pass": uplift > 0 and conserved,
        },
    }


def main(argv=None):
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(
        description="fleet region simulation smoke gate")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_fleet.json")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output path for --json")
    parser.add_argument("--shards", type=int, default=2,
                        help="engine shards per region")
    args = parser.parse_args(argv)

    report = _smoke_report(shards=args.shards)
    for mix in report["mixes"]:
        print(f"{mix['arrival']:>8}: capacity "
              f"{mix['capacity_base_inv_s']:>9.1f} -> "
              f"{mix['capacity_jb_inv_s']:>9.1f} inv/s "
              f"({mix['uplift'] * 100:+.1f}%), "
              f"p99 {mix['p99_base_ms']:.1f} -> {mix['p99_jb_ms']:.1f} ms")
    gate = report["gate"]
    verdict = "PASS" if gate["pass"] else "FAIL"
    print(f"gate: geomean uplift {gate['geomean_uplift'] * 100:+.1f}% > 0, "
          f"conservation={gate['conservation']} ... {verdict} "
          f"({report['seconds']:.1f}s)")
    if args.json:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if not gate["pass"]:
        sys.exit(1)


if __name__ == "__main__":
    main()
