"""Benchmark: regenerate Table 3 (MPKI reduction, Skylake vs. Broadwell)."""

from conftest import run_once

from repro.experiments import table3_mpki_reduction

#: A balanced subset keeps the two-machine sweep affordable.
FUNCTIONS = ["Fib-P", "Email-P", "AES-N", "Pay-N",
             "Auth-G", "ProdL-G", "Rate-G", "User-G"]


def test_table3_mpki_reduction(benchmark, bench_cfg, report):
    result = run_once(benchmark, table3_mpki_reduction.run, bench_cfg,
                      functions=FUNCTIONS)
    report("table3_mpki_reduction", table3_mpki_reduction.render(result))
    sky = result.row("skylake")
    bdw = result.row("broadwell")
    # Paper: LLC instruction misses nearly eliminated on both platforms
    # (-86% / -91%).
    assert sky.llc_inst_reduction_pct < -70
    assert bdw.llc_inst_reduction_pct < -70
    # Paper: L2 misses drop -74% on Skylake but only -15% on Broadwell
    # (conflict evictions in the small 256KB L2).
    assert sky.l2_inst_reduction_pct < -60
    assert -40 < bdw.l2_inst_reduction_pct < -3
    # Paper: the Broadwell speedup (12%) trails Skylake (18.7%).
    assert bdw.jukebox_geomean_speedup < sky.jukebox_geomean_speedup
