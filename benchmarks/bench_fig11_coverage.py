"""Benchmark: regenerate Figure 11 (miss coverage / overprediction)."""

from conftest import run_once

from repro.experiments import fig11_coverage
from repro.workloads.profiles import LANG_GO, LANG_NODEJS, LANG_PYTHON


def test_fig11_coverage(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig11_coverage.run, bench_cfg)
    report("fig11_coverage", fig11_coverage.render(result))
    assert len(result.entries) == 20
    # Paper: Go coverage 75-90%; Python/NodeJS 48-74% (metadata truncation).
    go = result.mean_coverage(LANG_GO)
    py = result.mean_coverage(LANG_PYTHON)
    node = result.mean_coverage(LANG_NODEJS)
    assert go > 0.75
    assert go > py and go > node
    # Paper: overprediction averages ~10% with a 15.8% maximum.
    assert result.mean_overprediction < 0.20
    assert result.max_overprediction < 0.35
    # The big Python/NodeJS functions exceed the 16KB budget.
    truncated = [e.abbrev for e in result.entries if e.metadata_truncated]
    assert any(abbrev.endswith(("-P", "-N")) for abbrev in truncated)
