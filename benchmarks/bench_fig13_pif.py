"""Benchmark: regenerate Figure 13 (PIF comparison)."""

from conftest import run_once

from repro.experiments import fig13_pif


def test_fig13_pif_comparison(benchmark, bench_cfg, report):
    result = run_once(benchmark, fig13_pif.run, bench_cfg)
    report("fig13_pif", fig13_pif.render(result))
    pif = result.geomean("pif")
    ideal = result.geomean("pif_ideal")
    jukebox = result.geomean("jukebox")
    combo = result.geomean("jukebox_pif_ideal")
    # Paper ordering: PIF (+2.4%) < PIF-ideal (+6.7%) < Jukebox (+18.7%)
    # <= Jukebox + PIF-ideal.
    assert -0.02 < pif < 0.10
    assert pif < ideal < jukebox
    assert combo >= jukebox * 0.95
