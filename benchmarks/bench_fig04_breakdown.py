"""Benchmark: regenerate Figure 4 (mean CPI breakdown vs. reference)."""

from conftest import run_once

from repro.experiments import fig02_topdown, fig04_cpi_breakdown


def test_fig04_mean_breakdown(benchmark, fig2_result, report):
    result = run_once(benchmark, fig04_cpi_breakdown.run, fig2=fig2_result)
    report("fig04_cpi_breakdown", fig04_cpi_breakdown.render(result))
    # Paper: fetch latency is 56% of the extra stall cycles.
    assert 0.40 < result.fetch_latency_share_of_extra < 0.80
    assert result.normalized_interleaved > 1.3
