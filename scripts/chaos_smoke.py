#!/usr/bin/env python
"""CI chaos smoke: the engine survives kills, hangs, torn writes, SIGKILL.

A fast (~seconds) end-to-end drill run by ``scripts/check.sh`` after the
lint and bench gates.  Four scenarios, each asserting *byte-identical*
canonical-JSON results against an undisturbed serial baseline:

1. **worker chaos** -- a pooled sweep with an injected worker kill, an
   unbounded hang (reaped by the job-deadline guard), and a transient
   failure, all recovered by the retry policy;
2. **disk chaos** -- torn cache entries and an injected ``ENOSPC`` store
   failure; the sweep degrades gracefully and recomputes damaged cells;
3. **fsck** -- seeded corruption is detected by an audit pass and fully
   repaired by ``python -m repro.engine fsck --repair``;
4. **crash recovery** -- a serial driver subprocess is SIGKILLed after a
   seeded number of checkpoints, then rerun: the rerun resumes from the
   incremental cache and reproduces the baseline byte-for-byte;
5. **fleet crash recovery** -- the same drill at region scale: a fleet
   region sweep (``tests.fleet.fleet_driver``) is SIGKILLed mid-shard,
   and the rerun must serve the checkpointed shards warm and aggregate
   to a byte-identical region result.
6. **spectrum crash recovery** -- the cold→warm spectrum sweep
   (``tests.coldstart.spectrum_driver``) is SIGKILLed mid-cell, and the
   rerun must serve the checkpointed cells warm and print a
   byte-identical grid -- the engine cache makes cold-start cells, with
   their stateful page record/replay, as resumable as everything else.

Run from the repo root with ``PYTHONPATH=src`` (check.sh does both).
Exit status 0 on success; any assertion failure is a real regression in
the failure-handling stack.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import tempfile
import time
import warnings
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))  # for tests.engine.* providers
sys.path.insert(0, str(ROOT / "src"))

from repro.engine import FailurePolicy, configure, sweep_outcomes  # noqa: E402
from repro.engine.fsck import fsck  # noqa: E402
from tests.engine.crash_driver import make_jobs, result_line  # noqa: E402

COUNT = 6
SEED = 20220618  # the paper's conference date; any fixed value works


def baseline() -> str:
    """The undisturbed serial ground truth."""
    with configure():
        values = [o.value for o in sweep_outcomes(make_jobs(COUNT))]
    return result_line(values)


def scenario_worker_chaos(expected: str, tmp: Path) -> None:
    faults = ["kill:#1", "hang:#2", "fail:#3"]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with configure(jobs=2, cache_dir=tmp / "worker-chaos",
                       clock=time.monotonic, job_timeout_s=5.0,
                       policy=FailurePolicy.retrying(retries=2),
                       faults=faults) as ctx:
            outcomes = sweep_outcomes(make_jobs(COUNT))
    assert all(o.ok for o in outcomes), [o.describe() for o in outcomes]
    got = result_line([o.value for o in outcomes])
    assert got == expected, "worker chaos changed results"
    print(f"  worker chaos ok ({ctx.stats.retries} retries, "
          f"{len(faults)} faults injected)")


def scenario_disk_chaos(expected: str, tmp: Path) -> None:
    cache_dir = tmp / "disk-chaos"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        # Cells checkpoint in order, and the ENOSPC degrades every later
        # store -- so both torn cells must land before it fires.
        with configure(cache_dir=cache_dir,
                       faults=["torn:#0", "torn:#1", "enospc:#2"]) as ctx:
            first = sweep_outcomes(make_jobs(COUNT))
            # Rerun inside the same context: torn entries quarantine and
            # recompute; the store path stays degraded after the ENOSPC.
            second = sweep_outcomes(make_jobs(COUNT))
    for outcomes in (first, second):
        got = result_line([o.value for o in outcomes])
        assert got == expected, "disk chaos changed results"
    assert ctx.cache.stats.quarantined >= 2, "torn entries not quarantined"
    assert ctx.cache.stores_disabled, "ENOSPC did not degrade stores"
    print(f"  disk chaos ok ({ctx.cache.stats.quarantined} quarantined, "
          f"stores degraded after ENOSPC)")


def scenario_fsck(expected: str, tmp: Path) -> None:
    cache_dir = tmp / "fsck"
    with configure(cache_dir=cache_dir):
        sweep_outcomes(make_jobs(COUNT))
    # Seed damage underneath: truncate one entry, garbage another.
    entries = sorted(p for p in cache_dir.rglob("*.pkl"))
    entries[0].write_bytes(entries[0].read_bytes()[:-7])
    entries[1].write_bytes(b"not a cache entry")
    report = fsck(cache_dir)
    assert not report.clean and len(report.problems) == 2, report.describe()
    repaired = fsck(cache_dir, repair=True)
    assert repaired.clean and repaired.quarantined == 2, repaired.describe()
    with configure(cache_dir=cache_dir) as ctx:
        outcomes = sweep_outcomes(make_jobs(COUNT))
    got = result_line([o.value for o in outcomes])
    assert got == expected, "fsck repair changed results"
    assert ctx.stats.hits == COUNT - 2 and ctx.stats.misses == 2
    print(f"  fsck ok (2 defects found, 2 quarantined, resume warm)")


def scenario_crash_recovery(expected: str, tmp: Path) -> None:
    cache_dir = tmp / "crash"
    kill_after = random.Random(SEED).randrange(1, COUNT)
    cmd = [sys.executable, "-m", "tests.engine.crash_driver",
           "--cache-dir", str(cache_dir), "--count", str(COUNT)]
    env = dict(os.environ,
               PYTHONPATH=f"{ROOT / 'src'}{os.pathsep}{ROOT}")
    victim = subprocess.Popen(cmd, cwd=ROOT, env=env,
                              stdout=subprocess.PIPE, text=True)
    seen = 0
    for line in victim.stdout:
        if line.startswith("cell "):
            seen += 1
            if seen >= kill_after:
                victim.send_signal(signal.SIGKILL)
                break
    victim.wait()
    assert victim.returncode == -signal.SIGKILL
    rerun = subprocess.run(cmd, cwd=ROOT, env=env, capture_output=True,
                           text=True, check=True)
    lines = rerun.stdout.strip().splitlines()
    got = next(l for l in lines if l.startswith("RESULT "))
    stats = next(l for l in lines if l.startswith("STATS "))
    assert got == expected, "post-SIGKILL resume changed results"
    hits = int(stats.split("hits=")[1].split()[0])
    assert hits >= kill_after, f"resume re-simulated cached cells: {stats}"
    print(f"  crash recovery ok (SIGKILL after {kill_after}/{COUNT} "
          f"checkpoints, resume byte-identical, {hits} cells from cache)")


def scenario_fleet_crash(tmp: Path) -> None:
    from tests.fleet.fleet_driver import (
        DRILL_SHARDS,
        drill_config,
        result_line as fleet_result_line,
    )
    from repro.fleet.region import shard_jobs

    # Undisturbed in-process ground truth (serial, uncached).
    with configure():
        outcomes = sweep_outcomes(shard_jobs(drill_config(SEED % 97),
                                             shards=DRILL_SHARDS))
    expected = fleet_result_line(
        [node for o in outcomes for node in o.value])

    cache_dir = tmp / "fleet-crash"
    kill_after = random.Random(SEED + 1).randrange(1, DRILL_SHARDS)
    cmd = [sys.executable, "-m", "tests.fleet.fleet_driver",
           "--cache-dir", str(cache_dir), "--seed", str(SEED % 97)]
    env = dict(os.environ,
               PYTHONPATH=f"{ROOT / 'src'}{os.pathsep}{ROOT}")
    victim = subprocess.Popen(cmd, cwd=ROOT, env=env,
                              stdout=subprocess.PIPE, text=True)
    seen = 0
    for line in victim.stdout:
        if line.startswith("shard "):
            seen += 1
            if seen >= kill_after:
                victim.send_signal(signal.SIGKILL)
                break
    victim.wait()
    assert victim.returncode == -signal.SIGKILL
    rerun = subprocess.run(cmd, cwd=ROOT, env=env, capture_output=True,
                           text=True, check=True)
    lines = rerun.stdout.strip().splitlines()
    got = next(l for l in lines if l.startswith("RESULT "))
    stats = next(l for l in lines if l.startswith("STATS "))
    assert got == expected, "post-SIGKILL fleet resume changed the region"
    hits = int(stats.split("hits=")[1].split()[0])
    assert hits >= kill_after, f"fleet resume re-simulated shards: {stats}"
    print(f"  fleet crash recovery ok (SIGKILL after {kill_after}/"
          f"{DRILL_SHARDS} shards, region byte-identical, "
          f"{hits} shards from cache)")


def scenario_spectrum_crash(tmp: Path) -> None:
    from tests.coldstart.spectrum_driver import (
        drill_jobs,
        result_line as spectrum_result_line,
    )

    # Undisturbed in-process ground truth (serial, uncached).
    jobs = drill_jobs(SEED % 89)
    with configure():
        outcomes = sweep_outcomes(jobs)
    expected = spectrum_result_line([dict(o.value) for o in outcomes])

    cache_dir = tmp / "spectrum-crash"
    kill_after = random.Random(SEED + 2).randrange(1, len(jobs))
    cmd = [sys.executable, "-m", "tests.coldstart.spectrum_driver",
           "--cache-dir", str(cache_dir), "--seed", str(SEED % 89)]
    env = dict(os.environ,
               PYTHONPATH=f"{ROOT / 'src'}{os.pathsep}{ROOT}")
    victim = subprocess.Popen(cmd, cwd=ROOT, env=env,
                              stdout=subprocess.PIPE, text=True)
    seen = 0
    for line in victim.stdout:
        if line.startswith("cell "):
            seen += 1
            if seen >= kill_after:
                victim.send_signal(signal.SIGKILL)
                break
    victim.wait()
    assert victim.returncode == -signal.SIGKILL
    rerun = subprocess.run(cmd, cwd=ROOT, env=env, capture_output=True,
                           text=True, check=True)
    lines = rerun.stdout.strip().splitlines()
    got = next(l for l in lines if l.startswith("RESULT "))
    stats = next(l for l in lines if l.startswith("STATS "))
    assert got == expected, "post-SIGKILL spectrum resume changed the grid"
    hits = int(stats.split("hits=")[1].split()[0])
    assert hits >= kill_after, f"spectrum resume re-simulated cells: {stats}"
    print(f"  spectrum crash recovery ok (SIGKILL after {kill_after}/"
          f"{len(jobs)} cells, grid byte-identical, {hits} cells from "
          f"cache)")


def main() -> int:
    expected = baseline()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp = Path(tmp)
        scenario_worker_chaos(expected, tmp)
        scenario_disk_chaos(expected, tmp)
        scenario_fsck(expected, tmp)
        scenario_crash_recovery(expected, tmp)
        scenario_fleet_crash(tmp)
        scenario_spectrum_crash(tmp)
    print("chaos smoke: all scenarios byte-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
