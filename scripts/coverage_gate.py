#!/usr/bin/env python
"""Branch-coverage ratchet over the tier-1 suite.

Runs pytest under ``coverage`` with branch measurement and fails (exit 1)
if total branch-inclusive coverage of ``src/repro`` drops below the
committed floor in ``coverage-baseline.json``.  The floor is a ratchet,
not a target: it is set conservatively below the measured value so
legitimate refactors don't thrash it, and should only ever move *up*
(re-measure with ``--measure`` and commit the new floor once a PR's
tests raise it).

The container this repo grows in does not guarantee the ``coverage``
package (and must not install it), so the gate degrades gracefully: when
``coverage`` is missing the script prints a skip notice and exits 0.
CI images that do carry ``coverage`` enforce the floor for everyone.

Usage::

    python scripts/coverage_gate.py            # enforce the floor
    python scripts/coverage_gate.py --fast     # floor over the fast suite
    python scripts/coverage_gate.py --measure  # print measured total only
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "coverage-baseline.json"

#: Suites too slow (or subprocess-shaped, hence invisible to in-process
#: coverage) to belong in the ratchet measurement.
FAST_IGNORES = ("--ignore=tests/integration",
                "--ignore=tests/test_golden_figures.py")


def coverage_available() -> bool:
    return importlib.util.find_spec("coverage") is not None


def load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


def measure(fast: bool) -> float:
    """Run the suite under coverage and return total percent covered."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(ROOT / "src"), env.get("PYTHONPATH")) if p)
    data_file = ROOT / ".coverage.gate"
    run_cmd = [sys.executable, "-m", "coverage", "run", "--branch",
               f"--data-file={data_file}", "--source=repro",
               "-m", "pytest", "-q"]
    if fast:
        run_cmd += list(FAST_IGNORES)
    subprocess.run(run_cmd, cwd=ROOT, env=env, check=True)
    report = subprocess.run(
        [sys.executable, "-m", "coverage", "json",
         f"--data-file={data_file}", "-o", "-"],
        cwd=ROOT, env=env, check=True, capture_output=True, text=True)
    data_file.unlink(missing_ok=True)
    payload = json.loads(report.stdout)
    return float(payload["totals"]["percent_covered"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="scripts/coverage_gate.py")
    parser.add_argument("--fast", action="store_true",
                        help="measure over the fast (unit) suite only")
    parser.add_argument("--measure", action="store_true",
                        help="print the measured total and exit 0")
    args = parser.parse_args(argv)

    if not coverage_available():
        print("coverage gate: SKIPPED (the 'coverage' package is not "
              "installed in this environment; the floor in "
              "coverage-baseline.json is enforced where it is)")
        return 0

    baseline = load_baseline()
    floor = float(baseline["branch_coverage_floor_percent"])
    total = measure(fast=args.fast)
    if args.measure:
        print(f"coverage gate: measured {total:.2f}% "
              f"(committed floor {floor:.2f}%)")
        return 0
    if total < floor:
        print(f"coverage gate: FAIL -- branch coverage {total:.2f}% is "
              f"below the committed floor {floor:.2f}% "
              f"(coverage-baseline.json). Add tests or, if the drop is "
              f"justified, lower the floor in the same PR with a "
              f"rationale.", file=sys.stderr)
        return 1
    print(f"coverage gate: ok ({total:.2f}% >= floor {floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
