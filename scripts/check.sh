#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it merges.
#
#   scripts/check.sh           # full suite + lint
#   scripts/check.sh --fast    # skip the slow integration/golden suites
#
# Order: the determinism linter first (it is seconds and catches whole
# classes of nondeterminism before any simulation runs), then the test
# suite, whose golden-figure and differential batteries byte-compare
# simulator output against the committed snapshots under tests/golden/.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== repro.lint (determinism rules, src/) =="
python -m repro.lint src/

if [[ "${1:-}" == "--fast" ]]; then
    echo "== pytest (fast: unit suites only) =="
    python -m pytest -q \
        --ignore=tests/integration \
        --ignore=tests/test_golden_figures.py
else
    echo "== pytest (full tier-1 suite, incl. golden-trace comparator) =="
    python -m pytest -q
fi

echo "OK: lint + tests passed"
