#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it merges.
#
#   scripts/check.sh           # full suite + lint
#   scripts/check.sh --fast    # skip the slow integration/golden suites
#
# Order: the determinism linter first (it is seconds and catches whole
# classes of nondeterminism before any simulation runs), then the test
# suite, whose golden-figure and differential batteries byte-compare
# simulator output against the committed snapshots under tests/golden/.
#
# The lint step runs the full analyzer -- per-file rules over src/ and
# the auxiliary targets (tests/, benchmarks/, examples/), plus the
# whole-program passes (taint flow, REPRO009/REPRO010) -- emitting the
# canonical JSON report.  Exit status 1 means a finding not grandfathered
# in lint-baseline.json; run `python -m repro.lint` locally for the
# human-readable version, or `python -m repro.lint --changed-only` for a
# quick diff-scoped pass while iterating.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== repro.lint (whole-program analyzer, --format json) =="
python -m repro.lint --format json > /tmp/repro-lint-report.json || {
    status=$?
    cat /tmp/repro-lint-report.json
    echo "repro-lint: non-baselined findings (full report above)" >&2
    exit "$status"
}
python - <<'EOF'
import json
doc = json.load(open("/tmp/repro-lint-report.json"))
s = doc["summary"]
print(f"repro-lint: clean ({doc['files']} files, "
      f"{s['grandfathered']} grandfathered)")
EOF

echo "== backend throughput gate (benchmarks/bench_engine.py --json) =="
# Fails (exit 1) if the columnar backend's speedup over the scalar
# reference drops below 5x on the instruction-fetch gate cell; the full
# cell matrix lands in benchmarks/results/BENCH_engine.json.
mkdir -p benchmarks/results
python benchmarks/bench_engine.py --json \
    --out benchmarks/results/BENCH_engine.json

echo "== fleet smoke gate (benchmarks/bench_fleet.py --json) =="
# Simulates a small region across two arrival mixes with Jukebox off/on;
# fails if the geomean capacity uplift is not positive or any region
# violates arrival conservation (arrivals != served + dropped).
python benchmarks/bench_fleet.py --json \
    --out benchmarks/results/BENCH_fleet.json

echo "== chaos smoke (scripts/chaos_smoke.py) =="
# End-to-end failure drill: injected worker kills/hangs (reaped by the
# deadline guard), torn cache writes and ENOSPC (quarantine + degrade),
# an fsck repair pass, and a SIGKILLed driver resuming from the
# incremental cache -- every scenario must reproduce the undisturbed
# baseline byte-for-byte.
python scripts/chaos_smoke.py

if [[ "${1:-}" == "--fast" ]]; then
    echo "== pytest (fast: unit suites only) =="
    python -m pytest -q \
        --ignore=tests/integration \
        --ignore=tests/test_golden_figures.py
else
    echo "== pytest (full tier-1 suite, incl. golden-trace comparator) =="
    python -m pytest -q
fi

echo "== coverage gate (scripts/coverage_gate.py) =="
# Branch-coverage ratchet against the floor in coverage-baseline.json.
# Skips cleanly (exit 0) where the 'coverage' package is not installed;
# when skipped the pytest run above has already gated correctness.
if [[ "${1:-}" == "--fast" ]]; then
    python scripts/coverage_gate.py --fast
else
    python scripts/coverage_gate.py
fi

echo "OK: lint + tests passed"
