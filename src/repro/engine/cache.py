"""Content-addressed on-disk memoization of simulation results.

Entries are framed pickled payloads stored under a two-level fanout of
their :meth:`~repro.engine.job.Job.key` (``<root>/<key[:2]>/<key>.pkl``).
The key already encodes every input plus the simulator's source digest,
so the cache never needs an explicit invalidation protocol: a changed
input or a changed simulator simply addresses a different entry.

Durability model (the crash/chaos contract):

* **Framed entries.**  Every entry is a one-line header carrying the
  engine :data:`~repro.engine.job.SCHEMA_VERSION` plus a SHA-256 digest
  and byte length of the pickled payload, followed by the payload
  itself.  A torn write (driver SIGKILLed mid-``os.replace``, disk
  fault, truncation) fails the digest/length check and is *quarantined*,
  never silently served.
* **Atomic writes.**  Temp file + ``os.replace``, so concurrent sweeps
  -- including parallel workers of *different* runs sharing one cache
  directory -- race benignly: last writer wins with an identical
  payload.  Orphaned temp files from crashed writers are reaped when the
  cache is next opened.
* **Quarantine-and-recompute.**  Damaged entries are moved to
  ``<root>/quarantine/`` (evidence for ``python -m repro.engine fsck``)
  and treated as misses, so the cell is transparently recomputed.
* **Advisory locking.**  :class:`CacheLock` holds a cross-process
  ``flock`` on ``<root>/.lock``: sweeps take it *shared* (any number may
  cooperate on one root), ``fsck``/destructive maintenance takes it
  *exclusive* so it never races a live sweep.
* **Store degradation.**  An I/O failure while storing (``ENOSPC``,
  ``EACCES``, any ``OSError``) degrades the cache to no-store mode with
  a single warning and a ``cache.store_failed`` trace event instead of
  aborting the sweep; lookups keep working.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import shutil
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple, Union

from repro.engine.job import SCHEMA_VERSION
from repro.errors import ConfigurationError, ReproError
from repro.obs import records as _obs

try:  # POSIX advisory file locks; gated so exotic platforms degrade
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    _fcntl = None


class CacheEntryError(ReproError):
    """An on-disk cache entry is damaged or from an incompatible layout."""


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed but could not be decoded (quarantined).
    errors: int = 0
    #: Damaged entries moved to the quarantine directory.
    quarantined: int = 0
    #: Stores that failed with an I/O error (the cache then degrades).
    store_failures: int = 0
    #: Orphaned temp files reaped when the cache was opened.
    reaped_tmp: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)


#: Exceptions that mean "this entry is unusable", not "the run is broken":
#: truncated writes, pickles from a removed class, protocol drift.
_STALE_ENTRY_ERRORS = (CacheEntryError, OSError, pickle.UnpicklingError,
                       EOFError, AttributeError, ImportError, IndexError,
                       ValueError)


#: Length of the key prefix carried on trace events -- enough to identify
#: a cell in a report without bloating every record with full digests.
_TRACE_KEY_CHARS = 16

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: Name of the advisory lock file at the cache root.
LOCK_FILE = ".lock"

# -- Entry framing ----------------------------------------------------------

#: First bytes of every framed entry.
ENTRY_MAGIC = b"repro-cache"

#: Version of the frame layout itself (header + payload), independent of
#: the engine schema version the header also carries.
ENTRY_FORMAT = 1


def encode_entry(value: Any) -> bytes:
    """Frame ``value`` as header + pickled payload.

    The header pins the frame format, the engine schema version, and the
    payload's SHA-256 digest and byte length, so readers (and ``fsck``)
    can verify integrity without trusting the pickle itself.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = (f"{ENTRY_MAGIC.decode()} {ENTRY_FORMAT} {SCHEMA_VERSION} "
              f"{digest} {len(payload)}\n").encode()
    return header + payload


def check_entry(blob: bytes) -> bytes:
    """Verify an entry's frame; return the payload bytes.

    Raises :class:`CacheEntryError` naming the defect: bad magic (also
    the pre-frame legacy layout), unknown frame format, engine schema
    mismatch, truncated payload, or digest mismatch (a torn write).
    """
    newline = blob.find(b"\n")
    if newline < 0 or not blob.startswith(ENTRY_MAGIC + b" "):
        raise CacheEntryError("entry has no repro-cache frame header")
    parts = blob[:newline].decode("ascii", "replace").split(" ")
    if len(parts) != 5:
        raise CacheEntryError(f"malformed frame header {parts!r}")
    _, fmt, schema, digest, length = parts
    if fmt != str(ENTRY_FORMAT):
        raise CacheEntryError(f"unsupported entry frame format {fmt!r}")
    if schema != str(SCHEMA_VERSION):
        raise CacheEntryError(
            f"entry written under engine schema {schema}, current is "
            f"{SCHEMA_VERSION}")
    payload = blob[newline + 1:]
    try:
        expected_len = int(length)
    except ValueError:
        raise CacheEntryError(f"non-integer payload length {length!r}") \
            from None
    if len(payload) != expected_len:
        raise CacheEntryError(
            f"payload is {len(payload)} bytes, header promises "
            f"{expected_len} (torn write)")
    if hashlib.sha256(payload).hexdigest() != digest:
        raise CacheEntryError("payload digest mismatch (torn/corrupt write)")
    return payload


def decode_entry(blob: bytes) -> Any:
    """Verify an entry's frame and unpickle its payload."""
    return pickle.loads(check_entry(blob))


# -- Advisory locking -------------------------------------------------------


class CacheLock:
    """A cross-process advisory lock on one cache root.

    Sweeps hold the lock *shared* -- any number of concurrent sweeps may
    cooperate on one cache directory (their atomic writes already
    compose) -- while ``fsck`` and other destructive maintenance hold it
    *exclusive* so they never mutate entries under a live reader.  Backed
    by ``flock`` where available; on platforms without ``fcntl`` the lock
    degrades to a no-op (the atomic-write protocol alone is still safe,
    only maintenance loses its mutual exclusion).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / LOCK_FILE
        self._fh: Optional[Any] = None
        self.mode: Optional[str] = None

    @property
    def held(self) -> bool:
        return self._fh is not None

    def acquire(self, exclusive: bool = False, blocking: bool = True) -> bool:
        """Take the lock; returns False iff non-blocking and contended.

        ``blocking=False`` is the sanctioned way to *probe* for live
        users of a cache root (``fsck`` refuses to run exclusive work
        while a sweep holds the shared lock).
        """
        if self._fh is not None:
            raise ConfigurationError(
                f"cache lock {self.path} is already held ({self.mode})")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+b")
        if _fcntl is not None:
            flags = _fcntl.LOCK_EX if exclusive else _fcntl.LOCK_SH
            if not blocking:
                flags |= _fcntl.LOCK_NB
            try:
                _fcntl.flock(fh.fileno(), flags)
            except OSError:
                fh.close()
                return False
        self._fh = fh
        self.mode = "exclusive" if exclusive else "shared"
        return True

    def release(self) -> None:
        if self._fh is None:
            return
        if _fcntl is not None:
            with contextlib.suppress(OSError):
                _fcntl.flock(self._fh.fileno(), _fcntl.LOCK_UN)
        self._fh.close()
        self._fh = None
        self.mode = None

    @contextlib.contextmanager
    def holding(self, exclusive: bool = False,
                blocking: bool = True) -> Iterator[bool]:
        """Context-managed :meth:`acquire`/:meth:`release` pair."""
        acquired = self.acquire(exclusive=exclusive, blocking=blocking)
        try:
            yield acquired
        finally:
            if acquired:
                self.release()


def _tmp_pid(path: Path) -> Optional[int]:
    """The writer pid embedded in a temp-file name, or None."""
    parts = path.name.rsplit(".", 2)
    if len(parts) == 3 and parts[2] == "tmp":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned elsewhere: leave its file alone
    return True


class ResultCache:
    """A content-addressed framed-pickle store rooted at one directory.

    ``tracer`` is an optionally injected :class:`repro.obs.tracer.Tracer`;
    when present every lookup/store/quarantine emits a typed trace event.
    The cache never creates a tracer itself -- it observes through
    whatever the engine context wired in.

    :meth:`open` (called by ``engine.configure``) reaps orphaned temp
    files and takes the shared advisory lock; a cache constructed and
    used directly (tests, benchmarks) works without ever being opened.
    """

    def __init__(self, root: Union[str, Path],
                 tracer: Optional[Any] = None) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.tracer = tracer
        self.lock = CacheLock(self.root)
        #: Set once a store fails; later stores become silent no-ops.
        self.stores_disabled = False
        self._store_warned = False
        #: One-shot injected errno for the next store (fault harness).
        self._induced_store_errno: Optional[int] = None

    def _emit(self, kind: str, key: str = "", **fields: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            if key:
                fields["key"] = key[:_TRACE_KEY_CHARS]
            self.tracer.emit(kind, **fields)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def quarantine_path_for(self, key: str) -> Path:
        return self.root / QUARANTINE_DIR / f"{key}.quarantined"

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> "ResultCache":
        """Prepare the root for a sweep: reap orphans, take the lock.

        Reaping only removes temp files whose embedded writer pid is no
        longer alive (or unparseable) -- an in-flight write from a live
        concurrent sweep is left untouched.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        for tmp in sorted(self.root.rglob("*.tmp")):
            pid = _tmp_pid(tmp)
            if pid is not None and pid != os.getpid() and _pid_alive(pid):
                continue
            if pid == os.getpid():
                continue  # our own in-flight write (re-entrant open)
            with contextlib.suppress(OSError):
                tmp.unlink()
                self.stats.reaped_tmp += 1
        if not self.lock.held:
            self.lock.acquire(exclusive=False, blocking=True)
            self._emit(_obs.CACHE_LOCK, mode="shared", action="acquire")
        return self

    def close(self) -> None:
        """Release the advisory lock (lookups/stores remain usable)."""
        if self.lock.held:
            self.lock.release()
            self._emit(_obs.CACHE_LOCK, mode="shared", action="release")

    # -- lookups and stores -------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        path = self.path_for(key)
        try:
            value = decode_entry(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            self._emit(_obs.CACHE_MISS, key)
            return False, None
        except _STALE_ENTRY_ERRORS as exc:
            # Entry is corrupt, torn, or predates a layout change: move it
            # aside so the slot is recomputed and fsck can inspect it.
            self._quarantine(key, path, reason=type(exc).__name__)
            self.stats.misses += 1
            self._emit(_obs.CACHE_MISS, key)
            return False, None
        self.stats.hits += 1
        self._emit(_obs.CACHE_HIT, key)
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store one entry; returns whether the entry landed on disk.

        Any ``OSError`` (``ENOSPC``, ``EACCES``, a vanished mount, ...)
        degrades the cache to no-store mode: one warning, one
        ``cache.store_failed`` trace event, and every later ``put``
        becomes a silent no-op.  The sweep itself continues -- results
        simply stop being memoized.
        """
        if self.stores_disabled:
            return False
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            if self._induced_store_errno is not None:
                code = self._induced_store_errno
                self._induced_store_errno = None
                raise OSError(code, os.strerror(code), str(path))
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(encode_entry(value))
            os.replace(tmp, path)
        except OSError as exc:
            self._degrade_stores(key, exc)
            return False
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        self.stats.stores += 1
        self._emit(_obs.CACHE_STORE, key)
        return True

    def _degrade_stores(self, key: str, exc: OSError) -> None:
        self.stats.store_failures += 1
        self.stores_disabled = True
        self._emit(_obs.CACHE_STORE_FAILED, key,
                   error=type(exc).__name__, detail=str(exc))
        if not self._store_warned:
            self._store_warned = True
            warnings.warn(
                f"result cache at {self.root} cannot store entries "
                f"({type(exc).__name__}: {exc}); continuing without "
                f"memoization for the rest of this run",
                RuntimeWarning, stacklevel=3)

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        self.stats.errors += 1
        destination = self.quarantine_path_for(key)
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            # Quarantine area unusable (e.g. read-only root): fall back
            # to plain eviction so the damaged entry cannot be re-served.
            with contextlib.suppress(OSError):
                path.unlink()
            self._emit(_obs.CACHE_EVICT, key, reason=reason)
            return
        self.stats.quarantined += 1
        self._emit(_obs.CACHE_QUARANTINE, key, reason=reason)

    # -- fault-injection hooks ----------------------------------------------

    def corrupt(self, key: str) -> bool:
        """Overwrite an existing entry with unpicklable garbage.

        A fault-injection hook (``corrupt`` faults in :mod:`repro.faults`)
        used to exercise the quarantine-on-corruption path in :meth:`get`.
        Returns whether an entry existed to corrupt; absent entries are
        left absent so the fault degenerates to an ordinary miss.
        """
        path = self.path_for(key)
        if not path.exists():
            return False
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupted-by-fault-injection")
        self._emit(_obs.CACHE_CORRUPT, key)
        return True

    def tear(self, key: str) -> bool:
        """Truncate an existing entry mid-payload (a simulated torn write).

        The ``torn`` disk fault: the frame header survives but the
        payload is cut short, exactly what a crash between ``write`` and
        ``os.replace`` -- or a dying disk -- leaves behind.  Detected by
        the length/digest check on the next read and by ``fsck``.
        """
        path = self.path_for(key)
        if not path.exists():
            return False
        blob = path.read_bytes()
        with open(path, "wb") as fh:
            fh.write(blob[:max(1, len(blob) // 2)])
        self._emit(_obs.CACHE_CORRUPT, key, reason="torn")
        return True

    def induce_store_error(self, errno_code: int) -> None:
        """Arm a one-shot ``OSError`` for the next :meth:`put`.

        The ``enospc`` disk fault uses this to exercise the real
        store-degradation path without actually filling the disk.
        """
        self._induced_store_errno = errno_code

    # -- hygiene ------------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        quarantine = self.root / QUARANTINE_DIR
        return sum(1 for path in self.root.rglob("*.pkl")
                   if quarantine not in path.parents)

    def clear(self) -> None:
        """Remove every entry (the fanout directories included)."""
        held = self.lock.held
        if held:
            self.close()
        if self.root.exists():
            shutil.rmtree(self.root)
        if held:
            self.open()
