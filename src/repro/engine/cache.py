"""Content-addressed on-disk memoization of simulation results.

Entries are pickled payloads stored under a two-level fanout of their
:meth:`~repro.engine.job.Job.key` (``<root>/<key[:2]>/<key>.pkl``).  The
key already encodes every input plus the simulator's source digest, so
the cache never needs an explicit invalidation protocol: a changed input
or a changed simulator simply addresses a different entry.

Writes are atomic (temp file + ``os.replace``), so concurrent sweeps --
including parallel workers of *different* runs sharing one cache
directory -- race benignly: last writer wins with an identical payload.
Unreadable or stale entries are treated as misses and evicted.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.obs import records as _obs


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed but could not be unpickled (evicted as stale).
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)


#: Exceptions that mean "this entry is unusable", not "the run is broken":
#: truncated writes, pickles from a removed class, protocol drift.
_STALE_ENTRY_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
                       AttributeError, ImportError, IndexError, ValueError)


#: Length of the key prefix carried on trace events -- enough to identify
#: a cell in a report without bloating every record with full digests.
_TRACE_KEY_CHARS = 16


class ResultCache:
    """A content-addressed pickle store rooted at one directory.

    ``tracer`` is an optionally injected :class:`repro.obs.tracer.Tracer`;
    when present every lookup/store/eviction emits a typed trace event.
    The cache never creates a tracer itself -- it observes through
    whatever the engine context wired in.
    """

    def __init__(self, root: Union[str, Path],
                 tracer: Optional[Any] = None) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.tracer = tracer

    def _emit(self, kind: str, key: str, **fields: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, key=key[:_TRACE_KEY_CHARS], **fields)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            self._emit(_obs.CACHE_MISS, key)
            return False, None
        except _STALE_ENTRY_ERRORS:
            # Entry is corrupt or predates a payload-class change: evict it
            # so the slot is rewritten with a fresh simulation result.
            self.stats.errors += 1
            self.stats.misses += 1
            with contextlib.suppress(OSError):
                path.unlink()
            self._emit(_obs.CACHE_EVICT, key, reason="stale")
            self._emit(_obs.CACHE_MISS, key)
            return False, None
        self.stats.hits += 1
        self._emit(_obs.CACHE_HIT, key)
        return True, value

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        self.stats.stores += 1
        self._emit(_obs.CACHE_STORE, key)

    def corrupt(self, key: str) -> bool:
        """Overwrite an existing entry with unpicklable garbage.

        A fault-injection hook (``corrupt`` faults in :mod:`repro.faults`)
        used to exercise the evict-on-corruption path in :meth:`get`.
        Returns whether an entry existed to corrupt; absent entries are
        left absent so the fault degenerates to an ordinary miss.
        """
        path = self.path_for(key)
        if not path.exists():
            return False
        with open(path, "wb") as fh:
            fh.write(b"\x80corrupted-by-fault-injection")
        self._emit(_obs.CACHE_CORRUPT, key)
        return True

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def clear(self) -> None:
        """Remove every entry (the fanout directories included)."""
        if self.root.exists():
            shutil.rmtree(self.root)
