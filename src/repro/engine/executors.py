"""Job execution backends: in-process serial and multiprocessing pools.

Both executors guarantee *submission-order* results, which is what makes
parallel sweeps bit-identical to serial ones: every cell is a pure
function of its :class:`~repro.engine.job.Job`, so only ordering could
differ, and ``Pool.map`` pins that down.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any, List, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.engine.job import Job


def execute_job(job: "Job") -> Any:
    """Run one job in the current process (also the pool-worker entry).

    The job's provider module is imported first so the config-registry
    entry it names exists even in a freshly spawned interpreter.
    """
    importlib.import_module(job.provider)
    from repro.experiments.common import run_config

    return run_config(job.profile, job.machine, job.cfg, job.config,
                      **job.opts_dict())


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    jobs = 1

    def run(self, jobs: Sequence["Job"]) -> List[Any]:
        return [execute_job(job) for job in jobs]


class ProcessExecutor:
    """Fan jobs out over a ``multiprocessing`` pool of ``jobs`` workers."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError(
                f"executor needs at least one worker, got jobs={jobs}")
        self.jobs = jobs

    def run(self, jobs: Sequence["Job"]) -> List[Any]:
        if self.jobs == 1 or len(jobs) <= 1:
            return SerialExecutor().run(jobs)
        import multiprocessing

        workers = min(self.jobs, len(jobs))
        # Small chunks keep long and short cells balanced across workers.
        chunksize = max(1, len(jobs) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            return pool.map(execute_job, jobs, chunksize=chunksize)


def get_executor(jobs: int = 1) -> Any:
    """Executor for ``jobs`` workers (serial when ``jobs == 1``)."""
    if jobs < 1:
        raise ConfigurationError(
            f"executor needs at least one worker, got jobs={jobs}")
    return SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
