"""Job execution backends: in-process serial and multiprocessing pools.

Both executors guarantee *submission-order* results, which is what makes
parallel sweeps bit-identical to serial ones: every cell is a pure
function of its :class:`~repro.engine.job.Job`, so only ordering could
differ, and the index-keyed collection below pins that down.

The pool backend is failure-aware: a ``multiprocessing`` pool silently
*replaces* a crashed worker and leaves that worker's in-flight result
pending forever, so :class:`ProcessExecutor` tracks every worker process
it has ever seen and watches exit codes.  A non-zero exit (a crash or an
injected ``kill`` fault -- a ``maxtasksperchild`` retirement exits 0 and
is ignored) abandons the pool: finished results are kept, the unfinished
frontier is re-dispatched to a fresh pool, and after
``max_pool_failures`` crashes the executor degrades to serial in-process
execution with a warning rather than crash-looping.  Because cells are
pure, a cell that ran twice (in-flight during a crash, then re-run)
returns an identical value, and outcomes still come back in submission
order.

Both executors additionally honour an armed
:class:`~repro.engine.guard.GuardState` (``run_tasks(..., guard=)``):
the pool watchdog kills pools whose dispatches exceed the per-job
deadline (the hung cell becomes a transient
:class:`~repro.engine.guard.JobTimeoutError` outcome, the rest of the
frontier is re-dispatched -- a *deadline* kill never counts toward
``max_pool_failures``, since degrading a hang-prone sweep to serial
would remove the only mechanism able to interrupt it), and both
executors fail not-yet-started cells fast once the sweep deadline
expires.  Deadline checks read time exclusively through the guard's
injected clock.
"""

from __future__ import annotations

import importlib
import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.engine.resilience import JobOutcome, Task, execute_task
from repro.errors import ConfigurationError
from repro.obs import records as _obs

if TYPE_CHECKING:
    from repro.engine.job import Job

#: Worker processes are recycled after this many cells unless overridden,
#: bounding per-worker memory growth across long sweeps.
DEFAULT_MAXTASKSPERCHILD = 32

#: Pool crashes tolerated before degrading to serial execution.
DEFAULT_MAX_POOL_FAILURES = 2

#: Seconds between worker-liveness checks while draining a pool.
_POLL_INTERVAL_S = 0.05

#: Classes whose instances cross the worker pickle boundary, as
#: ``"module:qualname"``.  ``Task`` (and the ``Job`` it carries, plus any
#: attached ``FaultPlan``) is pickled *to* workers by ``apply_async``;
#: ``JobOutcome``/``JobError`` are pickled *back*.  Lint rule REPRO010
#: audits exactly this list for unpicklable members, so a class that
#: starts crossing the boundary must be added here to stay checked.
PICKLE_BOUNDARY = (
    "repro.engine.job:Job",
    "repro.engine.resilience:Task",
    "repro.engine.resilience:JobOutcome",
    "repro.engine.resilience:JobError",
    "repro.faults:FaultSpec",
    "repro.faults:FaultPlan",
)

OutcomeCallback = Optional[Callable[[Task, JobOutcome], None]]


def execute_job(job: "Job") -> Any:
    """Run one job in the current process (also the pool-worker entry).

    The job's provider module is imported first so the config-registry
    entry it names exists even in a freshly spawned interpreter.  An
    unimportable provider is a configuration error naming the job, not a
    bare ``ImportError`` pickled back from a worker.
    """
    try:
        importlib.import_module(job.provider)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import provider module {job.provider!r} for job "
            f"{job.describe()!r}: {exc}") from exc
    from repro.experiments.common import run_config

    return run_config(job.profile, job.machine, job.cfg, job.config,
                      **job.opts_dict())


def _tasks_for(jobs: Sequence["Job"]) -> List[Task]:
    return [Task(job=job, index=i) for i, job in enumerate(jobs)]


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    jobs = 1

    def run(self, jobs: Sequence["Job"]) -> List[Any]:
        """Legacy value API: fail-fast, exceptions propagate untouched."""
        return [execute_job(job) for job in jobs]

    def run_tasks(self, tasks: Sequence[Task],
                  on_outcome: OutcomeCallback = None,
                  guard: Optional[Any] = None) -> List[JobOutcome]:
        outcomes: List[JobOutcome] = []
        for task in tasks:
            # The sweep deadline is checked *between* cells: serial
            # execution cannot preempt a running cell (only the pool
            # watchdog can kill a hung dispatch), but it never starts a
            # new cell against an expired budget.
            if guard is not None and guard.sweep_expired():
                outcome = guard.sweep_deadline_outcome(task)
            else:
                outcome = execute_task(task)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(task, outcome)
        return outcomes


class ProcessExecutor:
    """Fan jobs out over a ``multiprocessing`` pool of ``jobs`` workers."""

    def __init__(self, jobs: int,
                 maxtasksperchild: Optional[int] = DEFAULT_MAXTASKSPERCHILD,
                 max_pool_failures: int = DEFAULT_MAX_POOL_FAILURES,
                 tracer: Optional[Any] = None) -> None:
        if jobs < 1:
            raise ConfigurationError(
                f"executor needs at least one worker, got jobs={jobs}")
        if maxtasksperchild is not None and maxtasksperchild < 1:
            raise ConfigurationError(
                f"maxtasksperchild must be >= 1 (or None), got "
                f"{maxtasksperchild}")
        if max_pool_failures < 1:
            raise ConfigurationError(
                f"max_pool_failures must be >= 1, got {max_pool_failures}")
        self.jobs = jobs
        self.maxtasksperchild = maxtasksperchild
        self.max_pool_failures = max_pool_failures
        #: Optionally injected tracer for pool-lifecycle events; lives on
        #: the parent side only (workers never see it), so the executor
        #: stays picklable-free of sinks.
        self.tracer = tracer
        #: Pools abandoned after a worker crash (observable by tests and
        #: the runner's failure footer).
        self.pool_restarts = 0

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, **fields)

    def run(self, jobs: Sequence["Job"]) -> List[Any]:
        """Legacy value API: unwraps outcomes, re-raising the first error."""
        return [outcome.unwrap() for outcome in self.run_tasks(_tasks_for(jobs))]

    def run_tasks(self, tasks: Sequence[Task],
                  on_outcome: OutcomeCallback = None,
                  guard: Optional[Any] = None) -> List[JobOutcome]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().run_tasks(tasks, on_outcome=on_outcome,
                                              guard=guard)
        outcomes: Dict[int, JobOutcome] = {}
        pending: Dict[int, Task] = {task.index: task for task in tasks}
        crashes = 0
        while pending:
            abandon = self._drain_pool(pending, outcomes, on_outcome, guard)
            if abandon is None:
                break
            self.pool_restarts += 1
            pending = {index: task.redispatch()
                       for index, task in pending.items()}
            if abandon == "deadline":
                # A deadline kill is the guard working as designed, not a
                # pool failure: it never counts toward degrade-to-serial
                # (serial execution could not interrupt the next hang).
                redispatch = (f"; re-dispatching the {len(pending)} "
                              f"unfinished cell(s) to a fresh pool"
                              if pending else "")
                warnings.warn(
                    f"sweep guard killed a pool to reap a hung "
                    f"worker{redispatch}", RuntimeWarning, stacklevel=2)
                continue
            crashes += 1
            self._emit(_obs.POOL_DEATH, crashes=crashes,
                       pending=len(pending))
            if crashes >= self.max_pool_failures:
                self._emit(_obs.POOL_DEGRADE, crashes=crashes,
                           pending=len(pending))
                warnings.warn(
                    f"sweep pool lost a worker {crashes} time(s); degrading "
                    f"to serial execution for the {len(pending)} unfinished "
                    f"cell(s)", RuntimeWarning, stacklevel=2)
                rest = [pending[index] for index in sorted(pending)]
                for task, outcome in zip(
                        rest, SerialExecutor().run_tasks(
                            rest, on_outcome=on_outcome, guard=guard)):
                    outcomes[task.index] = outcome
                pending.clear()
                break
            warnings.warn(
                f"sweep pool lost a worker; re-dispatching the "
                f"{len(pending)} unfinished cell(s) to a fresh pool",
                RuntimeWarning, stacklevel=2)
        return [outcomes[task.index] for task in tasks]

    def _drain_pool(self, pending: Dict[int, Task],
                    outcomes: Dict[int, JobOutcome],
                    on_outcome: OutcomeCallback,
                    guard: Optional[Any] = None) -> Optional[str]:
        """Run one pool over the open frontier.

        Returns why the pool was abandoned with work still pending --
        ``"crash"`` (a worker died) or ``"deadline"`` (the guard killed a
        hung dispatch) -- or ``None`` when nothing is left to dispatch.
        Finished results are collected incrementally either way.
        """
        import multiprocessing

        tasks = [pending[index] for index in sorted(pending)]
        workers = min(self.jobs, len(tasks))
        pool = multiprocessing.Pool(processes=workers,
                                    maxtasksperchild=self.maxtasksperchild)
        try:
            asyncs = [(task, pool.apply_async(execute_task, (task,)))
                      for task in tasks]
            # Job budgets are measured from pool submission (queueing
            # included): the watchdog cannot see *which* worker runs a
            # given dispatch, only that the dispatch has not come back.
            dispatched_at = ({index: guard.now() for index in pending}
                             if guard is not None else {})
            seen_workers: List[Any] = []

            def collect_ready() -> None:
                for task, result in asyncs:
                    if task.index in pending and result.ready():
                        outcome = result.get(_POLL_INTERVAL_S)
                        outcomes[task.index] = outcome
                        del pending[task.index]
                        if on_outcome is not None:
                            on_outcome(task, outcome)

            while True:
                collect_ready()
                if not pending:
                    return None
                if guard is not None:
                    if guard.sweep_expired():
                        # Budget for the whole batch is gone: fail every
                        # unfinished cell fast, kill the pool, dispatch
                        # nothing further.
                        self._emit(_obs.WORKER_KILL, reason="sweep-deadline",
                                   pending=len(pending))
                        for index in sorted(pending):
                            task = pending.pop(index)
                            outcome = guard.sweep_deadline_outcome(task)
                            outcomes[index] = outcome
                            if on_outcome is not None:
                                on_outcome(task, outcome)
                        return None
                    expired = guard.expired_jobs(dispatched_at, pending)
                    if expired:
                        # FIFO dispatch means the cells actually *on*
                        # workers are the first ``workers`` entries of
                        # the pending frontier; later expired cells are
                        # merely starved in the queue behind a hung
                        # worker, and are re-dispatched with fresh
                        # budgets instead of being blamed.
                        running = set(sorted(pending)[:workers])
                        victims = ([index for index in expired
                                    if index in running] or expired)
                        now = guard.now()
                        for index in victims:
                            task = pending.pop(index)
                            outcome = guard.timeout_outcome(
                                task, elapsed_s=now - dispatched_at[index])
                            outcomes[index] = outcome
                            if on_outcome is not None:
                                on_outcome(task, outcome)
                        # Killing the hung worker means terminating the
                        # whole pool (workers are anonymous); innocent
                        # in-flight dispatches are re-dispatched fresh.
                        self._emit(_obs.WORKER_KILL, reason="job-deadline",
                                   killed=len(victims), pending=len(pending))
                        return "deadline"
                if self._worker_crashed(pool, seen_workers):
                    # One last harvest: results that landed between the
                    # crash and its detection are still valid.
                    collect_ready()
                    return "crash" if pending else None
                self._wait_for_progress(asyncs, pending)
        finally:
            pool.terminate()
            pool.join()

    @staticmethod
    def _worker_crashed(pool: Any, seen_workers: List[Any]) -> bool:
        """Whether any worker this pool ever ran has exited non-zero.

        The pool's maintenance thread replaces dead workers in place, so
        crash detection must remember every worker process observed, not
        just the current roster.  Workers retired by ``maxtasksperchild``
        exit 0 and are ignored.
        """
        current = getattr(pool, "_pool", None)
        if current is None:  # unknown pool implementation: no detection
            return False
        for worker in list(current):
            if worker not in seen_workers:
                seen_workers.append(worker)
        return any(worker.exitcode not in (None, 0)
                   for worker in seen_workers)

    @staticmethod
    def _wait_for_progress(asyncs: Sequence, pending: Dict[int, Task]) -> None:
        """Block briefly on the first unfinished result."""
        for task, result in asyncs:
            if task.index in pending:
                result.wait(_POLL_INTERVAL_S)
                return


def get_executor(jobs: int = 1,
                 maxtasksperchild: Optional[int] = DEFAULT_MAXTASKSPERCHILD,
                 tracer: Optional[Any] = None) -> Any:
    """Executor for ``jobs`` workers (serial when ``jobs == 1``)."""
    if jobs < 1:
        raise ConfigurationError(
            f"executor needs at least one worker, got jobs={jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ProcessExecutor(jobs, maxtasksperchild=maxtasksperchild,
                           tracer=tracer)
