"""Declarative simulation cells and their content-addressed fingerprints.

A :class:`Job` is the picklable description of one simulation cell: *which
function* (its :class:`~repro.workloads.profiles.FunctionProfile`), on
*which machine*, at *which scale* (:class:`~repro.experiments.common
.RunConfig`), under *which configuration* (a name in the
``repro.experiments.common.CONFIGS`` registry), with which extra options.
Because a job is plain frozen data rather than a closure, it can cross
process boundaries to a worker pool and it has a *stable identity*:
:meth:`Job.key` hashes the canonical JSON encoding of every input that can
affect the result -- profile, machine parameters, run configuration,
config name, options -- plus :func:`code_version`, a digest of the
simulation sources, so editing the simulator transparently invalidates
every memoized result.

This module deliberately imports nothing from ``repro.experiments`` or
``repro.sim``: the engine layer only describes and transports work; the
worker resolves ``Job.provider`` at execution time (see
:mod:`repro.engine.executors`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.errors import ConfigurationError

#: Bumped whenever the cache payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: Module whose ``CONFIGS`` registry resolves standard config names.
DEFAULT_PROVIDER = "repro.experiments.common"

#: Package subtrees whose sources participate in :func:`code_version`:
#: any edit to simulation behaviour must invalidate memoized results.
_CODE_SUBTREES = ("sim", "core", "workloads", "server")
_CODE_FILES = ("experiments/common.py",)


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every simulation-relevant source file.

    The digest covers file *contents* in sorted path order, so it is
    identical across processes and machines for the same checkout.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    paths = []
    for subtree in _CODE_SUBTREES:
        paths.extend((root / subtree).glob("**/*.py"))
    paths.extend(root / name for name in _CODE_FILES)
    for path in sorted(paths):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable data with a deterministic shape.

    Dataclasses become name-tagged field dicts, sets are sorted, dict keys
    are stringified and sorted by ``json.dumps``.  Anything without an
    obvious canonical form (open handles, closures, arbitrary objects) is
    rejected so it can never silently alias two distinct cells.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonicalize(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        fields["__dataclass__"] = type(value).__name__
        return fields
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(v) for v in value), key=repr)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}; "
        f"job inputs must be primitives, containers or dataclasses"
    )


def fingerprint(value: Any) -> str:
    """Stable SHA-256 hex digest of a canonicalized value."""
    payload = json.dumps(canonicalize(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class Job:
    """One simulation cell: (function x machine x RunConfig x config).

    ``opts`` is a sorted tuple of (name, value) pairs so the dataclass
    stays frozen/picklable; build jobs through :meth:`Job.make` to get the
    normalization for free.  ``machine`` may be ``None`` for trace-only
    configs (e.g. footprint collection) whose results are
    machine-independent -- keeping the cache key honest.
    """

    profile: Any
    machine: Any
    cfg: Any
    config: str
    opts: Tuple[Tuple[str, Any], ...] = ()
    provider: str = DEFAULT_PROVIDER

    @staticmethod
    def make(profile: Any, machine: Any, cfg: Any, config: str,
             provider: str = DEFAULT_PROVIDER, **opts: Any) -> "Job":
        return Job(profile=profile, machine=machine, cfg=cfg, config=config,
                   opts=tuple(sorted(opts.items())), provider=provider)

    @property
    def function(self) -> str:
        return getattr(self.profile, "abbrev", str(self.profile))

    def opts_dict(self) -> Dict[str, Any]:
        return dict(self.opts)

    def key(self) -> str:
        """Content-addressed cache key of this cell's result."""
        return fingerprint({
            "schema": SCHEMA_VERSION,
            "code": code_version(),
            "profile": self.profile,
            "machine": self.machine,
            "cfg": self.cfg,
            "config": self.config,
            "opts": self.opts_dict(),
        })

    def describe(self) -> str:
        return f"{self.function}/{self.config}"
