"""Declarative simulation cells and their content-addressed fingerprints.

A :class:`Job` is the picklable description of one simulation cell: *which
function* (its :class:`~repro.workloads.profiles.FunctionProfile`), on
*which machine*, at *which scale* (:class:`~repro.experiments.common
.RunConfig`), under *which configuration* (a name in the
``repro.experiments.common.CONFIGS`` registry), with which extra options.
Because a job is plain frozen data rather than a closure, it can cross
process boundaries to a worker pool and it has a *stable identity*:
:meth:`Job.key` hashes the canonical JSON encoding of every input that can
affect the result -- profile, machine parameters, run configuration,
config name, provider module, options -- plus :func:`code_version`, a
digest of the simulation sources, and :func:`provider_version`, a digest
of the module that registers the job's config builder, so editing the
simulator or any builder transparently invalidates every affected
memoized result.

This module deliberately imports nothing from ``repro.experiments`` or
``repro.sim``: the engine layer only describes and transports work; the
worker resolves ``Job.provider`` at execution time (see
:mod:`repro.engine.executors`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.errors import ConfigurationError

#: Bumped whenever the cache payload layout changes incompatibly.
#: v2: ``RunConfig`` grew the ``backend`` field (columnar/scalar execution
#: backends); the field participates in every key through ``cfg``, so
#: results memoized under the pre-backend layout can never alias new ones.
SCHEMA_VERSION = 2

#: Module whose ``CONFIGS`` registry resolves standard config names.
DEFAULT_PROVIDER = "repro.experiments.common"

#: Package subtrees whose sources participate in :func:`code_version`:
#: any edit to simulation behaviour must invalidate memoized results.
_CODE_SUBTREES = ("sim", "core", "workloads", "server", "coldstart")
_CODE_FILES = ("experiments/common.py",)


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every simulation-relevant source file.

    The digest covers file *contents* in sorted path order, so it is
    identical across processes and machines for the same checkout.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    paths = []
    for subtree in _CODE_SUBTREES:
        paths.extend((root / subtree).glob("**/*.py"))
    paths.extend(root / name for name in _CODE_FILES)
    for path in sorted(paths):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@lru_cache(maxsize=None)
def _package_graph(root: str, package: str) -> Any:
    """Memoized :class:`repro.lint.graph.ProjectGraph` for one package.

    Imported lazily: the analyzer only depends on ``repro.errors``, so no
    cycle forms, but the engine stays importable without paying a parse
    of the whole tree until a provider fingerprint is first requested.
    """
    from repro.lint.graph import ProjectGraph

    return ProjectGraph.from_package(Path(root), package)


def _package_root(top: str) -> "Path | None":
    """Directory of top-level package ``top``, or None for a plain
    module.  Uses ``find_spec`` on the *top-level* name only, so nothing
    is executed."""
    import importlib.util

    try:
        spec = importlib.util.find_spec(top)
    except (ImportError, ValueError):
        return None
    if spec is None:
        return None
    locations = spec.submodule_search_locations
    if locations:
        for location in locations:
            root = Path(location)
            if root.is_dir():
                return root
    return None


@lru_cache(maxsize=None)
def provider_closure(provider: str) -> Tuple[str, ...]:
    """Sorted module names whose sources :func:`provider_version` digests.

    The closure is the provider's *whole-program static import closure*
    inside its own top-level package, computed by the AST analyzer in
    :mod:`repro.lint.graph` (cycle-safe, sorted, memoized) -- so a helper
    module merely *imported* by a config builder participates in the
    digest, and editing it invalidates exactly the providers that depend
    on it.  A provider that is a plain single-file module (no enclosing
    package) digests just its own source.  Lint rule REPRO009
    cross-validates this closure against an independently built graph.
    """
    top = provider.split(".")[0]
    root = _package_root(top)
    if root is None:
        _provider_source(provider)  # raises a typed error if unlocatable
        return (provider,)
    graph = _package_graph(str(root), top)
    if provider not in graph.modules:
        _provider_source(provider)
        return (provider,)
    return graph.closure(provider)


@lru_cache(maxsize=None)
def provider_version(provider: str) -> str:
    """Digest of every source in a provider module's import closure.

    Config builders registered outside the :func:`code_version` subtrees
    (e.g. ``contended`` in ``fig01_iat``, ``footprints`` in fig06,
    ``miss_stream`` in fig08) contain real measurement logic, so every
    job fingerprints the *closure* of the module providing its config:
    editing the builder -- or any helper module it imports, directly or
    transitively -- invalidates exactly that provider's memoized cells,
    while cells of unrelated providers stay warm.
    """
    digest = hashlib.sha256()
    closure = provider_closure(provider)
    top = provider.split(".")[0]
    root = _package_root(top)
    graph = _package_graph(str(root), top) if root is not None else None
    for module in closure:
        if graph is not None and module in graph.modules:
            path = graph.modules[module].path
        else:
            path = _provider_source(module)
        digest.update(module.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def invalidate_fingerprint_caches() -> None:
    """Drop every memoized source digest (tests that edit sources on
    disk call this between edits; production never needs it)."""
    code_version.cache_clear()
    provider_version.cache_clear()
    provider_closure.cache_clear()
    _package_graph.cache_clear()


def _provider_source(module: str) -> Path:
    """Locate a module's source file without importing it.

    ``repro.*`` modules resolve against the installed package root; other
    modules fall back to :func:`importlib.util.find_spec`.  A provider
    whose source cannot be found raises a typed
    :class:`~repro.errors.ConfigurationError` naming the module and the
    reason -- its cells must never be cached without code fingerprinting.
    """
    import repro

    reason = "module source not found"
    parts = module.split(".")
    if parts[0] == "repro":
        base = Path(repro.__file__).resolve().parent.joinpath(*parts[1:])
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                return candidate
        reason = (f"no such file under the installed package root "
                  f"({base.with_suffix('.py').name} or __init__.py)")
    else:
        import importlib.util

        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError) as exc:
            spec = None
            reason = f"find_spec failed: {exc}"
        if spec is not None:
            if spec.origin:
                origin = Path(spec.origin)
                if origin.is_file():
                    return origin
                reason = (f"spec origin {spec.origin!r} is not a "
                          f"readable source file")
            else:
                reason = ("module has no source origin (namespace "
                          "package or built-in)")
    raise ConfigurationError(
        f"cannot locate source for provider module {module!r} ({reason}); "
        f"its jobs cannot be fingerprinted"
    )


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable data with a deterministic shape.

    Every container is tagged with its type (``["list", ...]`` vs
    ``["tuple", ...]``) so distinct values never share a canonical form;
    dataclasses become name-tagged field dicts; set elements are sorted by
    their canonical JSON encoding, which is stable whatever the insertion
    order of their members.  Dict keys must be strings -- stringifying
    ``{1: x}`` would alias it with ``{"1": x}`` -- and anything without an
    obvious canonical form (open handles, closures, arbitrary objects) is
    rejected so it can never silently alias two distinct cells.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonicalize(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        fields["__dataclass__"] = type(value).__name__
        return fields
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cannot fingerprint dict key {key!r}; keys must be "
                    f"strings so they never alias their string forms"
                )
        return ["dict", {k: canonicalize(v) for k, v in value.items()}]
    if isinstance(value, tuple):
        return ["tuple", [canonicalize(v) for v in value]]
    if isinstance(value, list):
        return ["list", [canonicalize(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        elements = [canonicalize(v) for v in value]
        elements.sort(key=lambda e: json.dumps(e, sort_keys=True,
                                               separators=(",", ":")))
        return ["set", elements]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}; "
        f"job inputs must be primitives, containers or dataclasses"
    )


def fingerprint(value: Any) -> str:
    """Stable SHA-256 hex digest of a canonicalized value."""
    payload = json.dumps(canonicalize(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class Job:
    """One simulation cell: (function x machine x RunConfig x config).

    ``opts`` is a sorted tuple of (name, value) pairs so the dataclass
    stays frozen/picklable; build jobs through :meth:`Job.make` to get the
    normalization for free.  ``machine`` may be ``None`` for trace-only
    configs (e.g. footprint collection) whose results are
    machine-independent -- keeping the cache key honest.
    """

    profile: Any
    machine: Any
    cfg: Any
    config: str
    opts: Tuple[Tuple[str, Any], ...] = ()
    provider: str = DEFAULT_PROVIDER

    @staticmethod
    def make(profile: Any, machine: Any, cfg: Any, config: str,
             provider: str = DEFAULT_PROVIDER, **opts: Any) -> "Job":
        return Job(profile=profile, machine=machine, cfg=cfg, config=config,
                   opts=tuple(sorted(opts.items())), provider=provider)

    @property
    def function(self) -> str:
        return getattr(self.profile, "abbrev", str(self.profile))

    def opts_dict(self) -> Dict[str, Any]:
        return dict(self.opts)

    def key(self) -> str:
        """Content-addressed cache key of this cell's result."""
        return fingerprint({
            "schema": SCHEMA_VERSION,
            "code": code_version(),
            "provider": self.provider,
            "provider_code": provider_version(self.provider),
            "profile": self.profile,
            "machine": self.machine,
            "cfg": self.cfg,
            "config": self.config,
            "opts": self.opts_dict(),
        })

    def describe(self) -> str:
        return f"{self.function}/{self.config}"
