"""``repro.engine``: the parallel sweep engine with result memoization.

The engine turns every simulation cell the experiments need -- one
(function x machine x RunConfig x config) combination -- into a
declarative, picklable :class:`Job`, executes batches through a pluggable
executor (serial, or a ``multiprocessing`` pool via ``--jobs N``) with
deterministic result ordering, and memoizes results in a
content-addressed on-disk :class:`ResultCache` keyed by a stable hash of
every input plus the simulator's source digest.

Execution is failure-aware: each cell resolves to a typed
:class:`JobOutcome` under a :class:`FailurePolicy` (``raise`` by
default, or ``keep_going`` / ``retry`` with deterministic seeded
backoff), pool-worker crashes re-dispatch the unfinished frontier to a
fresh pool (degrading to serial after repeated crashes), and completed
cells are checkpointed into the cache as they finish so aborted sweeps
resume warm.  The :mod:`repro.faults` harness injects failures
deterministically for tests and ``--inject-fault``.

Typical use from an experiment module::

    from repro.engine import sweep_configs

    runs = sweep_configs(profiles, machine, cfg, ("baseline", "jukebox"))
    base = runs["Auth-G"]["baseline"]

and from the CLI layer::

    with engine.configure(jobs=4, cache_dir=path, clock=time.perf_counter):
        ...   # every sweep below fans out over 4 workers, memoized
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.executors import (
    DEFAULT_MAXTASKSPERCHILD,
    DEFAULT_MAX_POOL_FAILURES,
    ProcessExecutor,
    SerialExecutor,
    execute_job,
    get_executor,
)
from repro.engine.job import (
    DEFAULT_PROVIDER,
    Job,
    SCHEMA_VERSION,
    canonicalize,
    code_version,
    fingerprint,
    invalidate_fingerprint_caches,
    provider_closure,
    provider_version,
)
from repro.engine.resilience import (
    ERROR_CLASSES,
    KEEP_GOING,
    PERMANENT,
    RAISE,
    RETRY,
    TRANSIENT,
    FailurePolicy,
    JobError,
    JobOutcome,
    Task,
    backoff_delay,
    classify_error,
    execute_task,
    register_error_class,
    run_with_policy,
)
from repro.engine.sweep import (
    EngineContext,
    SweepStats,
    configure,
    current_context,
    sweep,
    sweep_configs,
    sweep_outcomes,
)

__all__ = [
    "CacheStats",
    "DEFAULT_MAXTASKSPERCHILD",
    "DEFAULT_MAX_POOL_FAILURES",
    "DEFAULT_PROVIDER",
    "ERROR_CLASSES",
    "EngineContext",
    "FailurePolicy",
    "Job",
    "JobError",
    "JobOutcome",
    "KEEP_GOING",
    "PERMANENT",
    "ProcessExecutor",
    "RAISE",
    "RETRY",
    "ResultCache",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SweepStats",
    "TRANSIENT",
    "Task",
    "backoff_delay",
    "canonicalize",
    "classify_error",
    "code_version",
    "configure",
    "current_context",
    "execute_job",
    "execute_task",
    "fingerprint",
    "get_executor",
    "invalidate_fingerprint_caches",
    "provider_closure",
    "provider_version",
    "register_error_class",
    "run_with_policy",
    "sweep",
    "sweep_configs",
    "sweep_outcomes",
]
