"""``repro.engine``: the parallel sweep engine with result memoization.

The engine turns every simulation cell the experiments need -- one
(function x machine x RunConfig x config) combination -- into a
declarative, picklable :class:`Job`, executes batches through a pluggable
executor (serial, or a ``multiprocessing`` pool via ``--jobs N``) with
deterministic result ordering, and memoizes results in a
content-addressed on-disk :class:`ResultCache` keyed by a stable hash of
every input plus the simulator's source digest.

Typical use from an experiment module::

    from repro.engine import sweep_configs

    runs = sweep_configs(profiles, machine, cfg, ("baseline", "jukebox"))
    base = runs["Auth-G"]["baseline"]

and from the CLI layer::

    with engine.configure(jobs=4, cache_dir=path, clock=time.perf_counter):
        ...   # every sweep below fans out over 4 workers, memoized
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    execute_job,
    get_executor,
)
from repro.engine.job import (
    DEFAULT_PROVIDER,
    Job,
    SCHEMA_VERSION,
    canonicalize,
    code_version,
    fingerprint,
    provider_version,
)
from repro.engine.sweep import (
    EngineContext,
    SweepStats,
    configure,
    current_context,
    sweep,
    sweep_configs,
)

__all__ = [
    "CacheStats",
    "DEFAULT_PROVIDER",
    "EngineContext",
    "Job",
    "ProcessExecutor",
    "ResultCache",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SweepStats",
    "canonicalize",
    "code_version",
    "configure",
    "current_context",
    "execute_job",
    "fingerprint",
    "get_executor",
    "provider_version",
    "sweep",
    "sweep_configs",
]
