"""``repro.engine``: the parallel sweep engine with result memoization.

The engine turns every simulation cell the experiments need -- one
(function x machine x RunConfig x config) combination -- into a
declarative, picklable :class:`Job`, executes batches through a pluggable
executor (serial, or a ``multiprocessing`` pool via ``--jobs N``) with
deterministic result ordering, and memoizes results in a
content-addressed on-disk :class:`ResultCache` keyed by a stable hash of
every input plus the simulator's source digest.

Execution is failure-aware: each cell resolves to a typed
:class:`JobOutcome` under a :class:`FailurePolicy` (``raise`` by
default, or ``keep_going`` / ``retry`` with deterministic seeded
backoff), pool-worker crashes re-dispatch the unfinished frontier to a
fresh pool (degrading to serial after repeated crashes), and completed
cells are checkpointed into the cache as they finish so aborted sweeps
resume warm.  The :mod:`repro.engine.guard` layer adds *time* bounds on
top: ``job_timeout_s`` kills hung workers (the cell becomes a transient
:class:`JobTimeoutError` and retries per policy), ``sweep_deadline_s``
fails whatever a batch could not finish in budget.  The cache is
crash-durable -- framed, digest-verified entries; quarantine-and-
recompute on damage; a cross-process advisory lock; degrade-to-no-store
on disk errors -- and ``python -m repro.engine fsck`` audits or repairs
a cache directory offline.  The :mod:`repro.faults` harness injects
failures (crashes, hangs, torn writes, full disks) deterministically
for tests and ``--inject-fault``.

Typical use from an experiment module::

    from repro.engine import sweep_configs

    runs = sweep_configs(profiles, machine, cfg, ("baseline", "jukebox"))
    base = runs["Auth-G"]["baseline"]

and from the CLI layer::

    with engine.configure(jobs=4, cache_dir=path, clock=time.perf_counter):
        ...   # every sweep below fans out over 4 workers, memoized
"""

from repro.engine.cache import (
    CacheEntryError,
    CacheLock,
    CacheStats,
    ResultCache,
    check_entry,
    decode_entry,
    encode_entry,
)
from repro.engine.guard import (
    GuardSpec,
    GuardState,
    JobTimeoutError,
    SweepDeadlineError,
)
from repro.engine.executors import (
    DEFAULT_MAXTASKSPERCHILD,
    DEFAULT_MAX_POOL_FAILURES,
    ProcessExecutor,
    SerialExecutor,
    execute_job,
    get_executor,
)
from repro.engine.job import (
    DEFAULT_PROVIDER,
    Job,
    SCHEMA_VERSION,
    canonicalize,
    code_version,
    fingerprint,
    invalidate_fingerprint_caches,
    provider_closure,
    provider_version,
)
from repro.engine.resilience import (
    ERROR_CLASSES,
    KEEP_GOING,
    PERMANENT,
    RAISE,
    RETRY,
    TRANSIENT,
    FailurePolicy,
    JobError,
    JobOutcome,
    Task,
    backoff_delay,
    classify_error,
    execute_task,
    register_error_class,
    run_with_policy,
)
from repro.engine.sweep import (
    EngineContext,
    SweepStats,
    configure,
    current_context,
    sweep,
    sweep_configs,
    sweep_outcomes,
)

__all__ = [
    "CacheEntryError",
    "CacheLock",
    "CacheStats",
    "DEFAULT_MAXTASKSPERCHILD",
    "DEFAULT_MAX_POOL_FAILURES",
    "DEFAULT_PROVIDER",
    "ERROR_CLASSES",
    "EngineContext",
    "FailurePolicy",
    "GuardSpec",
    "GuardState",
    "Job",
    "JobError",
    "JobOutcome",
    "JobTimeoutError",
    "KEEP_GOING",
    "PERMANENT",
    "ProcessExecutor",
    "RAISE",
    "RETRY",
    "ResultCache",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SweepDeadlineError",
    "SweepStats",
    "TRANSIENT",
    "Task",
    "backoff_delay",
    "check_entry",
    "decode_entry",
    "encode_entry",
    "canonicalize",
    "classify_error",
    "code_version",
    "configure",
    "current_context",
    "execute_job",
    "execute_task",
    "fingerprint",
    "get_executor",
    "invalidate_fingerprint_caches",
    "provider_closure",
    "provider_version",
    "register_error_class",
    "run_with_policy",
    "sweep",
    "sweep_configs",
    "sweep_outcomes",
]
