"""The sweep API: memoized, order-preserving execution of job batches.

Experiments describe their cells as :class:`~repro.engine.job.Job` values
and call :func:`sweep`; the active :class:`EngineContext` decides *how*
they run (serial or a process pool), *whether* results are served from
the content-addressed :class:`~repro.engine.cache.ResultCache`, and *what
happens when cells fail* (a
:class:`~repro.engine.resilience.FailurePolicy`, optionally driven by an
injected :class:`~repro.faults.FaultPlan`).  Contexts nest via
:func:`configure`, so the runner (or a test) can switch the whole
experiment layer to ``--jobs 4`` plus an on-disk cache without threading
parameters through sixteen ``run()`` signatures.

Failure semantics: every completed cell is checkpointed into the cache
the moment it finishes, so an aborted sweep -- a raising cell, a crashed
pool, a ``KeyboardInterrupt`` -- resumes warm on rerun, simulating only
what never completed.  ``raise`` mode re-raises the first failure (with
its remote traceback attached) after the batch drains; ``keep_going``
returns the full list of typed :class:`~repro.engine.resilience
.JobOutcome` values; ``retry`` re-runs transient failures with
deterministic seeded backoff.

Engine code never reads host time (REPRO006): wall-clock accounting for
the runner's footer comes from an injected ``clock`` callable, backoff
delays are pure functions of ``(seed, index, attempt)`` applied through
an injected ``sleep``, and both stay inert when none is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.engine.cache import ResultCache
from repro.engine.executors import (
    DEFAULT_MAXTASKSPERCHILD,
    SerialExecutor,
    get_executor,
)
from repro.engine.guard import GuardSpec, GuardState
from repro.engine.job import DEFAULT_PROVIDER, Job
from repro.engine.resilience import (
    KEEP_GOING,
    FailurePolicy,
    JobOutcome,
    Task,
    run_with_policy,
)
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.lint import contracts
from repro.obs import records as _obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlSink, Tracer


@dataclass
class SweepStats:
    """Cumulative counters of one engine context, surfaced by the runner."""

    jobs: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Cells whose final outcome was a failure.
    failures: int = 0
    #: Extra attempts scheduled by a retry policy.
    retries: int = 0
    #: Seconds spent simulating cache misses (via the injected clock).
    sim_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.jobs if self.jobs else 0.0

    def snapshot(self) -> "SweepStats":
        return replace(self)

    def since(self, earlier: "SweepStats") -> "SweepStats":
        """The delta accumulated after ``earlier`` was snapshotted."""
        return SweepStats(
            jobs=self.jobs - earlier.jobs,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            failures=self.failures - earlier.failures,
            retries=self.retries - earlier.retries,
            sim_seconds=self.sim_seconds - earlier.sim_seconds,
        )

    def describe(self) -> str:
        if not self.jobs:
            return "engine: no simulation cells"
        parts = [f"engine: {self.jobs} cells, {self.hits} cached, "
                 f"{self.misses} simulated"]
        if self.retries:
            parts.append(f", {self.retries} retried")
        if self.failures:
            parts.append(f", {self.failures} FAILED")
        if self.sim_seconds > 0:
            parts.append(f" in {self.sim_seconds:.1f}s")
        return "".join(parts)


@dataclass
class EngineContext:
    """Executor + cache + policy + counters governing :func:`sweep` calls."""

    executor: Any = field(default_factory=SerialExecutor)
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)
    #: Optional monotonic-seconds callable (e.g. ``time.perf_counter``),
    #: injected by the CLI layer; the engine itself never reads host time.
    clock: Optional[Callable[[], float]] = None
    #: Failure policy applied when a :func:`sweep` call passes none.
    policy: Optional[FailurePolicy] = None
    #: Deterministic fault-injection plan (tests, ``--inject-fault``).
    faults: Optional[FaultPlan] = None
    #: Callable applying retry-backoff delays (e.g. ``time.sleep``); the
    #: deterministic delay *values* are computed either way, only their
    #: real-time application is optional.
    sleep: Optional[Callable[[float], None]] = None
    #: The always-on in-memory event collector (``repro.obs``).  Injected
    #: per context -- never a module-level singleton (REPRO008) -- and
    #: timestamped only by the context's injected ``clock``, so jobs and
    #: cache keys never observe it.
    tracer: Any = field(default_factory=Tracer)
    #: Counter/gauge/histogram registry the sweep layer publishes into;
    #: exported by the runner behind ``--metrics-out``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Deadline budgets (:class:`~repro.engine.guard.GuardSpec`); a
    #: non-empty spec requires an injected ``clock`` and arms one
    #: :class:`~repro.engine.guard.GuardState` per sweep batch.
    guard: Optional[GuardSpec] = None


#: The zero-configuration default context (serial, uncached), shared by
#: every thread that never calls :func:`configure`.
_ROOT_CONTEXT = EngineContext()

#: Innermost active context.  A :class:`~contextvars.ContextVar` rather
#: than a module-global stack keeps nesting innermost-wins *per thread*
#: (and per asyncio task): one thread's ``configure()`` exit can never
#: pop a context that another thread pushed.
_CONTEXT: ContextVar[EngineContext] = ContextVar(
    "repro_engine_context", default=_ROOT_CONTEXT)


def current_context() -> EngineContext:
    """The innermost active :class:`EngineContext`."""
    return _CONTEXT.get()  # repro-lint: disable=REPRO011 -- ContextVar read, never blocks


@contextmanager
def configure(jobs: int = 1,
              cache_dir: Optional[Union[str, Path]] = None,
              cache: Optional[ResultCache] = None,
              clock: Optional[Callable[[], float]] = None,
              policy: Optional[FailurePolicy] = None,
              faults: Any = None,
              sleep: Optional[Callable[[float], None]] = None,
              maxtasksperchild: Optional[int] = DEFAULT_MAXTASKSPERCHILD,
              tracer: Any = None,
              trace_path: Optional[Union[str, Path]] = None,
              metrics: Optional[MetricsRegistry] = None,
              job_timeout_s: Optional[float] = None,
              sweep_deadline_s: Optional[float] = None,
              ) -> Iterator[EngineContext]:
    """Activate an engine context for the duration of the ``with`` block.

    Observability wiring: pass an explicit ``tracer`` to observe through
    it, or just a ``trace_path`` to get a fresh tracer writing canonical
    JSONL there (closed -- flushed -- when the block exits).  With
    neither, the context still carries an in-memory tracer so the footer
    always has counters to read.  Trace timestamps come from ``clock``;
    with no clock configured, events carry ``t: null`` and the trace is
    fully deterministic.

    Deadlines: ``job_timeout_s`` bounds one dispatch (hung workers are
    killed and the cell retried per policy), ``sweep_deadline_s`` bounds
    each sweep batch.  Both are measured on the injected ``clock``
    (required when either is set -- the engine never reads host time).

    An on-disk cache is *opened* for the block -- orphaned temp files
    reaped, the shared cross-process advisory lock taken -- and its lock
    released on exit (only if this block acquired it, so an outer opener
    keeps its hold).
    """
    if tracer is not None and trace_path is not None:
        raise ConfigurationError(
            "pass either tracer= or trace_path=, not both; attach a "
            "JsonlSink to your tracer instead")
    guard_spec = GuardSpec(job_timeout_s=job_timeout_s,
                           sweep_deadline_s=sweep_deadline_s)
    if guard_spec and clock is None:
        raise ConfigurationError(
            "job_timeout_s/sweep_deadline_s need an injected clock; pass "
            "clock= (e.g. time.monotonic, or TickClock in tests)")
    owns_tracer = tracer is None
    if tracer is None:
        sinks = (JsonlSink(trace_path),) if trace_path is not None else ()
        tracer = Tracer(clock=clock, sinks=sinks)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir, tracer=tracer)
    elif cache is not None and cache.tracer is None:
        cache.tracer = tracer
    opened_cache = cache is not None and not cache.lock.held
    if cache is not None:
        cache.open()
    ctx = EngineContext(
        executor=get_executor(jobs, maxtasksperchild=maxtasksperchild,
                              tracer=tracer),
        cache=cache, clock=clock, policy=policy,
        faults=FaultPlan.coerce(faults), sleep=sleep,
        tracer=tracer, metrics=metrics if metrics is not None
        else MetricsRegistry(),
        guard=guard_spec if guard_spec else None)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)
        if cache is not None and opened_cache:
            cache.close()
        if owns_tracer:
            tracer.close()


def _resolve_policy(policy: Optional[FailurePolicy],
                    ctx: EngineContext) -> FailurePolicy:
    if policy is not None:
        return policy
    if ctx.policy is not None:
        return ctx.policy
    return FailurePolicy()


def sweep_outcomes(jobs: Sequence[Job],
                   context: Optional[EngineContext] = None,
                   policy: Optional[FailurePolicy] = None,
                   ) -> List[JobOutcome]:
    """Execute a batch of jobs, returning typed outcomes in submission order.

    Never raises on a cell failure: each cell yields a
    :class:`~repro.engine.resilience.JobOutcome` carrying its value or its
    per-attempt error records (remote tracebacks included).  Cache hits
    are filled in first; the remaining misses go to the context's executor
    as one batch, retried per policy, and every *successful* result is
    checkpointed into the cache as soon as it completes -- an aborted run
    resumes warm.
    """
    jobs = list(jobs)
    ctx = context if context is not None else current_context()
    eff = _resolve_policy(policy, ctx)
    stats = ctx.stats
    tracer = ctx.tracer
    tracing = tracer is not None and tracer.enabled
    before = stats.snapshot()
    if tracing:
        tracer.emit(_obs.SWEEP_BEGIN, jobs=len(jobs), policy=eff.mode)
    stats.jobs += len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending: List[Task] = []
    keys: Dict[int, str] = {}
    for i, job in enumerate(jobs):
        if ctx.cache is not None:
            key = job.key()
            keys[i] = key
            if ctx.faults is not None and ctx.faults.should_corrupt(job, i):
                ctx.cache.corrupt(key)
            hit, value = ctx.cache.get(key)
            if hit:
                outcomes[i] = JobOutcome(job=job, index=i, ok=True,
                                         value=value, from_cache=True)
                stats.hits += 1
                continue
        pending.append(Task(job=job, index=i, faults=ctx.faults))

    def checkpoint(task: Task, outcome: JobOutcome) -> None:
        """Record each completed attempt the moment it finishes."""
        if task.attempt == 0:
            stats.misses += 1
        if outcome.ok and ctx.cache is not None:
            key = keys[task.index]
            if ctx.faults is not None:
                code = ctx.faults.store_errno(task.job, task.index)
                if code is not None:
                    ctx.cache.induce_store_error(code)
            if ctx.cache.put(key, outcome.value):
                stats.stores += 1
                if (ctx.faults is not None
                        and ctx.faults.should_tear(task.job, task.index)):
                    ctx.cache.tear(key)

    if pending:
        guard = (GuardState(ctx.guard, ctx.clock, tracer=tracer)
                 if ctx.guard else None)
        started = ctx.clock() if ctx.clock is not None else None
        try:
            computed = run_with_policy(
                ctx.executor, pending, eff, sleep=ctx.sleep,
                on_outcome=checkpoint, stats=stats, tracer=tracer,
                guard=guard)
        finally:
            if started is not None:
                stats.sim_seconds += ctx.clock() - started
        for task, outcome in zip(pending, computed):
            outcomes[task.index] = outcome
            if outcome.failed:
                stats.failures += 1
    contracts.check_sweep_stats(stats)
    delta = stats.since(before)
    if tracing:
        # The end record carries the batch's counter deltas but *not*
        # sim_seconds: that value is clock-derived, and keeping it off the
        # trace is what makes identical runs trace-identical modulo ``t``.
        tracer.emit(_obs.SWEEP_END, jobs=delta.jobs, hits=delta.hits,
                    misses=delta.misses, stores=delta.stores,
                    failures=delta.failures, retries=delta.retries)
    _publish_sweep_metrics(ctx.metrics, delta, stats)
    return outcomes  # type: ignore[return-value]


def _publish_sweep_metrics(metrics: Optional[MetricsRegistry],
                           delta: SweepStats, total: SweepStats) -> None:
    """Publish one batch's deltas into the context's metrics registry."""
    if metrics is None:
        return
    metrics.counter("engine.sweeps").inc()
    metrics.counter("engine.jobs").inc(delta.jobs)
    metrics.counter("engine.hits").inc(delta.hits)
    metrics.counter("engine.misses").inc(delta.misses)
    metrics.counter("engine.stores").inc(delta.stores)
    metrics.counter("engine.failures").inc(delta.failures)
    metrics.counter("engine.retries").inc(delta.retries)
    metrics.gauge("engine.hit_rate").set(total.hit_rate)
    metrics.gauge("engine.sim_seconds").set(total.sim_seconds)
    metrics.histogram("engine.sweep_jobs",
                      bounds=(1, 4, 16, 64, 256, 1024)).observe(delta.jobs)


def sweep(jobs: Sequence[Job],
          context: Optional[EngineContext] = None,
          policy: Optional[FailurePolicy] = None) -> List[Any]:
    """Execute a batch of jobs, returning results in submission order.

    Output is bit-identical whatever the executor, and a fully warm cache
    runs no simulation.  Under the default ``raise`` (or ``retry``)
    policy the return value is the plain list of cell results and the
    first failed cell re-raises its original exception -- *after* the
    batch drains, with every completed sibling already checkpointed, so a
    rerun simulates only the failed cell.  Under ``keep_going`` the
    caller has opted into failure-aware results and receives the full
    list of :class:`~repro.engine.resilience.JobOutcome` values instead.
    """
    ctx = context if context is not None else current_context()
    eff = _resolve_policy(policy, ctx)
    outcomes = sweep_outcomes(jobs, context=ctx, policy=eff)
    if eff.mode == KEEP_GOING:
        return outcomes
    return [outcome.unwrap() for outcome in outcomes]


def sweep_configs(profiles: Sequence[Any], machine: Any, cfg: Any,
                  configs: Sequence[str],
                  opts: Optional[Dict[str, Dict[str, Any]]] = None,
                  provider: str = DEFAULT_PROVIDER,
                  context: Optional[EngineContext] = None,
                  ) -> Dict[str, Dict[str, Any]]:
    """Sweep the (profile x config) grid.

    Returns ``results[profile.abbrev][config]``.  ``opts`` maps a config
    name to extra keyword arguments for its builder.  The grid shape is
    plain values, so a ``keep_going`` ambient policy (which changes
    :func:`sweep`'s element type to outcomes) is rejected here -- callers
    wanting per-cell failure capture over a grid should build the jobs
    and call :func:`sweep_outcomes` directly.
    """
    ctx = context if context is not None else current_context()
    if _resolve_policy(None, ctx).mode == KEEP_GOING:
        raise ConfigurationError(
            "sweep_configs() returns plain values and cannot honour a "
            "keep_going failure policy; use sweep_outcomes() for typed "
            "per-cell outcomes")
    profiles = list(profiles)
    configs = list(configs)
    opts = opts if opts is not None else {}
    jobs = [Job.make(p, machine, cfg, c, provider=provider,
                     **opts.get(c, {}))
            for p in profiles for c in configs]
    flat = iter(sweep(jobs, context=ctx))
    return {p.abbrev: {c: next(flat) for c in configs} for p in profiles}
