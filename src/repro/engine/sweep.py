"""The sweep API: memoized, order-preserving execution of job batches.

Experiments describe their cells as :class:`~repro.engine.job.Job` values
and call :func:`sweep`; the active :class:`EngineContext` decides *how*
they run (serial or a process pool) and *whether* results are served from
the content-addressed :class:`~repro.engine.cache.ResultCache`.  Contexts
nest via :func:`configure`, so the runner (or a test) can switch the whole
experiment layer to ``--jobs 4`` plus an on-disk cache without threading
parameters through sixteen ``run()`` signatures.

Engine code never reads host time (REPRO006): wall-clock accounting for
the runner's footer comes from an injected ``clock`` callable, and stays
zero when none is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.cache import ResultCache
from repro.engine.executors import SerialExecutor, get_executor
from repro.engine.job import DEFAULT_PROVIDER, Job


@dataclass
class SweepStats:
    """Cumulative counters of one engine context, surfaced by the runner."""

    jobs: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Seconds spent simulating cache misses (via the injected clock).
    sim_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.jobs if self.jobs else 0.0

    def snapshot(self) -> "SweepStats":
        return replace(self)

    def since(self, earlier: "SweepStats") -> "SweepStats":
        """The delta accumulated after ``earlier`` was snapshotted."""
        return SweepStats(
            jobs=self.jobs - earlier.jobs,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            sim_seconds=self.sim_seconds - earlier.sim_seconds,
        )

    def describe(self) -> str:
        if not self.jobs:
            return "engine: no simulation cells"
        parts = [f"engine: {self.jobs} cells, {self.hits} cached, "
                 f"{self.misses} simulated"]
        if self.sim_seconds > 0:
            parts.append(f" in {self.sim_seconds:.1f}s")
        return "".join(parts)


@dataclass
class EngineContext:
    """Executor + cache + counters governing :func:`sweep` calls."""

    executor: Any = field(default_factory=SerialExecutor)
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)
    #: Optional monotonic-seconds callable (e.g. ``time.perf_counter``),
    #: injected by the CLI layer; the engine itself never reads host time.
    clock: Optional[Callable[[], float]] = None


#: The zero-configuration default context (serial, uncached), shared by
#: every thread that never calls :func:`configure`.
_ROOT_CONTEXT = EngineContext()

#: Innermost active context.  A :class:`~contextvars.ContextVar` rather
#: than a module-global stack keeps nesting innermost-wins *per thread*
#: (and per asyncio task): one thread's ``configure()`` exit can never
#: pop a context that another thread pushed.
_CONTEXT: ContextVar[EngineContext] = ContextVar(
    "repro_engine_context", default=_ROOT_CONTEXT)


def current_context() -> EngineContext:
    """The innermost active :class:`EngineContext`."""
    return _CONTEXT.get()


@contextmanager
def configure(jobs: int = 1,
              cache_dir: Optional[Union[str, Path]] = None,
              cache: Optional[ResultCache] = None,
              clock: Optional[Callable[[], float]] = None,
              ) -> Iterator[EngineContext]:
    """Activate an engine context for the duration of the ``with`` block."""
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    ctx = EngineContext(executor=get_executor(jobs), cache=cache, clock=clock)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


def sweep(jobs: Sequence[Job],
          context: Optional[EngineContext] = None) -> List[Any]:
    """Execute a batch of jobs, returning results in submission order.

    Cache hits are filled in first; the remaining misses go to the
    context's executor as one batch (so a process pool sees the whole
    frontier at once), then get stored back.  Output is bit-identical
    whatever the executor, and a fully warm cache runs no simulation.
    """
    jobs = list(jobs)
    ctx = context if context is not None else current_context()
    stats = ctx.stats
    stats.jobs += len(jobs)
    results: List[Any] = [None] * len(jobs)
    pending: List[Tuple[int, Job, str]] = []
    for i, job in enumerate(jobs):
        if ctx.cache is not None:
            key = job.key()
            hit, value = ctx.cache.get(key)
            if hit:
                results[i] = value
                stats.hits += 1
                continue
        else:
            key = ""
        pending.append((i, job, key))
    if pending:
        started = ctx.clock() if ctx.clock is not None else None
        computed = ctx.executor.run([job for _, job, _ in pending])
        if started is not None:
            stats.sim_seconds += ctx.clock() - started
        for (i, _, key), value in zip(pending, computed):
            results[i] = value
            if ctx.cache is not None:
                ctx.cache.put(key, value)
                stats.stores += 1
    stats.misses += len(pending)
    return results


def sweep_configs(profiles: Sequence[Any], machine: Any, cfg: Any,
                  configs: Sequence[str],
                  opts: Optional[Dict[str, Dict[str, Any]]] = None,
                  provider: str = DEFAULT_PROVIDER,
                  context: Optional[EngineContext] = None,
                  ) -> Dict[str, Dict[str, Any]]:
    """Sweep the (profile x config) grid.

    Returns ``results[profile.abbrev][config]``.  ``opts`` maps a config
    name to extra keyword arguments for its builder.
    """
    profiles = list(profiles)
    configs = list(configs)
    opts = opts if opts is not None else {}
    jobs = [Job.make(p, machine, cfg, c, provider=provider,
                     **opts.get(c, {}))
            for p in profiles for c in configs]
    flat = iter(sweep(jobs, context=context))
    return {p.abbrev: {c: next(flat) for c in configs} for p in profiles}
