"""The sweep API: memoized, order-preserving execution of job batches.

Experiments describe their cells as :class:`~repro.engine.job.Job` values
and call :func:`sweep`; the active :class:`EngineContext` decides *how*
they run (serial or a process pool), *whether* results are served from
the content-addressed :class:`~repro.engine.cache.ResultCache`, and *what
happens when cells fail* (a
:class:`~repro.engine.resilience.FailurePolicy`, optionally driven by an
injected :class:`~repro.faults.FaultPlan`).  Contexts nest via
:func:`configure`, so the runner (or a test) can switch the whole
experiment layer to ``--jobs 4`` plus an on-disk cache without threading
parameters through sixteen ``run()`` signatures.

Failure semantics: every completed cell is checkpointed into the cache
the moment it finishes, so an aborted sweep -- a raising cell, a crashed
pool, a ``KeyboardInterrupt`` -- resumes warm on rerun, simulating only
what never completed.  ``raise`` mode re-raises the first failure (with
its remote traceback attached) after the batch drains; ``keep_going``
returns the full list of typed :class:`~repro.engine.resilience
.JobOutcome` values; ``retry`` re-runs transient failures with
deterministic seeded backoff.

Engine code never reads host time (REPRO006): wall-clock accounting for
the runner's footer comes from an injected ``clock`` callable, backoff
delays are pure functions of ``(seed, index, attempt)`` applied through
an injected ``sleep``, and both stay inert when none is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.engine.cache import ResultCache
from repro.engine.executors import (
    DEFAULT_MAXTASKSPERCHILD,
    SerialExecutor,
    get_executor,
)
from repro.engine.job import DEFAULT_PROVIDER, Job
from repro.engine.resilience import (
    KEEP_GOING,
    FailurePolicy,
    JobOutcome,
    Task,
    run_with_policy,
)
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.lint import contracts


@dataclass
class SweepStats:
    """Cumulative counters of one engine context, surfaced by the runner."""

    jobs: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Cells whose final outcome was a failure.
    failures: int = 0
    #: Extra attempts scheduled by a retry policy.
    retries: int = 0
    #: Seconds spent simulating cache misses (via the injected clock).
    sim_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.jobs if self.jobs else 0.0

    def snapshot(self) -> "SweepStats":
        return replace(self)

    def since(self, earlier: "SweepStats") -> "SweepStats":
        """The delta accumulated after ``earlier`` was snapshotted."""
        return SweepStats(
            jobs=self.jobs - earlier.jobs,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            failures=self.failures - earlier.failures,
            retries=self.retries - earlier.retries,
            sim_seconds=self.sim_seconds - earlier.sim_seconds,
        )

    def describe(self) -> str:
        if not self.jobs:
            return "engine: no simulation cells"
        parts = [f"engine: {self.jobs} cells, {self.hits} cached, "
                 f"{self.misses} simulated"]
        if self.retries:
            parts.append(f", {self.retries} retried")
        if self.failures:
            parts.append(f", {self.failures} FAILED")
        if self.sim_seconds > 0:
            parts.append(f" in {self.sim_seconds:.1f}s")
        return "".join(parts)


@dataclass
class EngineContext:
    """Executor + cache + policy + counters governing :func:`sweep` calls."""

    executor: Any = field(default_factory=SerialExecutor)
    cache: Optional[ResultCache] = None
    stats: SweepStats = field(default_factory=SweepStats)
    #: Optional monotonic-seconds callable (e.g. ``time.perf_counter``),
    #: injected by the CLI layer; the engine itself never reads host time.
    clock: Optional[Callable[[], float]] = None
    #: Failure policy applied when a :func:`sweep` call passes none.
    policy: Optional[FailurePolicy] = None
    #: Deterministic fault-injection plan (tests, ``--inject-fault``).
    faults: Optional[FaultPlan] = None
    #: Callable applying retry-backoff delays (e.g. ``time.sleep``); the
    #: deterministic delay *values* are computed either way, only their
    #: real-time application is optional.
    sleep: Optional[Callable[[float], None]] = None


#: The zero-configuration default context (serial, uncached), shared by
#: every thread that never calls :func:`configure`.
_ROOT_CONTEXT = EngineContext()

#: Innermost active context.  A :class:`~contextvars.ContextVar` rather
#: than a module-global stack keeps nesting innermost-wins *per thread*
#: (and per asyncio task): one thread's ``configure()`` exit can never
#: pop a context that another thread pushed.
_CONTEXT: ContextVar[EngineContext] = ContextVar(
    "repro_engine_context", default=_ROOT_CONTEXT)


def current_context() -> EngineContext:
    """The innermost active :class:`EngineContext`."""
    return _CONTEXT.get()


@contextmanager
def configure(jobs: int = 1,
              cache_dir: Optional[Union[str, Path]] = None,
              cache: Optional[ResultCache] = None,
              clock: Optional[Callable[[], float]] = None,
              policy: Optional[FailurePolicy] = None,
              faults: Any = None,
              sleep: Optional[Callable[[float], None]] = None,
              maxtasksperchild: Optional[int] = DEFAULT_MAXTASKSPERCHILD,
              ) -> Iterator[EngineContext]:
    """Activate an engine context for the duration of the ``with`` block."""
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    ctx = EngineContext(
        executor=get_executor(jobs, maxtasksperchild=maxtasksperchild),
        cache=cache, clock=clock, policy=policy,
        faults=FaultPlan.coerce(faults), sleep=sleep)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


def _resolve_policy(policy: Optional[FailurePolicy],
                    ctx: EngineContext) -> FailurePolicy:
    if policy is not None:
        return policy
    if ctx.policy is not None:
        return ctx.policy
    return FailurePolicy()


def sweep_outcomes(jobs: Sequence[Job],
                   context: Optional[EngineContext] = None,
                   policy: Optional[FailurePolicy] = None,
                   ) -> List[JobOutcome]:
    """Execute a batch of jobs, returning typed outcomes in submission order.

    Never raises on a cell failure: each cell yields a
    :class:`~repro.engine.resilience.JobOutcome` carrying its value or its
    per-attempt error records (remote tracebacks included).  Cache hits
    are filled in first; the remaining misses go to the context's executor
    as one batch, retried per policy, and every *successful* result is
    checkpointed into the cache as soon as it completes -- an aborted run
    resumes warm.
    """
    jobs = list(jobs)
    ctx = context if context is not None else current_context()
    eff = _resolve_policy(policy, ctx)
    stats = ctx.stats
    stats.jobs += len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending: List[Task] = []
    keys: Dict[int, str] = {}
    for i, job in enumerate(jobs):
        if ctx.cache is not None:
            key = job.key()
            keys[i] = key
            if ctx.faults is not None and ctx.faults.should_corrupt(job, i):
                ctx.cache.corrupt(key)
            hit, value = ctx.cache.get(key)
            if hit:
                outcomes[i] = JobOutcome(job=job, index=i, ok=True,
                                         value=value, from_cache=True)
                stats.hits += 1
                continue
        pending.append(Task(job=job, index=i, faults=ctx.faults))

    def checkpoint(task: Task, outcome: JobOutcome) -> None:
        """Record each completed attempt the moment it finishes."""
        if task.attempt == 0:
            stats.misses += 1
        if outcome.ok and ctx.cache is not None:
            ctx.cache.put(keys[task.index], outcome.value)
            stats.stores += 1

    if pending:
        started = ctx.clock() if ctx.clock is not None else None
        try:
            computed = run_with_policy(
                ctx.executor, pending, eff, sleep=ctx.sleep,
                on_outcome=checkpoint, stats=stats)
        finally:
            if started is not None:
                stats.sim_seconds += ctx.clock() - started
        for task, outcome in zip(pending, computed):
            outcomes[task.index] = outcome
            if outcome.failed:
                stats.failures += 1
    contracts.check_sweep_stats(stats)
    return outcomes  # type: ignore[return-value]


def sweep(jobs: Sequence[Job],
          context: Optional[EngineContext] = None,
          policy: Optional[FailurePolicy] = None) -> List[Any]:
    """Execute a batch of jobs, returning results in submission order.

    Output is bit-identical whatever the executor, and a fully warm cache
    runs no simulation.  Under the default ``raise`` (or ``retry``)
    policy the return value is the plain list of cell results and the
    first failed cell re-raises its original exception -- *after* the
    batch drains, with every completed sibling already checkpointed, so a
    rerun simulates only the failed cell.  Under ``keep_going`` the
    caller has opted into failure-aware results and receives the full
    list of :class:`~repro.engine.resilience.JobOutcome` values instead.
    """
    ctx = context if context is not None else current_context()
    eff = _resolve_policy(policy, ctx)
    outcomes = sweep_outcomes(jobs, context=ctx, policy=eff)
    if eff.mode == KEEP_GOING:
        return outcomes
    return [outcome.unwrap() for outcome in outcomes]


def sweep_configs(profiles: Sequence[Any], machine: Any, cfg: Any,
                  configs: Sequence[str],
                  opts: Optional[Dict[str, Dict[str, Any]]] = None,
                  provider: str = DEFAULT_PROVIDER,
                  context: Optional[EngineContext] = None,
                  ) -> Dict[str, Dict[str, Any]]:
    """Sweep the (profile x config) grid.

    Returns ``results[profile.abbrev][config]``.  ``opts`` maps a config
    name to extra keyword arguments for its builder.  The grid shape is
    plain values, so a ``keep_going`` ambient policy (which changes
    :func:`sweep`'s element type to outcomes) is rejected here -- callers
    wanting per-cell failure capture over a grid should build the jobs
    and call :func:`sweep_outcomes` directly.
    """
    ctx = context if context is not None else current_context()
    if _resolve_policy(None, ctx).mode == KEEP_GOING:
        raise ConfigurationError(
            "sweep_configs() returns plain values and cannot honour a "
            "keep_going failure policy; use sweep_outcomes() for typed "
            "per-cell outcomes")
    profiles = list(profiles)
    configs = list(configs)
    opts = opts if opts is not None else {}
    jobs = [Job.make(p, machine, cfg, c, provider=provider,
                     **opts.get(c, {}))
            for p in profiles for c in configs]
    flat = iter(sweep(jobs, context=ctx))
    return {p.abbrev: {c: next(flat) for c in configs} for p in profiles}
