"""Deadline and watchdog layer: bounding hung work in time.

PR 3 made sweeps survive worker *death*; this module makes them survive
worker *livelock*.  A :class:`GuardSpec` declares two budgets:

* ``job_timeout_s`` -- the longest one dispatch may run.  Enforced by the
  :class:`~repro.engine.executors.ProcessExecutor` watchdog: a dispatch
  that exceeds the budget has its pool terminated (reaping the hung
  worker), the cell is reclassified as a :class:`JobTimeoutError` --
  *transient* in the retry taxonomy, so ``FailurePolicy`` retry and
  keep-going semantics apply to hangs exactly as to crashes -- and the
  unfinished frontier is re-dispatched to a fresh pool via the existing
  pool-rebuild machinery.  Serial execution cannot preempt an in-process
  cell, so the job budget only binds under ``jobs >= 2``.
* ``sweep_deadline_s`` -- the longest one sweep batch may run.  Checked
  between cells (serial), between watchdog polls (pool), and between
  retry rounds: once expired, every cell not yet finished fails with a
  :class:`SweepDeadlineError` (*permanent*: retrying against an expired
  deadline is never useful) and nothing new is dispatched.

Time only ever enters through the engine context's injected ``clock``
callable (REPRO006): tests drive the guard with deterministic
:class:`~repro.obs.clock.TickClock` instances, the CLI injects
``time.monotonic`` at the sanctioned boundary.  An armed
:class:`GuardState` carries the tracer, emitting one ``job.deadline``
event per expired budget so every recovery action is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.engine.resilience import (
    PERMANENT,
    TRANSIENT,
    JobError,
    JobOutcome,
    Task,
    register_error_class,
)
from repro.errors import ConfigurationError, ReproError
from repro.obs import records as _obs


class JobTimeoutError(ReproError):
    """One dispatch exceeded its job deadline and its worker was killed.

    Classified *transient*: a hang is usually environmental (a wedged
    worker, a lost lock, injected chaos), so retry policies treat it
    like a crash and re-run the cell.
    """


class SweepDeadlineError(ReproError):
    """The whole sweep batch exceeded its deadline before this cell ran.

    Classified *permanent*: once the sweep budget is spent, re-running
    the cell inside the same sweep can only fail the same way.
    """


register_error_class(JobTimeoutError, TRANSIENT)
register_error_class(SweepDeadlineError, PERMANENT)


@dataclass(frozen=True)
class GuardSpec:
    """Declarative deadline configuration for an engine context."""

    job_timeout_s: Optional[float] = None
    sweep_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("job_timeout_s", "sweep_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0 seconds, got {value}")

    def __bool__(self) -> bool:
        return (self.job_timeout_s is not None
                or self.sweep_deadline_s is not None)


class GuardState:
    """One sweep batch's armed guard: spec + clock origin + tracer.

    Constructed by :func:`repro.engine.sweep.sweep_outcomes` when the
    context carries a non-empty :class:`GuardSpec`; the sweep deadline is
    measured from construction.  All timeout/deadline *outcomes* are
    synthesized here (parent-side, picklable), so executors only decide
    *when* a budget expired, never what the failure looks like.
    """

    def __init__(self, spec: GuardSpec, clock: Callable[[], float],
                 tracer: Optional[Any] = None) -> None:
        if clock is None:
            raise ConfigurationError(
                "deadlines need an injected clock; pass clock= to "
                "engine.configure (tests: repro.obs.clock.TickClock)")
        self.spec = spec
        self.clock = clock
        self.tracer = tracer
        self.started = clock()
        #: Budgets that expired, for stats and the runner footer.
        self.job_deadline_hits = 0
        self.sweep_deadline_hit = False

    def now(self) -> float:
        return self.clock()

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, **fields)

    # -- sweep deadline ------------------------------------------------------

    def sweep_expired(self, now: Optional[float] = None) -> bool:
        if self.spec.sweep_deadline_s is None:
            return False
        if now is None:
            now = self.clock()
        return now - self.started > self.spec.sweep_deadline_s

    def sweep_deadline_outcome(self, task: Task) -> JobOutcome:
        """Fail one not-yet-finished cell against the expired sweep budget."""
        self.sweep_deadline_hit = True
        message = (f"sweep deadline of {self.spec.sweep_deadline_s}s expired "
                   f"before cell #{task.index} ({_label(task)}) finished")
        self._emit(_obs.JOB_DEADLINE, scope="sweep", job=_label(task),
                   index=task.index, attempt=task.attempt,
                   deadline_s=self.spec.sweep_deadline_s)
        return _deadline_outcome(task, SweepDeadlineError(message), PERMANENT)

    # -- per-job deadline ----------------------------------------------------

    def job_expired(self, started_at: float,
                    now: Optional[float] = None) -> bool:
        if self.spec.job_timeout_s is None:
            return False
        if now is None:
            now = self.clock()
        return now - started_at > self.spec.job_timeout_s

    def expired_jobs(self, started_at: Dict[int, float],
                     pending: Iterable[int]) -> List[int]:
        """Indices of pending dispatches past the job budget (one clock
        read for the whole roster, so a poll is a single time sample)."""
        if self.spec.job_timeout_s is None:
            return []
        now = self.clock()
        return [index for index in sorted(pending)
                if now - started_at[index] > self.spec.job_timeout_s]

    def timeout_outcome(self, task: Task, elapsed_s: float) -> JobOutcome:
        """Fail one hung dispatch; its worker is being killed by the
        caller (the executor terminates the whole pool)."""
        self.job_deadline_hits += 1
        message = (f"cell #{task.index} ({_label(task)}) exceeded its job "
                   f"deadline of {self.spec.job_timeout_s}s "
                   f"(ran {elapsed_s:.3f}s); worker killed")
        self._emit(_obs.JOB_DEADLINE, scope="job", job=_label(task),
                   index=task.index, attempt=task.attempt,
                   deadline_s=self.spec.job_timeout_s,
                   elapsed_s=elapsed_s)
        return _deadline_outcome(task, JobTimeoutError(message), TRANSIENT)


def _label(task: Task) -> str:
    describe = getattr(task.job, "describe", None)
    if callable(describe):
        return str(describe())
    return f"cell-{task.index}"


def _deadline_outcome(task: Task, exc: ReproError,
                      error_class: str) -> JobOutcome:
    """A synthesized failed outcome for a budget expiry.

    There is no worker traceback to capture -- the worker was killed (or
    never started) -- so the error record carries an explanatory stand-in
    instead of a formatted stack.
    """
    error = JobError(
        type_name=type(exc).__name__,
        message=str(exc),
        traceback=(f"{type(exc).__name__}: {exc}\n"
                   f"(no worker traceback: the dispatch was cut short by "
                   f"the deadline guard)"),
        error_class=error_class,
        attempt=task.attempt,
        exception=exc,
    )
    return JobOutcome(job=task.job, index=task.index, ok=False,
                      attempts=task.attempt + 1, errors=(error,))
