"""CLI: ``python -m repro.engine fsck CACHE_DIR [--repair] [--json]``.

Audits (and with ``--repair`` fixes) a result-cache directory: frame and
digest verification of every entry, fanout-placement checks, orphaned
temp-file reaping, quarantine accounting.  See :mod:`repro.engine.fsck`.

Exit codes: 0 when the cache is clean (or repair actioned every
defect), 1 when defects were found (or remain), 2 on usage/IO errors,
3 when a live sweep holds the cache lock.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.engine.fsck import CacheBusyError, fsck
from repro.errors import ConfigurationError

#: Exit status when the cache root is locked by a live sweep.
EXIT_BUSY = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Maintain repro.engine result caches.")
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "fsck",
        help="verify every cache entry's frame, digest, and placement")
    check.add_argument("cache_dir", help="cache root (the --cache-dir of "
                                         "the runs that wrote it)")
    check.add_argument("--repair", action="store_true",
                       help="quarantine damaged entries and re-slot "
                            "misplaced ones instead of only reporting")
    check.add_argument("--purge-quarantine", action="store_true",
                       help="with --repair: delete the quarantine area "
                            "after the scan (destructive)")
    check.add_argument("--json", action="store_true",
                       help="emit the report as canonical JSON")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = fsck(args.cache_dir, repair=args.repair,
                      purge_quarantine=args.purge_quarantine)
    except CacheBusyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUSY
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot fsck {args.cache_dir}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True, indent=2))
    else:
        print(report.describe())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
