"""Failure-aware sweep execution: outcomes, retries, and error taxonomy.

The engine's executors are all-or-nothing by construction -- a cell is a
pure function that either returns a result or raises.  This module turns
that raw behaviour into *typed, policy-driven* failure handling:

* :class:`JobError` -- a picklable record of one failed attempt, carrying
  the remote traceback text (worker tracebacks don't survive pickling,
  their formatted text does) plus the original exception object whenever
  it is picklable, so ``raise``-mode sweeps can re-raise the real type;
* :class:`JobOutcome` -- the typed per-cell result: value, attempt count,
  and the per-attempt error records;
* :class:`FailurePolicy` -- ``raise`` | ``keep_going`` | ``retry``, with
  deterministic seeded backoff that never reads host time: delays are a
  pure function of ``(seed, cell index, attempt)`` and are *applied*
  through an injected ``sleep`` callable (absent by default, so tests and
  simulation paths stay instantaneous and REPRO006-clean);
* an extensible **error taxonomy**: :func:`classify_error` maps an
  exception to :data:`TRANSIENT` or :data:`PERMANENT`; only transient
  errors are retried.  :func:`register_error_class` extends the mapping
  for out-of-tree providers.

This file is the *sanctioned broad-capture point* of the engine: lint
rule REPRO007 forbids ``except Exception`` everywhere else under
``engine/`` so that a swallowed error can never silently turn into a
wrong figure -- every broad catch below immediately converts the
exception into a structured :class:`JobError`.
"""

from __future__ import annotations

import pickle
import random
import traceback as _traceback
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import ConfigurationError, ReproError, SweepFailure, WorkerCrashError
from repro.obs import records as _obs

#: Error classes of the retry taxonomy.  A *transient* error is worth
#: retrying (flaky infrastructure, injected chaos); a *permanent* one is a
#: programming or configuration error that will fail identically forever.
TRANSIENT = "transient"
PERMANENT = "permanent"

ERROR_CLASSES = (TRANSIENT, PERMANENT)

#: Failure-policy modes accepted by :class:`FailurePolicy`.
RAISE = "raise"
KEEP_GOING = "keep_going"
RETRY = "retry"

_MODES = (RAISE, KEEP_GOING, RETRY)

#: The taxonomy registry: later registrations win, unknown types default
#: to :data:`PERMANENT` (never waste retries on a deterministic bug).
_ERROR_CLASSES: List[Tuple[Type[BaseException], str]] = [
    (ConnectionError, TRANSIENT),
    (TimeoutError, TRANSIENT),
    (InterruptedError, TRANSIENT),
    (WorkerCrashError, TRANSIENT),
    (ReproError, PERMANENT),
]


def register_error_class(exc_type: Type[BaseException], error_class: str) -> None:
    """Extend the taxonomy: classify ``exc_type`` (and subclasses).

    Registrations are consulted newest-first, so registering a subclass
    after its parent refines the parent's classification.
    """
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        raise ConfigurationError(
            f"error taxonomy entries must be exception types, got {exc_type!r}")
    if error_class not in ERROR_CLASSES:
        raise ConfigurationError(
            f"unknown error class {error_class!r}; expected one of "
            f"{', '.join(ERROR_CLASSES)}")
    _ERROR_CLASSES.insert(0, (exc_type, error_class))


def classify_error(exc: BaseException) -> str:
    """Map an exception to its taxonomy class (default: permanent)."""
    for exc_type, error_class in _ERROR_CLASSES:
        if isinstance(exc, exc_type):
            return error_class
    return PERMANENT


@dataclass(frozen=True)
class JobError:
    """One failed attempt of one cell, in picklable form.

    ``exception`` holds the original exception object when it pickles
    cleanly (so ``raise`` mode can re-raise the real type); otherwise it
    is ``None`` and only the formatted remote traceback survives.
    """

    type_name: str
    message: str
    traceback: str
    error_class: str
    attempt: int
    #: Backoff delay (seconds) scheduled after this failure, 0.0 when the
    #: attempt was final.  Filled in by the retry driver.
    backoff_s: float = 0.0
    exception: Optional[BaseException] = None

    @classmethod
    def capture(cls, exc: BaseException, attempt: int) -> "JobError":
        """Snapshot a live exception inside the worker that raised it."""
        try:
            pickle.dumps(exc)
            carried: Optional[BaseException] = exc
        except Exception:  # noqa: REPRO007-sanctioned broad capture
            carried = None
        return cls(
            type_name=type(exc).__name__,
            message=str(exc),
            traceback=_traceback.format_exc(),
            error_class=classify_error(exc),
            attempt=attempt,
            exception=carried,
        )

    @property
    def transient(self) -> bool:
        return self.error_class == TRANSIENT

    def describe(self) -> str:
        return f"attempt {self.attempt}: {self.type_name}: {self.message}"


@dataclass(frozen=True)
class JobOutcome:
    """The typed result of one sweep cell.

    ``attempts`` counts executions (0 for a cache hit); ``errors`` holds
    one :class:`JobError` per failed attempt in order, so a cell that
    succeeded on its second try has ``ok=True, attempts=2`` and one error
    record.
    """

    job: Any
    index: int
    ok: bool
    value: Any = None
    attempts: int = 0
    errors: Tuple[JobError, ...] = ()
    from_cache: bool = False

    @property
    def failed(self) -> bool:
        return not self.ok

    @property
    def last_error(self) -> Optional[JobError]:
        return self.errors[-1] if self.errors else None

    def unwrap(self) -> Any:
        """The cell's value; a failed outcome re-raises its error.

        The original exception type is re-raised whenever the worker-side
        exception pickled cleanly, with the remote traceback attached as
        an exception note; otherwise a :class:`SweepFailure` embeds it.
        """
        if self.ok:
            return self.value
        error = self.last_error
        summary = (f"sweep cell #{self.index} ({self.job.describe()}) failed "
                   f"after {self.attempts} attempt(s)")
        if error is None:
            raise SweepFailure(summary)
        if error.exception is not None:
            exc = error.exception
            if hasattr(exc, "add_note"):
                exc.add_note(f"{summary}; remote traceback:\n{error.traceback}")
            raise exc
        raise SweepFailure(
            f"{summary}: {error.type_name}: {error.message}\n"
            f"remote traceback:\n{error.traceback}")

    def describe(self) -> str:
        state = "cached" if self.from_cache else ("ok" if self.ok else "FAILED")
        return f"#{self.index} {self.job.describe()}: {state}"


@dataclass(frozen=True)
class Task:
    """One dispatch unit: a job plus its retry/redispatch bookkeeping.

    ``attempt`` counts *completed failed attempts* (retry ladder);
    ``dispatch`` counts *pool submissions*, which also advance when a
    crashed pool re-dispatches work that never ran.  Fault-injection
    plans key ``fail`` faults on ``attempt`` and ``kill`` faults on
    ``dispatch`` so each stays deterministic under the other.
    """

    job: Any
    index: int
    attempt: int = 0
    dispatch: int = 0
    faults: Optional[Any] = None

    def retry(self) -> "Task":
        return replace(self, attempt=self.attempt + 1,
                       dispatch=self.dispatch + 1)

    def redispatch(self) -> "Task":
        return replace(self, dispatch=self.dispatch + 1)


@dataclass(frozen=True)
class FailurePolicy:
    """How a sweep treats failing cells.

    * ``raise`` (default) -- re-raise the first failure after the batch
      finishes; completed cells are already checkpointed in the cache.
    * ``keep_going`` -- never raise; ``sweep`` returns the full list of
      :class:`JobOutcome` values, failures included.
    * ``retry`` -- like ``raise``, but transient failures are retried up
      to ``retries`` extra times with deterministic seeded backoff.

    ``retries`` also composes with ``keep_going``.  Backoff is a pure
    function of ``(seed, index, attempt)`` -- no host clock is ever read.
    """

    mode: str = RAISE
    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    retry_classes: Tuple[str, ...] = (TRANSIENT,)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown failure-policy mode {self.mode!r}; expected one "
                f"of {', '.join(_MODES)}")
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}")
        if self.mode == RETRY and self.retries < 1:
            raise ConfigurationError(
                "retry mode needs retries >= 1 (use mode='raise' for no "
                "retries)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff must be non-negative, got base="
                f"{self.backoff_base}, cap={self.backoff_cap}")
        for name in self.retry_classes:
            if name not in ERROR_CLASSES:
                raise ConfigurationError(
                    f"unknown retry class {name!r}; expected a subset of "
                    f"{', '.join(ERROR_CLASSES)}")

    @classmethod
    def raising(cls) -> "FailurePolicy":
        return cls(mode=RAISE)

    @classmethod
    def keep_going(cls, retries: int = 0, **kwargs: Any) -> "FailurePolicy":
        return cls(mode=KEEP_GOING, retries=retries, **kwargs)

    @classmethod
    def retrying(cls, retries: int = 2, **kwargs: Any) -> "FailurePolicy":
        return cls(mode=RETRY, retries=retries, **kwargs)


def backoff_delay(policy: FailurePolicy, index: int, attempt: int) -> float:
    """Deterministic jittered exponential backoff, host-clock-free.

    The delay is a pure function of the policy seed, the cell's index and
    the attempt number: reruns compute bit-identical schedules, and the
    engine only *applies* the delay through an injected sleep callable.
    """
    rng = random.Random(f"{policy.seed}:{index}:{attempt}")
    window = min(policy.backoff_cap, policy.backoff_base * (2 ** attempt))
    return window * (0.5 + 0.5 * rng.random())


def execute_task(task: Task) -> JobOutcome:
    """Run one task, capturing any failure as a structured outcome.

    This is the pool-worker entry point and the engine's sanctioned
    broad-capture site: exceptions (never ``KeyboardInterrupt`` or other
    ``BaseException``) become :class:`JobError` records with the remote
    traceback formatted *here*, inside the process that raised it.
    Fault-injection hooks run first so tests can fail or kill
    deterministically chosen cells.
    """
    from repro.engine.executors import execute_job

    try:
        if task.faults is not None:
            task.faults.on_execute(task.job, task.index, task.attempt,
                                   task.dispatch)
        value = execute_job(task.job)
    except Exception as exc:  # sanctioned capture point (REPRO007)
        return JobOutcome(
            job=task.job, index=task.index, ok=False,
            attempts=task.attempt + 1,
            errors=(JobError.capture(exc, attempt=task.attempt),))
    return JobOutcome(job=task.job, index=task.index, ok=True, value=value,
                      attempts=task.attempt + 1)


def _job_label(task: Task) -> str:
    """A stable human identity for a task's cell on trace events."""
    describe = getattr(task.job, "describe", None)
    if callable(describe):
        return str(describe())
    return f"cell-{task.index}"


def run_with_policy(executor: Any, tasks: Sequence[Task],
                    policy: FailurePolicy,
                    sleep: Optional[Callable[[float], None]] = None,
                    on_outcome: Optional[Callable[[Task, JobOutcome], None]] = None,
                    stats: Optional[Any] = None,
                    tracer: Optional[Any] = None,
                    guard: Optional[Any] = None) -> List[JobOutcome]:
    """Drive tasks through an executor in rounds, retrying per policy.

    Each round dispatches the whole open frontier as one batch (so a
    process pool sees maximal parallelism), then failures classified
    retryable are re-queued for the next round with their backoff applied
    through ``sleep``.  ``on_outcome`` fires as soon as each attempt
    completes -- the sweep layer uses it to checkpoint finished results
    into the cache *before* the batch (or the run) is over.  Results come
    back in submission order regardless of rounds.

    ``tracer`` (optional, injected) observes the round structure:
    ``executor.dispatch`` per submitted attempt, ``executor.harvest`` as
    each attempt's outcome arrives, and ``retry.backoff`` when a failure
    is re-queued.  All events are emitted on the parent side -- workers
    never see the tracer, so executors stay picklable and custom
    ``run_tasks`` signatures stay untouched.

    ``guard`` (optional, an armed :class:`~repro.engine.guard.GuardState`)
    bounds the rounds in injected-clock time: it is forwarded to the
    executor only when present (custom executors with the plain two-arg
    ``run_tasks`` keep working), and once the sweep deadline expires no
    further retry round is scheduled -- would-be retries fail permanently
    with the deadline outcome instead of sleeping through backoff.
    """
    tracing = tracer is not None and tracer.enabled
    final: Dict[int, JobOutcome] = {}
    history: Dict[int, Tuple[JobError, ...]] = {}
    round_tasks = list(tasks)
    harvest = on_outcome
    if tracing:
        def harvest(task: Task, outcome: JobOutcome) -> None:
            tracer.emit(_obs.HARVEST, job=_job_label(task),
                        index=task.index, attempt=task.attempt,
                        ok=outcome.ok)
            if on_outcome is not None:
                on_outcome(task, outcome)
    while round_tasks:
        if tracing:
            for task in round_tasks:
                tracer.emit(_obs.DISPATCH, job=_job_label(task),
                            index=task.index, attempt=task.attempt,
                            dispatch=task.dispatch)
        if guard is not None:
            computed = executor.run_tasks(round_tasks, on_outcome=harvest,
                                          guard=guard)
        else:
            computed = executor.run_tasks(round_tasks, on_outcome=harvest)
        sweep_expired = guard is not None and guard.sweep_expired()
        next_round: List[Task] = []
        for task, outcome in zip(round_tasks, computed):
            if outcome.ok:
                prior = history.pop(task.index, ())
                final[task.index] = replace(
                    outcome, errors=prior + outcome.errors)
                continue
            errors = history.get(task.index, ()) + outcome.errors
            if (not sweep_expired and task.attempt < policy.retries
                    and _retryable(outcome, policy)):
                delay = backoff_delay(policy, task.index, task.attempt)
                errors = errors[:-1] + (replace(errors[-1], backoff_s=delay),)
                history[task.index] = errors
                if stats is not None:
                    stats.retries += 1
                if tracing:
                    tracer.emit(_obs.RETRY, job=_job_label(task),
                                index=task.index, attempt=task.attempt,
                                delay_s=delay,
                                error=errors[-1].type_name)
                if sleep is not None and delay > 0:
                    sleep(delay)
                next_round.append(task.retry())
            else:
                final[task.index] = replace(
                    outcome, errors=errors)
        round_tasks = next_round
    return [final[task.index] for task in tasks]


def _retryable(outcome: JobOutcome, policy: FailurePolicy) -> bool:
    error = outcome.last_error
    return error is not None and error.error_class in policy.retry_classes
