"""Offline integrity audit and repair of a result-cache directory.

``python -m repro.engine fsck <dir>`` walks every entry under a
:class:`~repro.engine.cache.ResultCache` root and verifies it the same
way a lookup would -- frame magic, frame format, engine schema version,
payload byte length, payload SHA-256 digest -- plus placement invariants
a lookup never checks (the filename is a well-formed key, the entry sits
in its two-character fanout directory).  The audit is read-only by
default; ``--repair`` applies the same actions the engine itself would
take, just eagerly instead of lazily on the next lookup:

* a valid entry in the wrong fanout slot is *moved* where lookups will
  find it (``fsck.repair``);
* a damaged entry -- torn write, digest mismatch, foreign schema, no
  frame -- is *quarantined* so the cell recomputes (``fsck.evict``);
* orphaned temp files are reaped unconditionally (holding the exclusive
  lock proves no writer is mid-flight).

fsck takes the cache root's advisory lock **exclusive** and refuses to
run while any sweep holds it shared (:class:`CacheBusyError`): offline
maintenance never mutates entries under a live reader.  The pass emits
``fsck.begin`` / ``fsck.end`` (and per-action) trace events when given a
tracer, so chaos tests can assert exactly what a repair did.
"""

from __future__ import annotations

import contextlib
import os
import string
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.cache import (
    QUARANTINE_DIR,
    CacheEntryError,
    CacheLock,
    check_entry,
)
from repro.errors import ConfigurationError, ReproError
from repro.obs import records as _obs

#: Expected hex length of a cache key (SHA-256 of the job fingerprint).
KEY_HEX_CHARS = 64

_HEX = set(string.hexdigits.lower())


class CacheBusyError(ReproError):
    """The cache root is advisory-locked by a live sweep."""


@dataclass
class FsckProblem:
    """One defective entry found by a pass."""

    key: str
    path: str
    defect: str
    #: What the pass did: ``found`` (audit-only), ``moved`` (misplaced
    #: entry relocated), or ``quarantined`` (damaged entry set aside).
    action: str = "found"

    def describe(self) -> str:
        return f"{self.path}: {self.defect} [{self.action}]"


@dataclass
class FsckReport:
    """The outcome of one fsck pass."""

    root: str
    repair: bool = False
    scanned: int = 0
    ok: int = 0
    repaired: int = 0
    quarantined: int = 0
    reaped_tmp: int = 0
    #: Entries sitting in the quarantine area when the pass finished.
    quarantine_entries: int = 0
    purged_quarantine: int = 0
    problems: List[FsckProblem] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No defects remain unhandled (audit found none, or repair
        actioned every one)."""
        return all(problem.action != "found" for problem in self.problems)

    def describe(self) -> str:
        lines = [f"fsck {self.root}: {self.scanned} entr"
                 f"{'y' if self.scanned == 1 else 'ies'} scanned, "
                 f"{self.ok} ok"]
        for problem in self.problems:
            lines.append(f"  {problem.describe()}")
        if self.reaped_tmp:
            lines.append(f"  reaped {self.reaped_tmp} orphaned temp "
                         f"file(s)")
        if self.purged_quarantine:
            lines.append(f"  purged {self.purged_quarantine} quarantined "
                         f"entr{'y' if self.purged_quarantine == 1 else 'ies'}")
        elif self.quarantine_entries:
            lines.append(f"  {self.quarantine_entries} entr"
                         f"{'y' if self.quarantine_entries == 1 else 'ies'} "
                         f"in quarantine (inspect or --purge-quarantine)")
        lines.append("clean" if self.clean else
                     f"{sum(1 for p in self.problems if p.action == 'found')} "
                     f"defect(s) found (re-run with --repair)")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "scanned": self.scanned,
            "ok": self.ok,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "reaped_tmp": self.reaped_tmp,
            "quarantine_entries": self.quarantine_entries,
            "purged_quarantine": self.purged_quarantine,
            "problems": [
                {"key": p.key, "path": p.path, "defect": p.defect,
                 "action": p.action}
                for p in self.problems
            ],
        }


def _well_formed_key(name: str) -> bool:
    return len(name) == KEY_HEX_CHARS and all(c in _HEX for c in name)


def fsck(root: Union[str, Path], repair: bool = False,
         purge_quarantine: bool = False,
         tracer: Optional[Any] = None) -> FsckReport:
    """Run one audit (or repair) pass over a cache root.

    Raises :class:`ConfigurationError` when ``root`` is not a directory
    and :class:`CacheBusyError` when a live sweep holds the advisory
    lock.  ``purge_quarantine`` (only with ``repair=True``) deletes the
    quarantine area after the scan -- the entries are evidence, so
    discarding them is an explicit second opt-in.
    """
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(
            f"{root} is not a cache directory (nothing to fsck)")
    if purge_quarantine and not repair:
        raise ConfigurationError(
            "--purge-quarantine is destructive and requires --repair")

    def emit(kind: str, **fields: Any) -> None:
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, **fields)

    report = FsckReport(root=str(root), repair=repair)
    lock = CacheLock(root)
    if not lock.acquire(exclusive=True, blocking=False):
        raise CacheBusyError(
            f"cache root {root} is locked by a live sweep; re-run fsck "
            f"once the sweep finishes")
    try:
        emit(_obs.FSCK_BEGIN, root=str(root), repair=repair)
        quarantine = root / QUARANTINE_DIR

        # Holding the exclusive lock proves no writer is mid-flight, so
        # every temp file is an orphan regardless of its embedded pid.
        for tmp in sorted(root.rglob("*.tmp")):
            with contextlib.suppress(OSError):
                tmp.unlink()
                report.reaped_tmp += 1

        for path in sorted(root.rglob("*.pkl")):
            if quarantine in path.parents:
                continue
            report.scanned += 1
            key = path.stem
            defect: Optional[str] = None
            damaged = False
            if not _well_formed_key(key):
                defect = (f"filename is not a {KEY_HEX_CHARS}-hex cache "
                          f"key")
                damaged = True  # no sanctioned slot exists: set it aside
            else:
                try:
                    check_entry(path.read_bytes())
                except CacheEntryError as exc:
                    defect, damaged = str(exc), True
                except OSError as exc:
                    defect, damaged = f"unreadable: {exc}", True
                else:
                    if path.parent != root / key[:2]:
                        defect = (f"valid entry misplaced outside fanout "
                                  f"slot {key[:2]}/")
            if defect is None:
                report.ok += 1
                continue
            problem = FsckProblem(key=key, path=str(path), defect=defect)
            if repair:
                if damaged:
                    _set_aside(path, quarantine, problem)
                    if problem.action == "quarantined":
                        report.quarantined += 1
                        emit(_obs.FSCK_EVICT, key=key[:16], defect=defect)
                else:
                    destination = root / key[:2] / f"{key}.pkl"
                    try:
                        destination.parent.mkdir(parents=True, exist_ok=True)
                        os.replace(path, destination)
                        problem.action = "moved"
                        report.repaired += 1
                        emit(_obs.FSCK_REPAIR, key=key[:16], defect=defect)
                    except OSError as exc:
                        problem.defect += f" (repair failed: {exc})"
            report.problems.append(problem)

        if quarantine.is_dir():
            entries = sorted(p for p in quarantine.iterdir() if p.is_file())
            if purge_quarantine:
                for path in entries:
                    with contextlib.suppress(OSError):
                        path.unlink()
                        report.purged_quarantine += 1
            else:
                report.quarantine_entries = len(entries)
        emit(_obs.FSCK_END, scanned=report.scanned, ok=report.ok,
             repaired=report.repaired, quarantined=report.quarantined,
             reaped_tmp=report.reaped_tmp, clean=report.clean)
    finally:
        lock.release()
    return report


def _set_aside(path: Path, quarantine: Path, problem: FsckProblem) -> None:
    """Move a damaged entry into the quarantine area."""
    destination = quarantine / f"{path.stem}.quarantined"
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
        problem.action = "quarantined"
    except OSError as exc:
        problem.defect += f" (quarantine failed: {exc})"
