"""Page-granular snapshot restore with working-set record-and-replay.

Models the data side of a cold boot the way REAP ("Benchmarking,
Analysis, and Optimization of Serverless Function Snapshots") measures
it: a restored instance demand-faults its resident pages one userfaultfd
round-trip at a time, and the set of pages an invocation touches is
*stable* across invocations of the same function.  The first restore
therefore pays the full demand-fault cost while recording the page
trace; every later restore bulk-prefetches the recorded stable set and
demand-faults only the small residue that differs per invocation.

Everything here is pure, deterministic arithmetic over a
:class:`~repro.workloads.profiles.FunctionProfile` -- no wall clock, no
RNG -- so charges are safe inside content-addressed engine jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import MB, PAGE_SIZE
from repro.workloads.profiles import FunctionProfile

#: Host page size the restore path faults at (the TLB model's page).
PAGE_BYTES = PAGE_SIZE

#: Language-runtime resident set faulted on restore, beyond the
#: function's own code + data working set (interpreter / VM image).
#: Mirrors the 24MB container overhead charged by
#: :meth:`repro.server.instance.WarmInstance.memory_bytes`, split by how
#: heavy each runtime's resident image is.
RUNTIME_RESIDENT_MB = {
    "python": 32,
    "nodejs": 28,
    "go": 6,
}


@dataclass(frozen=True)
class RestoreParams:
    """Calibrated costs of the page-restore path (REAP Sec. 5 scale)."""

    #: One demand page fault served from the snapshot file: userfaultfd
    #: wakeup + read + copy (tens of microseconds per REAP).
    fault_us: float = 35.0
    #: Per-page cost when the recorded working set is fetched in bulk
    #: (sequential reads, batched installs).
    prefetch_us: float = 3.2
    #: Fixed cost per replayed restore: loading the recorded trace and
    #: issuing the prefetch.
    replay_overhead_us: float = 150.0
    #: Fraction of the working set stable across invocations (REAP finds
    #: the record/replay set covers nearly all faults).
    stable_fraction: float = 0.92

    def __post_init__(self) -> None:
        for name, value in (("fault_us", self.fault_us),
                            ("prefetch_us", self.prefetch_us),
                            ("replay_overhead_us", self.replay_overhead_us)):
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"{name} must be finite and >= 0, got {value}")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ConfigurationError(
                f"stable_fraction must be in [0, 1], got "
                f"{self.stable_fraction}")
        if self.prefetch_us >= self.fault_us > 0:
            raise ConfigurationError(
                "prefetch_us must be below fault_us -- bulk prefetch "
                "exists to beat demand faulting")


@dataclass(frozen=True)
class RestoreCharge:
    """Cost of one snapshot restore, page-fault accounting included."""

    page_ms: float
    faulted_pages: int
    prefetched_pages: int
    #: True when this restore demand-faulted everything and *recorded*
    #: the working-set trace for later replay (the first restore).
    recorded: bool


def working_set_pages(profile: FunctionProfile) -> int:
    """Resident pages a restore of ``profile`` must materialize.

    Code footprint + data working set + the language runtime's resident
    image, rounded up to whole pages.
    """
    runtime_mb = RUNTIME_RESIDENT_MB[profile.language]
    return (profile.code_pages + profile.data_pages
            + runtime_mb * MB // PAGE_BYTES)


@dataclass
class PageReplayState:
    """Record-and-replay state of one instance's snapshot working set.

    The first :meth:`restore` demand-faults all ``pages`` and records
    the stable working set; subsequent restores bulk-prefetch the
    recorded set and demand-fault the per-invocation residue.  With
    ``replay=False`` every restore pays the full demand-fault cost
    (the REAP baseline).
    """

    pages: int
    params: RestoreParams = field(default_factory=RestoreParams)
    replay: bool = True
    restores: int = 0
    #: Pages in the recorded stable set (None until first restore).
    recorded_pages: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise ConfigurationError(
                f"pages must be positive, got {self.pages}")

    def restore(self) -> RestoreCharge:
        """Charge one restore and advance the record/replay state."""
        p = self.params
        self.restores += 1
        if not self.replay or self.recorded_pages is None:
            if self.replay:
                # Recording restore: remember the stable working set.
                self.recorded_pages = int(
                    round(self.pages * p.stable_fraction))
            return RestoreCharge(
                page_ms=self.pages * p.fault_us / 1000.0,
                faulted_pages=self.pages,
                prefetched_pages=0,
                recorded=self.replay,
            )
        residue = self.pages - self.recorded_pages
        page_ms = (p.replay_overhead_us
                   + self.recorded_pages * p.prefetch_us
                   + residue * p.fault_us) / 1000.0
        return RestoreCharge(
            page_ms=page_ms,
            faulted_pages=residue,
            prefetched_pages=self.recorded_pages,
            recorded=False,
        )

    def reset(self) -> None:
        """Forget the recorded trace (snapshot discarded)."""
        self.restores = 0
        self.recorded_pages = None
