"""The :class:`ColdStartModel` protocol and its two implementations.

The server simulator charges every cold-started invocation through a
model rather than a scalar: :class:`ConstantColdStart` reproduces the
legacy ``cold_start_penalty_ms`` arithmetic byte-for-byte (the
differential battery pins this), and :class:`SpectrumColdStart`
decomposes the cold boot into library initialization (ColdSpy,
:mod:`repro.coldstart.libinit`) plus page-granular snapshot restore
(REAP, :mod:`repro.coldstart.pages`).

:class:`SnapshotState` is the per-instance composition point with the
paper's instruction-side replayer: it pairs the data-side page
record/replay state with the Jukebox metadata image of
:mod:`repro.core.snapshot`, so a restored instance replays *both* its
page working set and its instruction working set.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.coldstart.libinit import import_graph_for
from repro.coldstart.pages import (PageReplayState, RestoreCharge,
                                   RestoreParams, working_set_pages)
from repro.core.jukebox import Jukebox
from repro.core.snapshot import MetadataSnapshot, restore_jukebox, \
    snapshot_jukebox
from repro.errors import ConfigurationError
from repro.sim.params import JukeboxParams
from repro.workloads.profiles import FunctionProfile

#: Model kinds accepted by :class:`ColdStartSpec` / fleet configs.
COLDSTART_KINDS = ("constant", "spectrum")


@dataclass(frozen=True)
class ColdStartCharge:
    """Latency charged to one cold-started invocation, decomposed."""

    #: Library / runtime initialization (ColdSpy axis).
    init_ms: float = 0.0
    #: Page faults materializing the snapshot working set (REAP axis).
    page_ms: float = 0.0
    #: Undecomposed cost (the constant model books everything here).
    other_ms: float = 0.0
    faulted_pages: int = 0
    prefetched_pages: int = 0
    #: True when this charge's restore recorded the page trace.
    recorded: bool = False

    @property
    def total_ms(self) -> float:
        return self.init_ms + self.page_ms + self.other_ms


@dataclass(frozen=True)
class ColdStartSpec:
    """Declarative, content-addressable cold-start model selection.

    A frozen dataclass (canonicalizable into engine job keys) that
    :func:`make_coldstart_model` turns into a stateful model instance
    per simulator -- never construct models at module scope (REPRO008).
    """

    kind: str = "constant"
    #: Penalty of the constant model; ignored by ``spectrum``.
    constant_ms: float = 0.0
    #: Spectrum knob: REAP record/replay on restore (off = every
    #: restore demand-faults the full working set).
    page_replay: bool = True
    #: Spectrum knob: trim eagerly-imported unused libraries (ColdSpy).
    init_trim: bool = False
    restore: RestoreParams = field(default_factory=RestoreParams)

    def __post_init__(self) -> None:
        if self.kind not in COLDSTART_KINDS:
            raise ConfigurationError(
                f"unknown cold-start model {self.kind!r}; expected one "
                f"of {', '.join(COLDSTART_KINDS)}")
        if not math.isfinite(self.constant_ms) or self.constant_ms < 0:
            raise ConfigurationError(
                f"constant_ms must be finite and >= 0, got "
                f"{self.constant_ms}")


class ColdStartModel(ABC):
    """Charges cold-started invocations; one instance per simulator.

    Implementations are deterministic state machines: the charge for
    the N-th cold start of a given instance is a pure function of the
    spec, the profile, and N.  No wall clock, no RNG.
    """

    @abstractmethod
    def cold_start(self, instance_id: str,
                   profile: Optional[FunctionProfile] = None
                   ) -> ColdStartCharge:
        """Charge one cold start of ``instance_id``."""

    def reset(self) -> None:
        """Drop per-instance state (recorded page traces)."""


class ConstantColdStart(ColdStartModel):
    """The legacy scalar penalty, byte-identical to the pre-model path.

    Returns exactly the configured float so the caller's
    ``start + service + penalty`` arithmetic is unchanged bit-for-bit.
    """

    def __init__(self, penalty_ms: float) -> None:
        if not math.isfinite(penalty_ms) or penalty_ms < 0:
            raise ConfigurationError(
                f"penalty_ms must be finite and >= 0, got {penalty_ms}")
        self._penalty_ms = penalty_ms
        self._charge = ColdStartCharge(other_ms=penalty_ms)

    def cold_start(self, instance_id: str,
                   profile: Optional[FunctionProfile] = None
                   ) -> ColdStartCharge:
        return self._charge


class SnapshotState:
    """Composed snapshot of one instance: pages + Jukebox metadata.

    The data side (:class:`PageReplayState`) records and replays the
    page-fault working set; the instruction side holds the
    :class:`~repro.core.snapshot.MetadataSnapshot` image so a restore
    can re-arm the Jukebox replayer captured with the snapshot.
    """

    def __init__(self, pages: PageReplayState) -> None:
        self.pages = pages
        self.metadata: Optional[MetadataSnapshot] = None

    def restore_pages(self) -> RestoreCharge:
        """Charge the data-side restore (record or replay)."""
        return self.pages.restore()

    def capture_metadata(self, jukebox: Jukebox) -> None:
        """Fold the instance's current Jukebox state into the snapshot.

        Keeps the previous image when the Jukebox has recorded nothing
        yet (an empty capture must not erase a useful one).
        """
        snap = snapshot_jukebox(jukebox)
        if snap is not None:
            self.metadata = snap

    def restore_jukebox(self, params: JukeboxParams) -> Jukebox:
        """Instruction-side restore: a Jukebox pre-armed from the image
        (or a fresh one when nothing was captured)."""
        if self.metadata is None:
            return Jukebox(params)
        return restore_jukebox(self.metadata, params)


class SpectrumColdStart(ColdStartModel):
    """Library init + page restore, per the spec's knobs.

    Maintains one :class:`SnapshotState` per instance; requires the
    instance's :class:`~repro.workloads.profiles.FunctionProfile` to
    size its working set and select its runtime's import graph.
    """

    def __init__(self, spec: ColdStartSpec) -> None:
        if spec.kind != "spectrum":
            raise ConfigurationError(
                f"SpectrumColdStart requires kind='spectrum', got "
                f"{spec.kind!r}")
        self.spec = spec
        self._states: Dict[str, SnapshotState] = {}

    def state_for(self, instance_id: str,
                  profile: FunctionProfile) -> SnapshotState:
        """The instance's snapshot state, created on first use."""
        state = self._states.get(instance_id)
        if state is None:
            state = SnapshotState(PageReplayState(
                pages=working_set_pages(profile),
                params=self.spec.restore,
                replay=self.spec.page_replay))
            self._states[instance_id] = state
        return state

    def cold_start(self, instance_id: str,
                   profile: Optional[FunctionProfile] = None
                   ) -> ColdStartCharge:
        if profile is None:
            raise ConfigurationError(
                "SpectrumColdStart needs the instance's FunctionProfile "
                "to size its working set")
        restore = self.state_for(instance_id, profile).restore_pages()
        init_ms = import_graph_for(profile.language).init_cost_ms(
            trim=self.spec.init_trim)
        return ColdStartCharge(
            init_ms=init_ms,
            page_ms=restore.page_ms,
            faulted_pages=restore.faulted_pages,
            prefetched_pages=restore.prefetched_pages,
            recorded=restore.recorded,
        )

    def reset(self) -> None:
        self._states.clear()


def make_coldstart_model(spec: ColdStartSpec) -> ColdStartModel:
    """Instantiate the model a spec describes (one per simulator)."""
    if spec.kind == "constant":
        return ConstantColdStart(spec.constant_ms)
    if spec.kind == "spectrum":
        return SpectrumColdStart(spec)
    raise ConfigurationError(
        f"unknown cold-start model {spec.kind!r}")
