"""Library-initialization cost model (ColdSpy calibration).

ColdSpy instruments serverless runtimes and finds cold-start
initialization dominated by *eagerly imported but unused* libraries:
trimming them yields up to a 2.26x cold-start speedup and a 1.51x
resident-memory reduction.  This module encodes that finding as a
per-runtime import graph whose libraries are classified:

* ``eager-used``   -- imported at boot, needed on the request path;
* ``eager-unused`` -- imported at boot, never touched by the handler
  (the trimming opportunity);
* ``lazy``         -- imported on first use, off the boot path already.

:func:`ImportGraph.init_cost_ms` is what a
:class:`~repro.coldstart.model.SpectrumColdStart` charges per cold
boot; the ``trim`` knob drops the eager-unused class.  Costs are fixed
calibrated constants -- pure data, no measurement at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.workloads.profiles import LANGUAGES

USAGE_EAGER_USED = "eager-used"
USAGE_EAGER_UNUSED = "eager-unused"
USAGE_LAZY = "lazy"
USAGE_CLASSES = (USAGE_EAGER_USED, USAGE_EAGER_UNUSED, USAGE_LAZY)

#: ColdSpy's measured ceilings: trimming eager-unused imports speeds
#: cold boot by at most 2.26x and shrinks the resident image by at most
#: 1.51x.  The per-language graphs below are calibrated to stay inside
#: these bounds; a unit test pins them.
MAX_TRIM_SPEEDUP = 2.26
MAX_TRIM_MEMORY_REDUCTION = 1.51


@dataclass(frozen=True)
class Library:
    """One node of a runtime's import graph."""

    name: str
    init_ms: float
    usage: str

    def __post_init__(self) -> None:
        if self.usage not in USAGE_CLASSES:
            raise ConfigurationError(
                f"{self.name}: unknown usage class {self.usage!r}; "
                f"expected one of {', '.join(USAGE_CLASSES)}")
        if not math.isfinite(self.init_ms) or self.init_ms < 0:
            raise ConfigurationError(
                f"{self.name}: init_ms must be finite and >= 0, got "
                f"{self.init_ms}")


@dataclass(frozen=True)
class ImportGraph:
    """A runtime's boot-time import graph and its trimming arithmetic."""

    language: str
    #: Interpreter / VM bring-up before any library imports.
    base_ms: float
    libraries: Tuple[Library, ...]
    #: Resident-image shrink factor when eager-unused imports are
    #: trimmed (ColdSpy's memory-reduction axis; <= 1.51).
    trim_memory_reduction: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.base_ms) or self.base_ms < 0:
            raise ConfigurationError(
                f"{self.language}: base_ms must be finite and >= 0, got "
                f"{self.base_ms}")
        if not 1.0 <= self.trim_memory_reduction <= MAX_TRIM_MEMORY_REDUCTION:
            raise ConfigurationError(
                f"{self.language}: trim_memory_reduction must be in "
                f"[1.0, {MAX_TRIM_MEMORY_REDUCTION}], got "
                f"{self.trim_memory_reduction}")

    def _usage_ms(self, usage: str) -> float:
        return sum(lib.init_ms for lib in self.libraries
                   if lib.usage == usage)

    @property
    def eager_used_ms(self) -> float:
        return self._usage_ms(USAGE_EAGER_USED)

    @property
    def eager_unused_ms(self) -> float:
        return self._usage_ms(USAGE_EAGER_UNUSED)

    @property
    def lazy_ms(self) -> float:
        """Deferred imports: charged on first use, not at boot."""
        return self._usage_ms(USAGE_LAZY)

    def init_cost_ms(self, trim: bool = False) -> float:
        """Boot-path initialization cost; ``trim`` drops eager-unused."""
        cost = self.base_ms + self.eager_used_ms
        if not trim:
            cost += self.eager_unused_ms
        return cost

    def trim_speedup(self) -> float:
        """Cold-boot init speedup from trimming (ColdSpy headline)."""
        trimmed = self.init_cost_ms(trim=True)
        if trimmed == 0.0:
            return 1.0
        return self.init_cost_ms(trim=False) / trimmed


#: Calibrated per-runtime graphs.  Library names are representative of
#: the deployments ColdSpy profiles; costs are scaled so each
#: language's trim speedup lands inside the measured range, with Python
#: near the 2.26x ceiling and Go (static binaries, thin runtime) near
#: parity.
_GRAPHS: Dict[str, ImportGraph] = {
    "python": ImportGraph(
        language="python",
        base_ms=62.0,
        libraries=(
            Library("boto3", 88.0, USAGE_EAGER_USED),
            Library("stdlib-core", 18.0, USAGE_EAGER_USED),
            Library("pandas", 92.0, USAGE_EAGER_UNUSED),
            Library("numpy", 86.0, USAGE_EAGER_UNUSED),
            Library("requests", 24.0, USAGE_EAGER_UNUSED),
            Library("pillow", 41.0, USAGE_LAZY),
        ),
        trim_memory_reduction=1.51,
    ),
    "nodejs": ImportGraph(
        language="nodejs",
        base_ms=48.0,
        libraries=(
            Library("aws-sdk", 72.0, USAGE_EAGER_USED),
            Library("express", 26.0, USAGE_EAGER_USED),
            Library("moment", 38.0, USAGE_EAGER_UNUSED),
            Library("lodash", 22.0, USAGE_EAGER_UNUSED),
            Library("sharp", 48.0, USAGE_LAZY),
        ),
        trim_memory_reduction=1.24,
    ),
    "go": ImportGraph(
        language="go",
        base_ms=6.0,
        libraries=(
            Library("aws-sdk-go", 9.0, USAGE_EAGER_USED),
            Library("protobuf", 3.0, USAGE_EAGER_UNUSED),
            Library("zap", 2.0, USAGE_EAGER_UNUSED),
        ),
        trim_memory_reduction=1.06,
    ),
}

assert set(_GRAPHS) == set(LANGUAGES)


def import_graph_for(language: str) -> ImportGraph:
    """The calibrated import graph of ``language``."""
    try:
        return _GRAPHS[language]
    except KeyError:
        raise ConfigurationError(
            f"no import graph for language {language!r}; expected one of "
            f"{', '.join(sorted(_GRAPHS))}") from None
