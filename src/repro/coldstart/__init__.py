"""Cold-start cost models: the cold end of the cold→lukewarm→warm axis.

The paper characterizes the *lukewarm* point -- warm instances whose
microarchitectural state was evicted by interleaving co-tenants.  This
package supplies the missing cold end so experiments can sweep the full
invocation-frequency spectrum:

* :mod:`repro.coldstart.pages` -- REAP-style page-granular snapshot
  restore: the first restore demand-faults the working set and records
  its page trace; later restores bulk-prefetch the recorded stable set.
* :mod:`repro.coldstart.libinit` -- ColdSpy-style library-initialization
  cost: a per-runtime import graph with eager-used / eager-unused / lazy
  libraries, exposed as an init-trimming knob.
* :mod:`repro.coldstart.model` -- the :class:`ColdStartModel` protocol
  the server and fleet simulators charge cold invocations through, with
  a constant-penalty implementation byte-identical to the legacy scalar
  ``cold_start_penalty_ms`` path and a spectrum implementation composing
  pages + init + the instruction-side Jukebox replayer of ``repro.core``.
"""

from repro.coldstart.libinit import (ImportGraph, Library, import_graph_for)
from repro.coldstart.model import (COLDSTART_KINDS, ColdStartCharge,
                                   ColdStartModel, ColdStartSpec,
                                   ConstantColdStart, SnapshotState,
                                   SpectrumColdStart, make_coldstart_model)
from repro.coldstart.pages import (PAGE_BYTES, PageReplayState, RestoreCharge,
                                   RestoreParams, working_set_pages)

__all__ = [
    "COLDSTART_KINDS",
    "ColdStartCharge",
    "ColdStartModel",
    "ColdStartSpec",
    "ConstantColdStart",
    "ImportGraph",
    "Library",
    "PAGE_BYTES",
    "PageReplayState",
    "RestoreCharge",
    "RestoreParams",
    "SnapshotState",
    "SpectrumColdStart",
    "import_graph_for",
    "make_coldstart_model",
    "working_set_pages",
]
