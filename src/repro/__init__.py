"""Reproduction of *Lukewarm Serverless Functions: Characterization and
Optimization* (Schall et al., ISCA 2022).

Public API layers:

* :mod:`repro.core` -- Jukebox, the paper's record-and-replay instruction
  prefetcher, plus the PIF baseline;
* :mod:`repro.sim` -- the trace-driven CPU / memory-hierarchy simulation
  substrate (the gem5 stand-in);
* :mod:`repro.workloads` -- the 20-function serverless workload suite
  (Table 2) as calibrated synthetic trace generators;
* :mod:`repro.server` -- server-level interleaving, arrival processes and
  keep-alive policies;
* :mod:`repro.analysis` -- metrics (CPI, MPKI, Jaccard, speedups) and
  report rendering;
* :mod:`repro.experiments` -- one module per paper table/figure.

Quickstart::

    from repro import Jukebox, Simulator, simulate, skylake
    from repro.workloads import FunctionModel, get_profile

    sim = Simulator(skylake())                # columnar backend by default
    model = FunctionModel(get_profile("Auth-G"))
    jukebox = Jukebox(sim.machine.jukebox)
    for i in range(3):
        sim.flush_microarch_state()           # lukewarm invocation
        jukebox.begin_invocation(sim.hierarchy)
        result = simulate(model.invocation_trace(i), sim=sim)
        jukebox.end_invocation(sim.hierarchy, result)
        print(f"invocation {i}: CPI={result.cpi:.2f}")

One-shot cold runs need no simulator at all --
``simulate(trace, skylake())`` builds one; hand-written traces come from
:class:`repro.workloads.TraceBuilder`.  The historical ``LukewarmCore``
name still resolves but emits a :class:`DeprecationWarning`.
"""

from repro.core import Jukebox, PIF, PIFParams, pif_ideal_params
from repro.errors import (
    ConfigError,
    ConfigurationError,
    ContractViolationError,
    MetadataError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.sim import (
    BACKENDS,
    BROADWELL,
    SKYLAKE,
    InvocationResult,
    JukeboxParams,
    LukewarmCore,
    MachineParams,
    MemoryHierarchy,
    Simulator,
    TopDownBreakdown,
    broadwell,
    simulate,
    skylake,
)
from repro.workloads import (
    FunctionModel,
    FunctionProfile,
    SUITE,
    TraceBuilder,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "BROADWELL",
    "ConfigError",
    "ConfigurationError",
    "ContractViolationError",
    "FunctionModel",
    "FunctionProfile",
    "InvocationResult",
    "Jukebox",
    "JukeboxParams",
    "LukewarmCore",
    "MachineParams",
    "MemoryHierarchy",
    "MetadataError",
    "PIF",
    "PIFParams",
    "ReproError",
    "SKYLAKE",
    "SUITE",
    "SimulationError",
    "Simulator",
    "TopDownBreakdown",
    "TraceBuilder",
    "TraceError",
    "broadwell",
    "get_profile",
    "pif_ideal_params",
    "simulate",
    "skylake",
    "__version__",
]
