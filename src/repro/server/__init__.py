"""Server-level substrate: warm-instance pools, keep-alive policies,
arrival-driven interleaving, and microarchitectural stressors (Sec. 2.2)."""

from repro.server.instance import WarmInstance
from repro.server.keepalive import FixedTTL, HistogramTTL, KeepAlivePolicy
from repro.server.server import ServerConfig, ServerSimulator, ServerStats
from repro.server.stressor import Stressor

__all__ = [
    "FixedTTL",
    "HistogramTTL",
    "KeepAlivePolicy",
    "ServerConfig",
    "ServerSimulator",
    "ServerStats",
    "Stressor",
    "WarmInstance",
]
