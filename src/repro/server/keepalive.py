"""Keep-alive policies for warm function instances.

Providers keep idle instances warm for 5-60 minutes (Sec. 2.1, refs
[36-38, 49]).  Two policies are provided:

* :class:`FixedTTL` -- the industry default: evict an instance after a
  fixed idle period (AWS ~5-7 min, Azure ~20+ min, Google up to an hour);
* :class:`HistogramTTL` -- a simplified version of the hybrid policy from
  Shahrad et al. (ATC'20): per-function, keep the instance alive for the
  observed high-percentile IAT times a safety margin.

All times are milliseconds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.errors import ConfigurationError


class KeepAlivePolicy(ABC):
    """Decides how long an idle instance stays warm."""

    @abstractmethod
    def ttl_ms(self, function_id: str) -> float:
        """Current keep-alive TTL for the given function."""

    def observe_iat(self, function_id: str, iat_ms: float) -> None:
        """Feed an observed inter-arrival time (adaptive policies)."""

    def should_evict(self, function_id: str, idle_ms: float) -> bool:
        return idle_ms > self.ttl_ms(function_id)


class FixedTTL(KeepAlivePolicy):
    """Evict after a fixed idle period."""

    def __init__(self, ttl_minutes: float = 10.0) -> None:
        if ttl_minutes <= 0:
            raise ConfigurationError(f"TTL must be positive: {ttl_minutes}")
        self._ttl_ms = ttl_minutes * 60_000.0

    def ttl_ms(self, function_id: str) -> float:
        return self._ttl_ms


class HistogramTTL(KeepAlivePolicy):
    """Adapt the TTL to each function's observed IAT distribution."""

    def __init__(self, percentile: float = 99.0, margin: float = 1.2,
                 default_ttl_minutes: float = 10.0,
                 max_ttl_minutes: float = 60.0) -> None:
        if not 0 < percentile <= 100:
            raise ConfigurationError(f"percentile out of range: {percentile}")
        if margin < 1.0:
            raise ConfigurationError(f"margin must be >= 1: {margin}")
        if default_ttl_minutes <= 0:
            raise ConfigurationError(
                f"default TTL must be positive: {default_ttl_minutes}")
        if max_ttl_minutes <= 0:
            raise ConfigurationError(
                f"max TTL must be positive: {max_ttl_minutes}")
        self.percentile = percentile
        self.margin = margin
        self._default_ms = default_ttl_minutes * 60_000.0
        self._max_ms = max_ttl_minutes * 60_000.0
        self._iats: Dict[str, List[float]] = {}

    def observe_iat(self, function_id: str, iat_ms: float) -> None:
        self._iats.setdefault(function_id, []).append(iat_ms)

    def ttl_ms(self, function_id: str) -> float:
        iats = self._iats.get(function_id)
        if not iats or len(iats) < 4:
            return self._default_ms
        ordered = sorted(iats)
        idx = min(len(ordered) - 1,
                  int(len(ordered) * self.percentile / 100.0))
        return min(self._max_ms, ordered[idx] * self.margin)
