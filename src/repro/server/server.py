"""Event-driven server-level model of interleaved warm instances.

This is the substrate behind Sec. 2.2's occupancy arithmetic: hundreds to
thousands of warm instances on one server, invocations arriving per
instance at second-to-minute IATs, executions interleaving on a fixed pool
of cores.  The model is invocation-granular (it does not run the core
timing model for every co-tenant -- that is what the stressor abstraction
is for); it measures:

* interleaving degree between consecutive invocations of each instance;
* warm / cold(start) invocation mix under a keep-alive policy;
* per-core time occupancy and server memory pressure;
* aggregate Jukebox metadata cost (the "32MB for a thousand functions"
  headline of the abstract).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.coldstart.model import ColdStartSpec, make_coldstart_model
from repro.errors import ConfigurationError
from repro.server.instance import WarmInstance
from repro.server.keepalive import FixedTTL, KeepAlivePolicy
from repro.units import MB
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.profiles import FunctionProfile


@dataclass
class ServerConfig:
    """Server-level parameters (defaults match the xl170 node, Sec. 4.1)."""

    cores: int = 10
    memory_gb: int = 64
    #: Mean service time per invocation in milliseconds.
    service_time_ms: float = 1.0
    #: Per-instance Jukebox metadata (two buffers x 16KB = 32KB).
    jukebox_metadata_bytes_per_instance: int = 32 * 1024
    #: When True the simulator tracks the *warm set* (instances invoked
    #: within their keep-alive TTL), frees memory on eviction, and drops
    #: cold arrivals that no longer fit in ``memory_gb`` -- the fleet
    #: admission model.  The default False keeps the legacy behaviour
    #: (all registered instances resident, nothing ever dropped)
    #: bit-for-bit.
    enforce_memory: bool = False
    #: Extra service latency charged to a cold-started invocation
    #: (container/runtime bring-up).  0.0 keeps legacy timing exact.
    #: This scalar is the *constant* cold-start model; richer models are
    #: selected via ``coldstart``.
    cold_start_penalty_ms: float = 0.0
    #: Cold-start model selection.  None keeps the scalar penalty above
    #: (wrapped in a constant model whose arithmetic is byte-identical
    #: to the pre-model code path).
    coldstart: Optional[ColdStartSpec] = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(
                f"cores must be positive, got {self.cores}")
        if self.memory_gb <= 0:
            raise ConfigurationError(
                f"memory_gb must be positive, got {self.memory_gb}")
        if not math.isfinite(self.service_time_ms) \
                or self.service_time_ms <= 0:
            raise ConfigurationError(
                f"service_time_ms must be a finite positive number, got "
                f"{self.service_time_ms}")
        if self.jukebox_metadata_bytes_per_instance < 0:
            raise ConfigurationError(
                f"jukebox metadata bytes must be >= 0, got "
                f"{self.jukebox_metadata_bytes_per_instance}")
        if not math.isfinite(self.cold_start_penalty_ms) \
                or self.cold_start_penalty_ms < 0:
            raise ConfigurationError(
                f"cold_start_penalty_ms must be finite and >= 0, got "
                f"{self.cold_start_penalty_ms}")
        if self.coldstart is not None \
                and not isinstance(self.coldstart, ColdStartSpec):
            raise ConfigurationError(
                f"coldstart must be a ColdStartSpec or None, got "
                f"{type(self.coldstart).__name__}")

    def coldstart_spec(self) -> ColdStartSpec:
        """The effective model spec (scalar penalty when unset)."""
        if self.coldstart is not None:
            return self.coldstart
        return ColdStartSpec(kind="constant",
                             constant_ms=self.cold_start_penalty_ms)

    @property
    def memory_bytes(self) -> int:
        return self.memory_gb * 1024 * MB


@dataclass
class ServerStats:
    """Aggregate results of one server simulation."""

    simulated_ms: float = 0.0
    #: Arrival events inside the simulated window (served + dropped).
    arrivals: int = 0
    invocations: int = 0
    cold_starts: int = 0
    #: Arrivals rejected by memory admission (``enforce_memory`` only).
    dropped: int = 0
    evictions: int = 0
    interleave_degrees: List[int] = field(default_factory=list)
    iats_ms: List[float] = field(default_factory=list)
    #: Per-served-invocation end-to-end latency: queueing wait + service
    #: (+ cold-start penalty when the invocation cold-started).
    latencies_ms: List[float] = field(default_factory=list)
    #: Total core-busy time (sum of all service durations).
    busy_ms: float = 0.0
    peak_warm_instances: int = 0
    peak_memory_bytes: int = 0
    jukebox_metadata_bytes: int = 0
    #: Cold-start latency decomposition, accumulated over all cold
    #: starts (the constant model books everything under ``other``).
    coldstart_init_ms: float = 0.0
    coldstart_page_ms: float = 0.0
    coldstart_other_ms: float = 0.0

    @property
    def warm_fraction(self) -> float:
        if self.invocations == 0:
            return 0.0
        return 1.0 - self.cold_starts / self.invocations

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, q))

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile(99.0)

    def mean_interleaving(self) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.mean(self.interleave_degrees))

    def median_interleaving(self) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.median(self.interleave_degrees))

    def interleaving_percentile(self, q: float) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.percentile(self.interleave_degrees, q))


class ServerSimulator:
    """Discrete-event simulation of invocation traffic on one server."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 keepalive: Optional[KeepAlivePolicy] = None,
                 seed: int = 0) -> None:
        self.config = config if config is not None else ServerConfig()
        self.keepalive = keepalive if keepalive is not None else FixedTTL(10.0)
        self.coldstart = make_coldstart_model(self.config.coldstart_spec())
        self._rng = np.random.default_rng(seed)
        self._instances: Dict[str, WarmInstance] = {}
        self._arrivals: Dict[str, ArrivalProcess] = {}
        self._counter = itertools.count()
        self.stats = ServerStats()

    # ------------------------------------------------------------------

    def add_instance(self, profile: FunctionProfile,
                     arrivals: ArrivalProcess,
                     instance_id: Optional[str] = None,
                     service_scale: float = 1.0) -> WarmInstance:
        """Register one function instance with its arrival process."""
        if instance_id is None:
            instance_id = f"{profile.abbrev}#{len(self._instances)}"
        if instance_id in self._instances:
            raise ConfigurationError(f"duplicate instance id {instance_id!r}")
        if not math.isfinite(service_scale) or service_scale <= 0:
            raise ConfigurationError(
                f"service_scale must be a finite positive number, got "
                f"{service_scale}")
        inst = WarmInstance(instance_id=instance_id, profile=profile,
                            service_scale=service_scale)
        inst.allocate_jukebox_metadata(
            self.config.jukebox_metadata_bytes_per_instance // 2)
        self._instances[instance_id] = inst
        self._arrivals[instance_id] = arrivals
        return inst

    def populate(self, profiles: List[FunctionProfile],
                 instances: int,
                 arrival_factory) -> None:
        """Add ``instances`` instances round-robin over ``profiles``.

        ``arrival_factory(index, profile) -> ArrivalProcess``.
        """
        for i in range(instances):
            profile = profiles[i % len(profiles)]
            self.add_instance(profile, arrival_factory(i, profile))

    # ------------------------------------------------------------------

    def run(self, duration_ms: float) -> ServerStats:
        """Simulate invocation traffic for ``duration_ms``.

        Two admission models share this loop.  The legacy model
        (``enforce_memory=False``) keeps every registered instance
        resident and detects eviction lazily at the instance's own next
        arrival; it is bit-identical to the pre-fleet simulator.  The
        fleet model (``enforce_memory=True``) maintains the *warm set*
        explicitly: evictions are reaped from a TTL expiry heap as
        simulated time advances, eviction frees the instance's memory,
        and a cold arrival that no longer fits in ``memory_gb`` is
        *dropped* (counted, not served).  Either way every arrival is
        exactly one of served or dropped -- the conservation invariant
        the fleet property battery checks.
        """
        if duration_ms <= 0:
            raise ConfigurationError(f"duration must be positive: {duration_ms}")
        cfg = self.config
        stats = self.stats
        enforce = cfg.enforce_memory
        # Event heap of (time, tiebreak, instance_id).
        heap: List[Tuple[float, int, str]] = []
        for iid, proc in self._arrivals.items():
            heapq.heappush(heap, (proc.next_iat(), next(self._counter), iid))

        # Warm-set bookkeeping (enforce_memory only).  ``_expiry_at``
        # dedups the lazy TTL heap: an entry is live only while it equals
        # the instance's scheduled expiry, so re-invocations never let
        # the heap grow past one live entry per warm instance.
        capacity = cfg.memory_bytes
        warm: Set[str] = set()
        warm_mem = 0
        peak_warm = 0
        peak_mem = 0
        expiry_heap: List[Tuple[float, int, str]] = []
        expiry_at: Dict[str, float] = {}

        def schedule_expiry(iid: str, now: float) -> None:
            expiry = now + self.keepalive.ttl_ms(iid)
            expiry_at[iid] = expiry
            heapq.heappush(expiry_heap, (expiry, next(self._counter), iid))

        def reap_expired(now: float) -> None:
            """Evict warm instances whose idle time exceeded their TTL."""
            nonlocal warm_mem
            while expiry_heap and expiry_heap[0][0] <= now:
                expiry, _tb, iid2 = heapq.heappop(expiry_heap)
                if iid2 not in warm or expiry_at.get(iid2) != expiry:
                    continue  # evicted or superseded by a later invocation
                inst2 = self._instances[iid2]
                idle2 = now - inst2.last_invocation_ms
                if self.keepalive.should_evict(iid2, idle2):
                    warm.discard(iid2)
                    del expiry_at[iid2]
                    warm_mem -= inst2.memory_bytes
                    stats.evictions += 1
                else:
                    # TTL moved (adaptive policy) or boundary equality:
                    # re-schedule strictly after ``now`` so reaping always
                    # progresses.
                    retry = max(inst2.last_invocation_ms
                                + self.keepalive.ttl_ms(iid2),
                                math.nextafter(now, math.inf))
                    expiry_at[iid2] = retry
                    heapq.heappush(expiry_heap,
                                   (retry, next(self._counter), iid2))

        core_busy_until = [0.0] * cfg.cores
        global_seq = 0
        while heap:
            now, _tb, iid = heapq.heappop(heap)
            if now > duration_ms:
                break
            inst = self._instances[iid]
            stats.arrivals += 1
            cold = False
            if enforce:
                reap_expired(now)
                if iid not in warm:
                    # Cold arrival: admit if it fits, else drop.
                    if warm_mem + inst.memory_bytes > capacity:
                        stats.dropped += 1
                        nxt = now + self._arrivals[iid].next_iat()
                        if nxt <= duration_ms:
                            heapq.heappush(
                                heap, (nxt, next(self._counter), iid))
                        continue
                    cold = True
                    warm.add(iid)
                    warm_mem += inst.memory_bytes
            else:
                # Legacy lazy check: was the instance evicted while idle?
                idle = inst.idle_ms(now)
                if inst.invocations > 0 and self.keepalive.should_evict(iid,
                                                                        idle):
                    cold = True
                    stats.evictions += 1
            if inst.last_invocation_ms is not None:
                self.keepalive.observe_iat(iid, now - inst.last_invocation_ms)
                stats.iats_ms.append(now - inst.last_invocation_ms)

            # Least-loaded core placement.
            core = int(np.argmin(core_busy_until))
            service = self._rng.exponential(
                cfg.service_time_ms * inst.service_scale)
            if cold:
                charge = self.coldstart.cold_start(iid, inst.profile)
                penalty = charge.total_ms
                stats.coldstart_init_ms += charge.init_ms
                stats.coldstart_page_ms += charge.page_ms
                stats.coldstart_other_ms += charge.other_ms
            else:
                penalty = 0.0
            start = max(now, core_busy_until[core])
            completion = start + service + penalty
            core_busy_until[core] = completion
            stats.busy_ms += service + penalty
            stats.latencies_ms.append(completion - now)

            inst.record_invocation(now, global_seq, core, cold=cold)
            global_seq += 1
            stats.invocations += 1
            if cold:
                stats.cold_starts += 1
            if inst.interleave_degrees:
                stats.interleave_degrees.append(inst.interleave_degrees[-1])
            if enforce:
                schedule_expiry(iid, now)
                peak_warm = max(peak_warm, len(warm))
                peak_mem = max(peak_mem, warm_mem)

            nxt = now + self._arrivals[iid].next_iat()
            if nxt <= duration_ms:
                heapq.heappush(heap, (nxt, next(self._counter), iid))

        stats.simulated_ms = duration_ms
        if enforce:
            stats.peak_warm_instances = peak_warm
            stats.peak_memory_bytes = peak_mem
        else:
            stats.peak_warm_instances = len(self._instances)
            stats.peak_memory_bytes = sum(
                inst.memory_bytes for inst in self._instances.values())
        stats.jukebox_metadata_bytes = sum(
            inst.jukebox_metadata_bytes for inst in self._instances.values())
        return stats

    # ------------------------------------------------------------------

    @property
    def instances(self) -> Dict[str, WarmInstance]:
        return dict(self._instances)

    def memory_pressure(self) -> float:
        """Fraction of server memory held by warm instances."""
        total = self.config.memory_gb * 1024 * MB
        used = sum(inst.memory_bytes for inst in self._instances.values())
        return used / total
