"""Event-driven server-level model of interleaved warm instances.

This is the substrate behind Sec. 2.2's occupancy arithmetic: hundreds to
thousands of warm instances on one server, invocations arriving per
instance at second-to-minute IATs, executions interleaving on a fixed pool
of cores.  The model is invocation-granular (it does not run the core
timing model for every co-tenant -- that is what the stressor abstraction
is for); it measures:

* interleaving degree between consecutive invocations of each instance;
* warm / cold(start) invocation mix under a keep-alive policy;
* per-core time occupancy and server memory pressure;
* aggregate Jukebox metadata cost (the "32MB for a thousand functions"
  headline of the abstract).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.server.instance import WarmInstance
from repro.server.keepalive import FixedTTL, KeepAlivePolicy
from repro.units import MB
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.profiles import FunctionProfile


@dataclass
class ServerConfig:
    """Server-level parameters (defaults match the xl170 node, Sec. 4.1)."""

    cores: int = 10
    memory_gb: int = 64
    #: Mean service time per invocation in milliseconds.
    service_time_ms: float = 1.0
    #: Per-instance Jukebox metadata (two buffers x 16KB = 32KB).
    jukebox_metadata_bytes_per_instance: int = 32 * 1024


@dataclass
class ServerStats:
    """Aggregate results of one server simulation."""

    simulated_ms: float = 0.0
    invocations: int = 0
    cold_starts: int = 0
    evictions: int = 0
    interleave_degrees: List[int] = field(default_factory=list)
    iats_ms: List[float] = field(default_factory=list)
    peak_warm_instances: int = 0
    peak_memory_bytes: int = 0
    jukebox_metadata_bytes: int = 0

    @property
    def warm_fraction(self) -> float:
        if self.invocations == 0:
            return 0.0
        return 1.0 - self.cold_starts / self.invocations

    def mean_interleaving(self) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.mean(self.interleave_degrees))

    def median_interleaving(self) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.median(self.interleave_degrees))

    def interleaving_percentile(self, q: float) -> float:
        if not self.interleave_degrees:
            return 0.0
        return float(np.percentile(self.interleave_degrees, q))


class ServerSimulator:
    """Discrete-event simulation of invocation traffic on one server."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 keepalive: Optional[KeepAlivePolicy] = None,
                 seed: int = 0) -> None:
        self.config = config if config is not None else ServerConfig()
        self.keepalive = keepalive if keepalive is not None else FixedTTL(10.0)
        self._rng = np.random.default_rng(seed)
        self._instances: Dict[str, WarmInstance] = {}
        self._arrivals: Dict[str, ArrivalProcess] = {}
        self._counter = itertools.count()
        self.stats = ServerStats()

    # ------------------------------------------------------------------

    def add_instance(self, profile: FunctionProfile,
                     arrivals: ArrivalProcess,
                     instance_id: Optional[str] = None) -> WarmInstance:
        """Register one function instance with its arrival process."""
        if instance_id is None:
            instance_id = f"{profile.abbrev}#{len(self._instances)}"
        if instance_id in self._instances:
            raise ConfigurationError(f"duplicate instance id {instance_id!r}")
        inst = WarmInstance(instance_id=instance_id, profile=profile)
        inst.allocate_jukebox_metadata(
            self.config.jukebox_metadata_bytes_per_instance // 2)
        self._instances[instance_id] = inst
        self._arrivals[instance_id] = arrivals
        return inst

    def populate(self, profiles: List[FunctionProfile],
                 instances: int,
                 arrival_factory) -> None:
        """Add ``instances`` instances round-robin over ``profiles``.

        ``arrival_factory(index, profile) -> ArrivalProcess``.
        """
        for i in range(instances):
            profile = profiles[i % len(profiles)]
            self.add_instance(profile, arrival_factory(i, profile))

    # ------------------------------------------------------------------

    def run(self, duration_ms: float) -> ServerStats:
        """Simulate invocation traffic for ``duration_ms``."""
        if duration_ms <= 0:
            raise ConfigurationError(f"duration must be positive: {duration_ms}")
        cfg = self.config
        stats = self.stats
        # Event heap of (time, tiebreak, instance_id).
        heap: List[Tuple[float, int, str]] = []
        for iid, proc in self._arrivals.items():
            heapq.heappush(heap, (proc.next_iat(), next(self._counter), iid))

        core_busy_until = [0.0] * cfg.cores
        global_seq = 0
        while heap:
            now, _tb, iid = heapq.heappop(heap)
            if now > duration_ms:
                break
            inst = self._instances[iid]
            # Keep-alive check: was the instance evicted while idle?
            idle = inst.idle_ms(now)
            cold = False
            if inst.invocations > 0 and self.keepalive.should_evict(iid, idle):
                cold = True
                stats.evictions += 1
            if inst.last_invocation_ms is not None:
                self.keepalive.observe_iat(iid, now - inst.last_invocation_ms)
                stats.iats_ms.append(now - inst.last_invocation_ms)

            # Least-loaded core placement.
            core = int(np.argmin(core_busy_until))
            service = self._rng.exponential(cfg.service_time_ms)
            start = max(now, core_busy_until[core])
            core_busy_until[core] = start + service

            inst.record_invocation(now, global_seq, core, cold=cold)
            global_seq += 1
            stats.invocations += 1
            if cold:
                stats.cold_starts += 1
            if inst.interleave_degrees:
                stats.interleave_degrees.append(inst.interleave_degrees[-1])

            nxt = now + self._arrivals[iid].next_iat()
            if nxt <= duration_ms:
                heapq.heappush(heap, (nxt, next(self._counter), iid))

        stats.simulated_ms = duration_ms
        stats.peak_warm_instances = len(self._instances)
        stats.peak_memory_bytes = sum(
            inst.memory_bytes for inst in self._instances.values())
        stats.jukebox_metadata_bytes = sum(
            inst.jukebox_metadata_bytes for inst in self._instances.values())
        return stats

    # ------------------------------------------------------------------

    @property
    def instances(self) -> Dict[str, WarmInstance]:
        return dict(self._instances)

    def memory_pressure(self) -> float:
        """Fraction of server memory held by warm instances."""
        total = self.config.memory_gb * 1024 * MB
        used = sum(inst.memory_bytes for inst in self._instances.values())
        return used / total
