"""Warm function instance state for the server-level model.

An instance is a memory-resident container serving one function (Sec. 2.2).
The server model tracks, per instance, everything needed to quantify
interleaving: last-invocation time, invocation counts, the global
invocation sequence number of its last run (for interleaving-degree
measurement), and optional Jukebox metadata bookkeeping mirroring the
per-process buffers of Sec. 3.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.units import MB
from repro.workloads.profiles import FunctionProfile


@dataclass
class WarmInstance:
    """One warm (memory-resident) function instance."""

    instance_id: str
    profile: FunctionProfile
    created_ms: float = 0.0
    #: Core the instance last ran on (affects private-cache reuse).
    last_core: Optional[int] = None
    last_invocation_ms: Optional[float] = None
    #: Global invocation sequence number of this instance's previous run.
    last_global_seq: Optional[int] = None
    invocations: int = 0
    cold_starts: int = 0
    #: Interleaving degrees observed (other invocations between two
    #: consecutive invocations of this instance, Sec. 2.2).
    interleave_degrees: List[int] = field(default_factory=list)
    iats_ms: List[float] = field(default_factory=list)
    #: Jukebox metadata resident in instance memory (two buffers).
    jukebox_metadata_bytes: int = 0
    #: Multiplier on the server's mean service time for this instance
    #: (per-function heterogeneity; Jukebox-on fleets scale it down by
    #: the function's capacity uplift).  1.0 preserves legacy timing
    #: exactly.
    service_scale: float = 1.0

    @property
    def memory_bytes(self) -> int:
        """Resident memory: container + runtime footprint approximation.

        70% of Lambda functions deploy with a 128-256MB limit (Sec. 1);
        the *touched* resident set is far smaller.  We charge code +
        data working set + a fixed runtime/container overhead.
        """
        runtime_overhead = 24 * MB
        return (self.profile.footprint_bytes
                + self.profile.data_ws_bytes
                + runtime_overhead)

    def record_invocation(self, now_ms: float, global_seq: int,
                          core: int, cold: bool = False) -> None:
        """Update bookkeeping for an invocation arriving at ``now_ms``."""
        if self.last_invocation_ms is not None:
            self.iats_ms.append(now_ms - self.last_invocation_ms)
        if self.last_global_seq is not None:
            self.interleave_degrees.append(
                max(0, global_seq - self.last_global_seq - 1))
        self.last_invocation_ms = now_ms
        self.last_global_seq = global_seq
        self.last_core = core
        self.invocations += 1
        if cold:
            self.cold_starts += 1

    def idle_ms(self, now_ms: float) -> float:
        if self.last_invocation_ms is None:
            return now_ms - self.created_ms
        return now_ms - self.last_invocation_ms

    def allocate_jukebox_metadata(self, per_buffer_bytes: int) -> None:
        """Reserve the two per-instance metadata buffers (Sec. 3.4.1)."""
        self.jukebox_metadata_bytes = 2 * per_buffer_bytes
