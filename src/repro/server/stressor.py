"""Microarchitectural stressors modeling co-tenant interference.

Two regimes from the paper:

* :meth:`Stressor.full_thrash` -- the stress-ng setup of Sec. 2.3 and the
  simulated baseline of Sec. 5.2: *all* on-chip state is obliterated
  between invocations of the function under test;
* :meth:`Stressor.idle_gap` -- the graded regime of Fig. 1: during an
  inter-arrival gap of ``gap_ms`` on a server at fractional CPU ``load``,
  other instances run on the same core and evict the FUT's state
  progressively.  Private structures (L1s, L2, TLBs, predictor) thrash
  within a few milliseconds; the large shared LLC decays over hundreds of
  milliseconds because a 16-way set only fully evicts once it has absorbed
  ~associativity unique insertions (which is why Fig. 1 saturates around a
  one-second IAT).

While the FUT executes on a loaded server its DRAM accesses also queue
behind co-tenant traffic: :meth:`apply_contention` sets the memory model's
contention multiplier.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Simulator


class Stressor:
    """Models interference from co-resident warm function instances."""

    #: Unique cache-block insertions per millisecond reaching the LLC at
    #: 100% load.  Calibrated so the LLC decays over ~0.1-1s (Fig. 1).
    UNIQUE_BLOCKS_PER_MS = 2100.0
    #: DRAM queueing-delay multiplier slope vs. load.
    CONTENTION_SLOPE = 1.6
    #: Gap beyond which private (per-core) state is fully thrashed, in ms.
    PRIVATE_THRASH_MS = 4.0

    def __init__(self, load: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= load <= 1.0:
            raise ConfigurationError(f"load must be in [0, 1]: {load}")
        self.load = load
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def full_thrash(self, sim: Simulator) -> None:
        """Obliterate all microarchitectural state (stress-ng regime)."""
        sim.flush_microarch_state()

    def idle_gap(self, sim: Simulator, gap_ms: float) -> None:
        """Apply the interference accumulated over an idle gap of
        ``gap_ms`` milliseconds at the configured load."""
        if gap_ms < 0:
            raise ConfigurationError(f"gap must be non-negative: {gap_ms}")
        if gap_ms == 0 or self.load == 0:
            return
        hier = sim.hierarchy
        unique_blocks = self.UNIQUE_BLOCKS_PER_MS * self.load * gap_ms

        if gap_ms >= self.PRIVATE_THRASH_MS:
            hier.l1i.flush()
            hier.l1d.flush()
            hier.l2.flush()
            hier.itlb.flush()
            hier.dtlb.flush()
            sim.branches.flush()
        else:
            fraction = gap_ms / self.PRIVATE_THRASH_MS
            hier.l1i.bulk_pollute(
                int(hier.l1i.params.num_lines * 2 * fraction), self._rng)
            hier.l1d.bulk_pollute(
                int(hier.l1d.params.num_lines * 2 * fraction), self._rng)
            hier.l2.bulk_pollute(
                int(hier.l2.params.num_lines * 2 * fraction), self._rng)
            if fraction > 0.5:
                sim.branches.flush()
                hier.itlb.flush()
                hier.dtlb.flush()

        hier.llc.bulk_pollute(int(unique_blocks), self._rng)

    def apply_contention(self, sim: Simulator) -> None:
        """Raise the DRAM queueing multiplier for execution under load."""
        sim.hierarchy.memory.contention = 1.0 + self.CONTENTION_SLOPE * self.load

    def clear_contention(self, sim: Simulator) -> None:
        sim.hierarchy.memory.contention = 1.0

    # ------------------------------------------------------------------

    def expected_llc_survival(self, sim: Simulator, gap_ms: float) -> float:
        """Expected fraction of LLC lines surviving a gap (analytic helper
        used in tests): per set, k ~ Poisson(n/sets) insertions evict the k
        least-recently-used lines."""
        llc = sim.hierarchy.llc
        lam = self.UNIQUE_BLOCKS_PER_MS * self.load * gap_ms / llc.num_sets
        assoc = llc.assoc
        # E[max(assoc - K, 0)] / assoc with K ~ Poisson(lam).
        surviving = 0.0
        pk = np.exp(-lam)
        for k in range(assoc):
            surviving += (assoc - k) * pk
            pk *= lam / (k + 1)
        return surviving / assoc
