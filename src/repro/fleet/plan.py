"""Deterministic region planning: instances -> nodes.

:func:`plan_region` expands a :class:`~repro.fleet.config.FleetConfig`
into per-node instance lists.  The expansion is a pure function of the
config -- Zipf allotment, placement policy and per-instance seeds all
derive from it -- so every shard worker recomputes exactly the same plan
and simulates only its own node range.  Planning is cheap arithmetic
(O(instances)); simulation dominates by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.fleet.balancer import PlacementState, make_balancer
from repro.fleet.config import FleetConfig
from repro.fleet.popularity import (
    function_profile,
    region_functions,
    service_scale,
)

#: Seed-stream separation constants: distinct odd multipliers keep the
#: per-instance arrival streams, the balancer stream, and the per-node
#: service streams statistically independent for any fleet seed.
_ARRIVAL_STREAM = 1_000_033
_BALANCER_STREAM = 9_176_467
_NODE_STREAM = 1_000_003


@dataclass(frozen=True)
class InstanceSpec:
    """One planned function instance (picklable, canonicalizable)."""

    global_id: int
    function_id: int
    profile_abbrev: str
    service_scale: float
    arrival_seed: int
    node: int

    @property
    def instance_id(self) -> str:
        """Stable instance identifier, independent of node or shard."""
        return f"f{self.function_id:06d}/i{self.global_id:09d}"


def arrival_seed_for(config: FleetConfig, global_id: int) -> int:
    return config.seed * _ARRIVAL_STREAM + global_id


def balancer_seed_for(config: FleetConfig) -> int:
    return config.seed * _BALANCER_STREAM + 1


def node_seed_for(config: FleetConfig, node: int) -> int:
    return config.seed * _NODE_STREAM + node


def plan_region(config: FleetConfig) -> Dict[int, List[InstanceSpec]]:
    """Assign every instance to a node; returns node -> specs.

    Instances are placed in deterministic global order (popularity-rank
    major, replica minor), which is also the order stateful balancers
    (round-robin, least-loaded) observe.  Every node key in the result
    is present even when empty, so shard workers can iterate their node
    range without key checks.
    """
    balancer = make_balancer(config.balancer,
                             seed=balancer_seed_for(config))
    state = PlacementState(nodes=config.nodes)
    plan: Dict[int, List[InstanceSpec]] = {n: [] for n in range(config.nodes)}
    global_id = 0
    for function_id, count in region_functions(config.functions,
                                               config.instances,
                                               config.zipf_alpha):
        if count == 0:
            continue
        profile = function_profile(function_id)
        scale = service_scale(function_id, config.jukebox)
        expected_load = (config.service_time_ms * scale
                         / config.mean_iat_ms) / config.cores_per_node
        for _replica in range(count):
            node = balancer.place(function_id, expected_load, state)
            if not 0 <= node < config.nodes:
                raise ConfigurationError(
                    f"balancer {config.balancer!r} placed instance "
                    f"{global_id} on invalid node {node}")
            state.record(function_id, node, expected_load)
            plan[node].append(InstanceSpec(
                global_id=global_id,
                function_id=function_id,
                profile_abbrev=profile.abbrev,
                service_scale=scale,
                arrival_seed=arrival_seed_for(config, global_id),
                node=node,
            ))
            global_id += 1
    return plan


def plan_summary(plan: Dict[int, List[InstanceSpec]]) -> Tuple[int, int, int]:
    """(instances, occupied nodes, max instances on one node)."""
    sizes = [len(specs) for specs in plan.values()]
    return sum(sizes), sum(1 for s in sizes if s), max(sizes) if sizes else 0
