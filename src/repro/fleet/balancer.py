"""Pluggable load-balancer / placement policies.

A :class:`Balancer` decides which node hosts each function instance.
Placement happens at *provisioning* time (instances, once placed, serve
all their invocations from that node -- the standard serverless model
where the frontend routes a function's traffic to its warm instances),
so the placement stream is a pure function of (config, policy, seed) and
every shard can recompute it independently.

Policies:

* ``random``           -- seeded uniform choice (the strawman);
* ``round-robin``      -- strict rotation (the default frontend);
* ``least-loaded``     -- minimize expected busy fraction per node;
* ``function-affinity``-- co-locate instances of the same function
  (maximizing warm-sharing and Jukebox metadata dedup potential),
  falling back to least-loaded for first placements.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.fleet.config import BALANCER_NAMES


@dataclass
class PlacementState:
    """Mutable per-region view the balancer consults while placing."""

    nodes: int
    #: Expected busy fraction accumulated on each node so far.
    load: List[float] = field(default_factory=list)
    #: function_id -> {node -> instance count} for affinity decisions.
    function_nodes: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError(
                f"nodes must be positive, got {self.nodes}")
        if not self.load:
            self.load = [0.0] * self.nodes

    def record(self, function_id: int, node: int,
               expected_load: float) -> None:
        self.load[node] += expected_load
        per_node = self.function_nodes.setdefault(function_id, {})
        per_node[node] = per_node.get(node, 0) + 1


class Balancer(ABC):
    """Chooses the hosting node for one function instance."""

    name: str = "abstract"

    @abstractmethod
    def place(self, function_id: int, expected_load: float,
              state: PlacementState) -> int:
        """Return the node index for the next instance of ``function_id``."""


class RandomBalancer(Balancer):
    """Seeded uniform placement."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def place(self, function_id: int, expected_load: float,
              state: PlacementState) -> int:
        return self._rng.randrange(state.nodes)


class RoundRobinBalancer(Balancer):
    """Strict rotation over nodes in placement order."""

    name = "round-robin"

    def __init__(self, seed: int = 0) -> None:
        self._next = 0

    def place(self, function_id: int, expected_load: float,
              state: PlacementState) -> int:
        node = self._next % state.nodes
        self._next += 1
        return node


class LeastLoadedBalancer(Balancer):
    """Place on the node with the least accumulated expected load.

    Ties break toward the lowest node index, keeping the placement
    stream deterministic.
    """

    name = "least-loaded"

    def __init__(self, seed: int = 0) -> None:
        pass

    def place(self, function_id: int, expected_load: float,
              state: PlacementState) -> int:
        return min(range(state.nodes), key=lambda n: (state.load[n], n))


class FunctionAffinityBalancer(Balancer):
    """Prefer nodes already hosting the same function.

    Among hosting nodes, the least-loaded wins; a function's first
    instance (no hosting node yet) falls back to global least-loaded.
    Affinity concentrates a function's warm instances, which maximizes
    keep-alive hit rates and lets Jukebox metadata be shared across
    co-resident instances of the same function.
    """

    name = "function-affinity"

    def __init__(self, seed: int = 0) -> None:
        pass

    def place(self, function_id: int, expected_load: float,
              state: PlacementState) -> int:
        hosting = state.function_nodes.get(function_id)
        if hosting:
            return min(hosting, key=lambda n: (state.load[n], n))
        return min(range(state.nodes), key=lambda n: (state.load[n], n))


_BALANCERS = {
    "random": RandomBalancer,
    "round-robin": RoundRobinBalancer,
    "least-loaded": LeastLoadedBalancer,
    "function-affinity": FunctionAffinityBalancer,
}

assert tuple(sorted(_BALANCERS)) == tuple(sorted(BALANCER_NAMES))


def make_balancer(name: str, seed: int = 0) -> Balancer:
    """Instantiate a placement policy by name (seeded where stochastic)."""
    try:
        cls = _BALANCERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown balancer {name!r}; expected one of "
            f"{', '.join(sorted(_BALANCERS))}") from None
    return cls(seed=seed)
