"""Region-scale orchestration: shard jobs, sweep, aggregate, trace.

:func:`simulate_region` is the fleet's public entry point.  It fans the
region out as ``shards`` content-addressed engine jobs (each a contiguous
node range), runs them through the ambient
:class:`~repro.engine.sweep.EngineContext` -- so shard results are
cached, parallelizable, and SIGKILL-resumable exactly like every other
simulation cell -- and folds the per-node results into one canonical
region dict.  The output is byte-identical whatever the shard count,
executor, or cache state: ``shards`` only partitions work, it never
appears in the result.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.engine.job import Job
from repro.engine.sweep import EngineContext, current_context, sweep
from repro.fleet.config import FleetConfig, shard_bounds
from repro.fleet.provider import PROVIDER
from repro.fleet.result import aggregate_nodes
from repro.obs import records as _obs


def shard_jobs(config: FleetConfig, shards: int = 1) -> List[Job]:
    """The region's engine jobs, one per contiguous node range."""
    shard_bounds(config.nodes, 0, shards)  # validates shards vs nodes
    return [Job.make(config, None, None, "fleet_shard", provider=PROVIDER,
                     shard=shard, shards=shards)
            for shard in range(shards)]


def simulate_region(config: FleetConfig, shards: int = 1,
                    context: Optional[EngineContext] = None) -> Dict:
    """Simulate one region; returns a canonical, JSON-safe result dict.

    The dict has three parts: ``config`` (the full fleet configuration,
    echoed so a result file is self-describing), ``node_results`` (one
    canonical dict per node, ascending by node id), and ``region`` (the
    order-free aggregate from :func:`repro.fleet.result.aggregate_nodes`).
    """
    ctx = context if context is not None else current_context()
    tracer = ctx.tracer
    tracing = tracer is not None and tracer.enabled
    if tracing:
        tracer.emit(_obs.FLEET_REGION_BEGIN, abbrev=config.abbrev,
                    nodes=config.nodes, instances=config.instances,
                    shards=shards, seed=config.seed)
    jobs = shard_jobs(config, shards)
    shard_results = sweep(jobs, context=ctx)
    node_results: List[Dict] = []
    for shard, nodes in enumerate(shard_results):
        if tracing:
            tracer.emit(_obs.FLEET_SHARD, shard=shard, shards=shards,
                        nodes=len(nodes),
                        invocations=sum(n["invocations"] for n in nodes))
        node_results.extend(nodes)
    node_results.sort(key=lambda n: n["node"])
    region = aggregate_nodes(node_results)
    if tracing:
        tracer.emit(_obs.FLEET_REGION_END, abbrev=config.abbrev,
                    invocations=region["invocations"],
                    cold_starts=region["cold_starts"],
                    dropped=region["dropped"],
                    p99_latency_ms=region["p99_latency_ms"],
                    capacity_inv_s=region["capacity_inv_s"])
    return {
        "config": dataclasses.asdict(config),
        "node_results": node_results,
        "region": region,
    }
