"""Mergeable fleet results: latency histograms and region aggregation.

A region simulates millions of invocations; shipping every per-invocation
latency through the Job cache would dwarf the results themselves.  Nodes
therefore fold latencies into a :class:`LatencyHistogram` -- fixed
log-spaced bins, so histograms from different nodes/shards merge exactly
(bin-wise addition) and percentiles are deterministic regardless of merge
order.  Bin resolution is ~1.8% (128 bins/decade), far below the
tolerances the metamorphic battery asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError

#: Lowest representable latency (ms); smaller observations clamp to bin 0.
_LO_MS = 1e-3
#: Bins per decade of latency.
_BINS_PER_DECADE = 128


@dataclass
class LatencyHistogram:
    """Log-spaced latency histogram with exact, order-free merging."""

    counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    @staticmethod
    def bin_index(latency_ms: float) -> int:
        if not math.isfinite(latency_ms):
            raise ConfigurationError(
                f"latency must be finite, got {latency_ms}")
        if latency_ms <= _LO_MS:
            return 0
        return int(math.log10(latency_ms / _LO_MS) * _BINS_PER_DECADE)

    @staticmethod
    def bin_upper_ms(index: int) -> float:
        """Upper edge of a bin -- the conservative percentile estimate."""
        return _LO_MS * 10.0 ** ((index + 1) / _BINS_PER_DECADE)

    def observe(self, latency_ms: float) -> None:
        idx = self.bin_index(latency_ms)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.total += 1

    def observe_many(self, latencies_ms: Iterable[float]) -> None:
        for latency in latencies_ms:
            self.observe(latency)

    def merge(self, other: "LatencyHistogram") -> None:
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total

    def percentile(self, q: float) -> float:
        """Latency (bin upper edge) at percentile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile out of range: {q}")
        if self.total == 0:
            return 0.0
        # Rank of the q-th sample, 1-based, nearest-rank definition.
        rank = max(1, math.ceil(q / 100.0 * self.total))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                return self.bin_upper_ms(idx)
        return self.bin_upper_ms(max(self.counts))

    @property
    def p50_ms(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99.0)

    def to_pairs(self) -> List[List[int]]:
        """Canonical ``[bin, count]`` pairs, ascending by bin."""
        return [[idx, self.counts[idx]] for idx in sorted(self.counts)]

    @classmethod
    def from_pairs(cls, pairs: Sequence[Sequence[int]]) -> "LatencyHistogram":
        hist = cls()
        for idx, count in pairs:
            if count < 0:
                raise ConfigurationError(
                    f"histogram count must be >= 0, got {count}")
            hist.counts[int(idx)] = hist.counts.get(int(idx), 0) + int(count)
            hist.total += int(count)
        return hist


def aggregate_nodes(node_results: Sequence[Mapping]) -> Dict:
    """Fold per-node result dicts into one region summary.

    Node results are plain canonical dicts (see ``fleet.node``); the
    aggregate is itself canonical -- identical whatever order or shard
    grouping the node results arrive in, because every field is either a
    sum, a max, or a merge of order-free histograms.
    """
    hist = LatencyHistogram()
    agg: Dict = {
        "nodes": len(node_results),
        "arrivals": 0,
        "invocations": 0,
        "cold_starts": 0,
        "dropped": 0,
        "evictions": 0,
        "busy_ms": 0.0,
        "peak_warm_instances": 0,
        "peak_memory_bytes": 0,
    }
    capacity = 0.0
    for node in node_results:
        for key in ("arrivals", "invocations", "cold_starts", "dropped",
                    "evictions"):
            agg[key] += node[key]
        agg["busy_ms"] += node["busy_ms"]
        agg["peak_warm_instances"] = max(agg["peak_warm_instances"],
                                         node["peak_warm_instances"])
        agg["peak_memory_bytes"] = max(agg["peak_memory_bytes"],
                                       node["peak_memory_bytes"])
        capacity += node["capacity_inv_s"]
        hist.merge(LatencyHistogram.from_pairs(node["latency_pairs"]))
    agg["capacity_inv_s"] = capacity
    agg["p50_latency_ms"] = hist.p50_ms
    agg["p99_latency_ms"] = hist.p99_ms
    agg["latency_pairs"] = hist.to_pairs()
    if agg["arrivals"]:
        agg["drop_fraction"] = agg["dropped"] / agg["arrivals"]
        agg["warm_fraction"] = (1.0 - agg["cold_starts"] / agg["invocations"]
                                if agg["invocations"] else 0.0)
    else:
        agg["drop_fraction"] = 0.0
        agg["warm_fraction"] = 0.0
    return agg
