"""One fleet node = one memory-enforcing :class:`ServerSimulator`.

The fleet deliberately reuses the single-server simulator unchanged as
its node model: the differential battery then proves that region
orchestration (planning, sharding, aggregation) adds nothing on top of
what one server would compute -- a 1-node fleet is byte-identical to a
hand-built ``ServerSimulator`` run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coldstart.model import ColdStartSpec
from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.plan import InstanceSpec, node_seed_for
from repro.fleet.popularity import function_profile
from repro.fleet.result import LatencyHistogram
from repro.server.keepalive import FixedTTL, HistogramTTL, KeepAlivePolicy
from repro.server.server import ServerConfig, ServerSimulator
from repro.workloads.arrival import make_arrival_process


def make_keepalive(config: FleetConfig) -> KeepAlivePolicy:
    """Instantiate the configured keep-alive policy for one node."""
    if config.keepalive == "fixed":
        return FixedTTL(ttl_minutes=config.ttl_minutes)
    if config.keepalive == "histogram":
        return HistogramTTL(default_ttl_minutes=config.ttl_minutes)
    raise ConfigurationError(
        f"unknown keep-alive policy {config.keepalive!r}")


def make_coldstart_spec(config: FleetConfig) -> ColdStartSpec:
    """The node-level cold-start model spec the fleet config selects."""
    return ColdStartSpec(
        kind=config.coldstart,
        constant_ms=config.cold_start_penalty_ms,
        page_replay=config.page_replay,
        init_trim=config.init_trim,
    )


def build_node(config: FleetConfig, node: int,
               specs: List[InstanceSpec]) -> ServerSimulator:
    """Construct the node's simulator with all planned instances added."""
    server_cfg = ServerConfig(
        cores=config.cores_per_node,
        memory_gb=config.memory_gb_per_node,
        service_time_ms=config.service_time_ms,
        enforce_memory=True,
        cold_start_penalty_ms=config.cold_start_penalty_ms,
        coldstart=make_coldstart_spec(config),
    )
    sim = ServerSimulator(config=server_cfg,
                          keepalive=make_keepalive(config),
                          seed=node_seed_for(config, node))
    for spec in specs:
        sim.add_instance(
            function_profile(spec.function_id),
            make_arrival_process(config.arrival, config.mean_iat_ms,
                                 seed=spec.arrival_seed),
            instance_id=spec.instance_id,
            service_scale=spec.service_scale,
        )
    return sim


def simulate_node(config: FleetConfig, node: int,
                  specs: List[InstanceSpec]) -> Dict:
    """Simulate one node; return a canonical, JSON-safe result dict."""
    sim = build_node(config, node, specs)
    stats = sim.run(config.duration_ms)
    hist = LatencyHistogram()
    hist.observe_many(stats.latencies_ms)
    busy_s = stats.busy_ms / 1000.0
    # Throughput capacity: invocations the node's cores sustain per
    # core-busy second, scaled by core count -- the fleet analogue of the
    # paper's invocations/sec capacity metric.
    capacity = (config.cores_per_node * stats.invocations / busy_s
                if busy_s > 0 else 0.0)
    return {
        "node": node,
        "instances": len(specs),
        "arrivals": stats.arrivals,
        "invocations": stats.invocations,
        "cold_starts": stats.cold_starts,
        "dropped": stats.dropped,
        "evictions": stats.evictions,
        "busy_ms": stats.busy_ms,
        "capacity_inv_s": capacity,
        "peak_warm_instances": stats.peak_warm_instances,
        "peak_memory_bytes": stats.peak_memory_bytes,
        "latency_pairs": hist.to_pairs(),
    }
