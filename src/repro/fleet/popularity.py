"""Heavy-tailed per-function popularity and service heterogeneity.

Production serverless populations are extremely skewed: a handful of
functions receive most invocations (Shahrad et al.'s Azure study).  The
fleet models this with a Zipf allotment -- function ``f`` (0-indexed by
popularity rank) carries weight ``(f+1)^-alpha`` -- turned into integer
per-function instance counts by largest-remainder rounding, so counts
are deterministic and always sum to the configured region total.

Each region function is mapped onto one of the paper's 20 calibrated
Table 2 profiles (round-robin by rank), which supplies its memory
footprint, language, and relative compute weight.  Jukebox-on fleets
scale a function's service time down by its language's capacity uplift,
reflecting Fig. 10's observation that the language is the biggest
determinant of Jukebox's efficacy (Go > NodeJS > Python).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.workloads.profiles import (
    FunctionProfile,
    LANG_GO,
    LANG_NODEJS,
    LANG_PYTHON,
)
from repro.workloads.suite import SUITE

#: Per-language Jukebox capacity uplift applied to service times when a
#: fleet runs with the optimization on.  Values follow the Fig. 10
#: language ordering around the paper's +19.6% geomean.
JUKEBOX_UPLIFT = {
    LANG_PYTHON: 0.15,
    LANG_NODEJS: 0.21,
    LANG_GO: 0.25,
}


def zipf_weights(functions: int, alpha: float) -> List[float]:
    """Normalized Zipf weights for ``functions`` popularity ranks."""
    if functions <= 0:
        raise ConfigurationError(
            f"functions must be positive, got {functions}")
    raw = [(rank + 1) ** -alpha for rank in range(functions)]
    total = sum(raw)
    return [w / total for w in raw]


def instances_per_function(functions: int, instances: int,
                           alpha: float) -> List[int]:
    """Integer instance allotment by largest-remainder rounding.

    Deterministic, sums exactly to ``instances``; ties in the remainder
    break toward the more popular (lower-rank) function.
    """
    if instances <= 0:
        raise ConfigurationError(
            f"instances must be positive, got {instances}")
    weights = zipf_weights(functions, alpha)
    shares = [w * instances for w in weights]
    counts = [int(s) for s in shares]
    remainder = instances - sum(counts)
    by_fraction = sorted(range(functions),
                         key=lambda f: (-(shares[f] - counts[f]), f))
    for f in by_fraction[:remainder]:
        counts[f] += 1
    return counts


@lru_cache(maxsize=1)
def _suite_mean_instructions() -> float:
    return sum(p.instructions for p in SUITE) / len(SUITE)


def function_profile(function_id: int) -> FunctionProfile:
    """The Table 2 profile backing one region function (round-robin)."""
    if function_id < 0:
        raise ConfigurationError(
            f"function_id must be >= 0, got {function_id}")
    return SUITE[function_id % len(SUITE)]


def service_scale(function_id: int, jukebox: bool) -> float:
    """Service-time multiplier of one region function.

    The base multiplier is the profile's instruction count relative to
    the suite mean (heavier functions run longer); with Jukebox on it is
    divided by ``1 + uplift(language)`` -- the per-invocation frontend
    savings turned into service-time reduction, which is exactly the
    mechanism behind the paper's fleet-capacity claim.
    """
    profile = function_profile(function_id)
    scale = profile.instructions / _suite_mean_instructions()
    if jukebox:
        scale /= 1.0 + JUKEBOX_UPLIFT[profile.language]
    return scale


def region_functions(functions: int, instances: int,
                     alpha: float) -> List[Tuple[int, int]]:
    """``(function_id, instance_count)`` pairs, popularity-ranked."""
    counts = instances_per_function(functions, instances, alpha)
    return [(f, counts[f]) for f in range(functions)]
