"""The fleet's engine config: one shard of a region per Job.

A shard job carries ``profile=FleetConfig`` (the whole region
description), ``machine=None``/``cfg=None`` (node hardware and scale live
inside the fleet config), and ``opts={"shard": s, "shards": n}``.  The
builder re-derives the full region plan locally -- it is a pure function
of the config -- and simulates only its own contiguous node range, so
shard results concatenate into exactly the serial region whatever the
shard count or executor.

This module is the ``provider`` named by fleet jobs: its static import
closure (the whole ``repro.fleet`` package plus the server/workload
modules it reaches) is fingerprinted into every job key by
:func:`repro.engine.job.provider_version`, so editing any fleet source
transparently invalidates memoized shard results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.common import register_config
from repro.fleet.config import FleetConfig, shard_node_ids
from repro.fleet.node import simulate_node
from repro.fleet.plan import plan_region

#: Module path fleet jobs pass as ``Job.make(..., provider=...)``.
PROVIDER = "repro.fleet.provider"


@register_config("fleet_shard")
def _build_fleet_shard(profile: FleetConfig, machine: Optional[Any],
                       cfg: Optional[Any], shard: int = 0,
                       shards: int = 1) -> List[Dict]:
    """Simulate one shard's nodes; returns their canonical result dicts."""
    if not isinstance(profile, FleetConfig):
        raise ConfigurationError(
            f"fleet_shard expects a FleetConfig profile, got "
            f"{type(profile).__name__}")
    plan = plan_region(profile)
    return [simulate_node(profile, node, plan[node])
            for node in shard_node_ids(profile.nodes, shard, shards)]
