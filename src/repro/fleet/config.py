"""Region-scale fleet configuration.

A :class:`FleetConfig` is the *complete* description of one simulated
region: everything a shard worker needs to reconstruct its slice of the
fleet is derivable from this one frozen dataclass plus a node range, so a
region run shards across the sweep engine without shipping any plan data
through :class:`~repro.engine.job.Job` options.  Determinism contract:
the region's workload (function popularity, instance placement, arrival
streams, per-node service RNG) is a pure function of the config -- two
runs of the same config, whatever the shard count or executor, produce
byte-identical canonical JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, List, Tuple

from repro.coldstart.model import COLDSTART_KINDS
from repro.errors import ConfigurationError
from repro.workloads.arrival import ARRIVAL_KINDS

#: Load-balancer / placement policy names accepted by ``balancer``.
BALANCER_NAMES = ("random", "round-robin", "least-loaded",
                  "function-affinity")

#: Keep-alive policy names accepted by ``keepalive``.
KEEPALIVE_NAMES = ("fixed", "histogram")


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one simulated region.

    Scale knobs (``nodes``/``functions``/``instances``/``duration_ms``)
    size the region; policy knobs (``balancer``/``keepalive``/
    ``arrival``) select the pluggable behaviours under comparison; and
    ``jukebox`` turns the paper's optimization on per node, scaling every
    function's service time down by its language's capacity uplift.
    """

    nodes: int = 16
    cores_per_node: int = 10
    memory_gb_per_node: int = 64
    #: Mean service time of an *average* function instance; per-function
    #: heterogeneity multiplies this by the profile's instruction-count
    #: ratio against the suite mean.
    service_time_ms: float = 1.0
    #: Extra latency charged to a cold-started invocation.  Under the
    #: default ``coldstart="constant"`` model this scalar is the whole
    #: cost (legacy-identical); the ``"spectrum"`` model replaces it
    #: with library-init + page-restore decomposition per
    #: :mod:`repro.coldstart`.
    cold_start_penalty_ms: float = 120.0
    #: Cold-start model kind: one of
    #: :data:`repro.coldstart.model.COLDSTART_KINDS`.
    coldstart: str = "constant"
    #: Spectrum-model knob: REAP page record/replay on restore.
    page_replay: bool = True
    #: Spectrum-model knob: trim eagerly-imported unused libraries.
    init_trim: bool = False
    #: Distinct functions in the region (mapped onto the Table 2 suite
    #: round-robin for footprints and language mix).
    functions: int = 40
    #: Total warm function instances region-wide, allotted to functions
    #: by the Zipf popularity model.
    instances: int = 800
    duration_ms: float = 60_000.0
    #: Per-instance mean inter-arrival time.
    mean_iat_ms: float = 2_000.0
    #: Arrival mix: poisson | bursty | diurnal (fixed/lognormal also
    #: accepted for experiments).
    arrival: str = "poisson"
    #: Zipf skew of per-function popularity (instance allotment).
    zipf_alpha: float = 1.1
    balancer: str = "round-robin"
    keepalive: str = "fixed"
    ttl_minutes: float = 10.0
    #: Per-node Jukebox on/off (the with/without axis of the capacity
    #: sweep).
    jukebox: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        for name, value in (("nodes", self.nodes),
                            ("cores_per_node", self.cores_per_node),
                            ("memory_gb_per_node", self.memory_gb_per_node),
                            ("functions", self.functions),
                            ("instances", self.instances)):
            if value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}")
        for name, value in (("service_time_ms", self.service_time_ms),
                            ("duration_ms", self.duration_ms),
                            ("mean_iat_ms", self.mean_iat_ms),
                            ("ttl_minutes", self.ttl_minutes)):
            if not math.isfinite(value) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a finite positive number, got {value}")
        if not math.isfinite(self.cold_start_penalty_ms) \
                or self.cold_start_penalty_ms < 0:
            raise ConfigurationError(
                f"cold_start_penalty_ms must be finite and >= 0, got "
                f"{self.cold_start_penalty_ms}")
        if self.coldstart not in COLDSTART_KINDS:
            raise ConfigurationError(
                f"unknown cold-start model {self.coldstart!r}; expected "
                f"one of {', '.join(COLDSTART_KINDS)}")
        if not math.isfinite(self.zipf_alpha) or self.zipf_alpha < 0:
            raise ConfigurationError(
                f"zipf_alpha must be finite and >= 0, got {self.zipf_alpha}")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival mix {self.arrival!r}; expected one of "
                f"{', '.join(ARRIVAL_KINDS)}")
        if self.balancer not in BALANCER_NAMES:
            raise ConfigurationError(
                f"unknown balancer {self.balancer!r}; expected one of "
                f"{', '.join(BALANCER_NAMES)}")
        if self.keepalive not in KEEPALIVE_NAMES:
            raise ConfigurationError(
                f"unknown keep-alive policy {self.keepalive!r}; expected "
                f"one of {', '.join(KEEPALIVE_NAMES)}")

    @property
    def abbrev(self) -> str:
        """Short label used by :meth:`repro.engine.job.Job.describe`."""
        jb = "jb" if self.jukebox else "base"
        return (f"fleet-{self.nodes}n-{self.instances}i-"
                f"{self.arrival}-{self.balancer}-{jb}")

    def replace(self, **kwargs: Any) -> "FleetConfig":
        """A copy with ``kwargs`` overridden, re-validated."""
        return _dc_replace(self, **kwargs)

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


def shard_bounds(nodes: int, shard: int, shards: int) -> Tuple[int, int]:
    """Half-open node range ``[lo, hi)`` owned by ``shard`` of ``shards``.

    Nodes are split into contiguous, near-equal ranges (the first
    ``nodes % shards`` shards take one extra node), so every node belongs
    to exactly one shard whatever the shard count.
    """
    if shards <= 0:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    if not 0 <= shard < shards:
        raise ConfigurationError(
            f"shard index {shard} out of range for {shards} shards")
    if shards > nodes:
        raise ConfigurationError(
            f"cannot split {nodes} nodes into {shards} shards; "
            f"shards must be <= nodes")
    base, extra = divmod(nodes, shards)
    lo = shard * base + min(shard, extra)
    hi = lo + base + (1 if shard < extra else 0)
    return lo, hi


def shard_node_ids(nodes: int, shard: int, shards: int) -> List[int]:
    lo, hi = shard_bounds(nodes, shard, shards)
    return list(range(lo, hi))
