"""Region-scale fleet simulation (many servers behind a load balancer).

The fleet layer scales the single-server model of :mod:`repro.server` out
to a region: many multi-core nodes, a pluggable placement policy, a Zipf
per-function popularity model, per-node keep-alive and Jukebox on/off --
sharded across :mod:`repro.engine` so region sweeps are parallel, cached,
and crash-resumable.  Entry point: :func:`repro.fleet.region
.simulate_region`.
"""

from repro.fleet.balancer import (
    Balancer,
    FunctionAffinityBalancer,
    LeastLoadedBalancer,
    PlacementState,
    RandomBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.fleet.config import (
    BALANCER_NAMES,
    KEEPALIVE_NAMES,
    FleetConfig,
    shard_bounds,
    shard_node_ids,
)
from repro.fleet.node import build_node, make_keepalive, simulate_node
from repro.fleet.plan import InstanceSpec, plan_region
from repro.fleet.popularity import (
    JUKEBOX_UPLIFT,
    instances_per_function,
    service_scale,
    zipf_weights,
)
from repro.fleet.provider import PROVIDER
from repro.fleet.region import shard_jobs, simulate_region
from repro.fleet.result import LatencyHistogram, aggregate_nodes

__all__ = [
    "BALANCER_NAMES",
    "Balancer",
    "FleetConfig",
    "FunctionAffinityBalancer",
    "InstanceSpec",
    "JUKEBOX_UPLIFT",
    "KEEPALIVE_NAMES",
    "LatencyHistogram",
    "LeastLoadedBalancer",
    "PROVIDER",
    "PlacementState",
    "RandomBalancer",
    "RoundRobinBalancer",
    "aggregate_nodes",
    "build_node",
    "instances_per_function",
    "make_balancer",
    "make_keepalive",
    "plan_region",
    "service_scale",
    "shard_bounds",
    "shard_jobs",
    "shard_node_ids",
    "simulate_node",
    "simulate_region",
    "zipf_weights",
]
