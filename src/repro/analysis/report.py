"""Plain-text rendering of experiment results.

Each experiment module returns structured results; these helpers render
them as aligned ASCII tables and horizontal bar charts so the benchmark
harness can print "the same rows/series the paper reports" without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Width of the bar area in bar charts.
_BAR_WIDTH = 40


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_bars(labels: Sequence[str], values: Sequence[float],
                title: Optional[str] = None, unit: str = "",
                max_value: Optional[float] = None) -> str:
    """Render a horizontal bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max_value if max_value is not None else max(
        (abs(v) for v in values), default=1.0)
    peak = peak or 1.0
    width = max(len(label) for label in labels) if labels else 0
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / peak * _BAR_WIDTH)))
        lines.append(f"{label.ljust(width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def format_stacked_bars(labels: Sequence[str],
                        stacks: Sequence[Dict[str, float]],
                        order: Sequence[str],
                        symbols: Optional[Dict[str, str]] = None,
                        title: Optional[str] = None,
                        max_value: Optional[float] = None) -> str:
    """Render stacked horizontal bars (the CPI stacks of Fig. 2).

    ``stacks`` maps category -> value per label; ``order`` fixes segment
    order; ``symbols`` maps category -> a single fill character.
    """
    if symbols is None:
        default = "RFBSD"
        symbols = {cat: default[i % len(default)] for i, cat in enumerate(order)}
    totals = [sum(stack.get(cat, 0.0) for cat in order) for stack in stacks]
    peak = max_value if max_value is not None else max(totals, default=1.0)
    peak = peak or 1.0
    width = max(len(label) for label in labels) if labels else 0
    lines: List[str] = []
    if title:
        lines.append(title)
        legend = "  ".join(f"{symbols[cat]}={cat}" for cat in order)
        lines.append(f"  [{legend}]")
    for label, stack, total in zip(labels, stacks, totals):
        bar = ""
        for cat in order:
            seg = int(round(stack.get(cat, 0.0) / peak * _BAR_WIDTH))
            bar += symbols[cat] * seg
        lines.append(f"{label.ljust(width)} | {bar} {total:.2f}")
    return "\n".join(lines)


def format_percent(value: float, signed: bool = True) -> str:
    """Format a fraction as a percentage string (0.187 -> '+18.7%')."""
    pct = value * 100.0
    if signed:
        return f"{pct:+.1f}%"
    return f"{pct:.1f}%"
