"""Metrics used across the characterization and evaluation experiments."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set

from repro.errors import ConfigurationError


def jaccard_index(a: Set[int], b: Set[int]) -> float:
    """Jaccard index of two footprints (Fig. 6b; Jaccard 1912).

    Ranges from 0 (disjoint) to 1 (identical).  The union of two empty sets
    is defined here to have index 1 (identical emptiness).
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def pairwise_jaccard(footprints: Sequence[Set[int]]) -> List[float]:
    """All-pairs Jaccard indices (the paper compares 25 invocations ->
    300 pairs)."""
    indices: List[float] = []
    n = len(footprints)
    for i in range(n):
        for j in range(i + 1, n):
            indices.append(jaccard_index(footprints[i], footprints[j]))
    return indices


def speedup(baseline_cycles: float, optimized_cycles: float) -> float:
    """Relative speedup: 0.187 means 18.7% faster than baseline."""
    if optimized_cycles <= 0:
        raise ConfigurationError("optimized cycles must be positive")
    return baseline_cycles / optimized_cycles - 1.0


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    vals = list(values)
    if not vals:
        raise ConfigurationError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ConfigurationError(f"geomean needs positive values: {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_speedup(speedups: Iterable[float]) -> float:
    """Geometric mean of *speedups* given as fractions (0.187 = 18.7%)."""
    return geomean([1.0 + s for s in speedups]) - 1.0


def mpki(misses: float, instructions: int) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        return 0.0
    return 1000.0 * misses / instructions


def percent_change(before: float, after: float) -> float:
    """Relative change in percent: -74 means a 74% reduction (Table 3)."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """Five-number-ish summary used by the footprint/commonality figures."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    median = (ordered[n // 2] if n % 2 == 1
              else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2]))
    return {
        "min": float(ordered[0]),
        "mean": float(sum(ordered) / n),
        "median": float(median),
        "max": float(ordered[-1]),
    }
