"""Analysis helpers: metrics (CPI, MPKI, Jaccard, speedups) and plain-text
report rendering for the experiment harness."""

from repro.analysis.metrics import (
    geomean,
    geomean_speedup,
    jaccard_index,
    mpki,
    pairwise_jaccard,
    percent_change,
    speedup,
    summarize_distribution,
)
from repro.analysis.report import (
    format_bars,
    format_percent,
    format_stacked_bars,
    format_table,
)

__all__ = [
    "format_bars",
    "format_percent",
    "format_stacked_bars",
    "format_table",
    "geomean",
    "geomean_speedup",
    "jaccard_index",
    "mpki",
    "pairwise_jaccard",
    "percent_change",
    "speedup",
    "summarize_distribution",
]
