"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A machine, cache, or prefetcher configuration is invalid."""


class TraceError(ReproError):
    """An invocation trace is malformed or inconsistent."""


class MetadataError(ReproError):
    """Jukebox metadata handling failed (e.g. writes past the buffer limit
    that should have been clamped, or decoding of a corrupt entry)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""
