"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A machine, cache, or prefetcher configuration is invalid."""


class TraceError(ReproError):
    """An invocation trace is malformed or inconsistent."""


class MetadataError(ReproError):
    """Jukebox metadata handling failed (e.g. writes past the buffer limit
    that should have been clamped, or decoding of a corrupt entry)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ContractViolationError(SimulationError):
    """A runtime invariant checked by :mod:`repro.lint.contracts` failed.

    Raised when a statistics object, cache, or metadata buffer is caught in
    a state that the simulator's accounting can never legally produce
    (e.g. hits + misses != accesses, a duplicate tag within a cache set, or
    a metadata buffer holding more entries than its byte limit allows).
    """


#: Canonical short alias for configuration failures.  ``repro.lint`` and the
#: parameter validators raise :class:`ConfigurationError`; ``ConfigError``
#: is the same class under the name used throughout the lint docs.
ConfigError = ConfigurationError
