"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A machine, cache, or prefetcher configuration is invalid."""


class TraceError(ReproError):
    """An invocation trace is malformed or inconsistent."""


class MetadataError(ReproError):
    """Jukebox metadata handling failed (e.g. writes past the buffer limit
    that should have been clamped, or decoding of a corrupt entry)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ContractViolationError(SimulationError):
    """A runtime invariant checked by :mod:`repro.lint.contracts` failed.

    Raised when a statistics object, cache, or metadata buffer is caught in
    a state that the simulator's accounting can never legally produce
    (e.g. hits + misses != accesses, a duplicate tag within a cache set, or
    a metadata buffer holding more entries than its byte limit allows).
    """


class TraceSchemaError(ReproError):
    """A trace record violates the :mod:`repro.obs` schema.

    Raised when an event is emitted with an unknown kind or a non-scalar
    payload, or when a trace file read back for summarization contains a
    malformed or version-mismatched record.
    """


class SweepFailure(ReproError):
    """A sweep cell failed and its original exception could not be
    re-raised directly (e.g. the worker-side exception was unpicklable).

    The message embeds the cell's identity, attempt count, and the remote
    traceback captured by :class:`repro.engine.resilience.JobError`.
    """


class WorkerCrashError(ReproError):
    """A pool worker died (non-zero exit) while executing a sweep cell.

    Raised only when pool replacement is exhausted; ordinarily the
    :class:`~repro.engine.executors.ProcessExecutor` re-dispatches the
    unfinished frontier to a fresh pool and the caller never sees this.
    """


#: Canonical short alias for configuration failures.  ``repro.lint`` and the
#: parameter validators raise :class:`ConfigurationError`; ``ConfigError``
#: is the same class under the name used throughout the lint docs.
ConfigError = ConfigurationError
