"""Counters, gauges, histograms and the registry that exports them.

A :class:`MetricsRegistry` is the numeric side of the observability
layer: where the tracer records *what happened*, the registry records
*how much*.  ``engine.sweep`` publishes its :class:`SweepStats` deltas
into one, ``sim.stats`` objects publish their hierarchy counters, and
the runner writes the whole registry to disk behind ``--metrics-out``.

Like the tracer, a registry is injected -- never a module-level
singleton (REPRO008) -- and its export is canonical: instruments sort by
name and serialize with sorted keys, so two runs that record the same
values produce byte-identical JSON.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Schema tag on exported metrics documents.
SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (seconds-ish scale); the last
#: implicit bucket is unbounded.
DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)


class Counter:
    """A monotonically non-decreasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def to_json(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value; set() overwrites."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def to_json(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with running sum/min/max.

    ``bounds`` are inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last edge.  Bucketing
    is fixed at construction so exports are shape-stable across runs.
    """

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be non-empty and strictly "
                f"increasing, got {list(bounds)!r}")
        self.name = name
        self.bounds = edges
        self._buckets = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: float = 0.0
        self._max: float = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._buckets[bisect_left(self.bounds, value)] += 1
        if self._count == 0:
            self._min = self._max = value
        else:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self._buckets),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }


class MetricsRegistry:
    """A named collection of instruments with canonical JSON export.

    ``counter``/``gauge``/``histogram`` get-or-create by name; asking for
    an existing name with a different instrument type is a configuration
    error, so one metric never silently means two things.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls, factory):
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"metric name must be a non-empty string, got {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} is a {type(existing).__name__}, not a "
                    f"{cls.__name__}")
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def value(self, name: str) -> Any:
        """The current value of a counter/gauge (KeyError if absent)."""
        return self._instruments[name].value

    def items(self) -> List[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        return sorted(self._instruments.items())

    def to_json(self) -> Dict[str, Any]:
        """Canonical export: instruments grouped by type, sorted by name."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, instrument in self.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.to_json()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.to_json()
            else:
                histograms[name] = instrument.to_json()
        return {
            "schema": SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: Union[str, Path]) -> Path:
        """Write the canonical export to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json_text(), encoding="utf-8")
        return path

    def describe(self) -> str:
        if not self._instruments:
            return "metrics: empty"
        parts = []
        for name, instrument in self.items():
            if isinstance(instrument, Histogram):
                parts.append(f"{name}[n={instrument.count}]")
            else:
                parts.append(f"{name}={instrument.value}")
        return "metrics: " + ", ".join(parts)
