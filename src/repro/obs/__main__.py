"""CLI: ``python -m repro.obs summarize trace.jsonl [--json]``.

Exit codes: 0 on success, 1 when the trace violates the schema or is
internally inconsistent, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.errors import TraceSchemaError
from repro.obs.summarize import (
    read_trace,
    render_summary,
    summarize,
    summary_to_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs trace files.")
    sub = parser.add_subparsers(dest="command", required=True)
    summ = sub.add_parser(
        "summarize",
        help="aggregate a JSONL trace into a sweep report")
    summ.add_argument("trace", help="trace file written via --trace FILE")
    summ.add_argument("--json", action="store_true",
                      help="emit the report as canonical JSON")
    summ.add_argument("--slowest", type=int, default=5, metavar="N",
                      help="how many slowest cells to list (default 5)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events = read_trace(args.trace)
        summary = summarize(events)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    except TraceSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(json.dumps(summary_to_json(summary, slowest=args.slowest),
                             sort_keys=True, indent=2))
        else:
            print(render_summary(summary, slowest=args.slowest))
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early;
        # that truncates output by design, it is not a failure.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
