"""Injectable clocks: the only source of trace timestamps.

The observability layer never reads host time itself (lint rule REPRO006
covers ``obs/``): every timestamp on a :class:`~repro.obs.records
.TraceEvent` comes from a zero-argument callable injected at
:class:`~repro.obs.tracer.Tracer` construction.  The CLI layer injects
``time.perf_counter`` for real wall-clock traces; tests inject the
deterministic clocks below so traces are bit-stable under
``--inject-fault`` drills and golden comparisons.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class TickClock:
    """A deterministic logical clock: 0.0, step, 2*step, ... per call.

    Reruns that make the same sequence of clock reads see the same
    timestamps, which turns per-job "wall time" into a reproducible
    event-count measure in tests.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ConfigurationError(
                f"TickClock step must be > 0, got {step}")
        self._next = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        now = self._next
        self._next += self._step
        return now


class FrozenClock:
    """A clock pinned to one instant (spans measure as zero seconds)."""

    def __init__(self, now: float = 0.0) -> None:
        self._now = float(now)

    def __call__(self) -> float:
        return self._now
