"""Typed, picklable trace records and their JSON schema.

A trace is a sequence of :class:`TraceEvent` values: one flat record per
observable engine action, ordered by a per-tracer ``seq`` counter.  The
vocabulary is closed (:data:`KINDS`) so downstream tooling -- the
:mod:`repro.obs.summarize` aggregator, the golden-trace tests -- can rely
on every record meaning exactly one thing:

========================  ==================================================
kind                      emitted when
========================  ==================================================
``sweep.begin/end``       :func:`repro.engine.sweep_outcomes` starts /
                          finishes one batch (the end record carries the
                          batch's counter deltas)
``cache.hit/miss``        a :class:`~repro.engine.cache.ResultCache` lookup
``cache.store``           a completed cell is checkpointed
``cache.evict``           a stale/corrupt entry is dropped on read
``cache.corrupt``         a ``corrupt`` fault overwrote an entry
``executor.dispatch``     a task is submitted to the executor for one round
``executor.harvest``      a task's attempt completed (success or failure)
``executor.pool_death``   a pool worker exited non-zero; frontier
                          re-dispatched
``executor.degrade``      repeated crashes degraded the pool to serial
``retry.backoff``         a transient failure was scheduled for retry
``job.deadline``          a dispatch (or the whole sweep) exceeded its
                          guard deadline
``worker.kill``           the guard terminated a pool to reap a hung
                          worker
``cache.lock``            the advisory cross-process cache lock was
                          acquired or released
``cache.quarantine``      a corrupt/torn entry was moved aside for
                          recompute (``fsck`` can inspect it later)
``cache.store_failed``    a cache store hit an I/O error; the sweep
                          degraded to no-store mode
``fsck.begin/end``        one ``repro.engine fsck`` pass over a cache root
``fsck.repair``           fsck fixed a repairable defect (misplaced
                          entry, orphan temp file, empty fanout dir)
``fsck.evict``            fsck quarantined an unrecoverable entry
``fleet.region.begin``    :func:`repro.fleet.region.simulate_region`
                          starts one region run (nodes/instances/shards)
``fleet.shard``           one region shard's results were collected
``fleet.region.end``      a region run finished (aggregate counters)
``coldstart.sweep.begin`` :func:`repro.experiments.ext_spectrum.run`
                          starts one spectrum sweep (functions/variants)
``coldstart.point``       one (function, variant, IAT) spectrum cell was
                          collected (regime + latency decomposition)
``coldstart.sweep.end``   a spectrum sweep finished (point counts)
========================  ==================================================

Determinism rules: ``seq`` and every payload field are pure functions of
the run's inputs; the *only* nondeterministic field is ``t``, which comes
exclusively from the tracer's injected clock (``None`` when no clock is
configured).  Two runs with identical inputs therefore produce identical
traces modulo ``t`` -- the invariant the regression tests pin.

Records are frozen dataclasses whose payload is a sorted tuple of
``(name, value)`` pairs, so they pickle, hash, and compare structurally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import TraceSchemaError

#: Bumped whenever the record layout changes incompatibly.
SCHEMA_VERSION = 1

# -- The closed event vocabulary -------------------------------------------

SWEEP_BEGIN = "sweep.begin"
SWEEP_END = "sweep.end"
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_STORE = "cache.store"
CACHE_EVICT = "cache.evict"
CACHE_CORRUPT = "cache.corrupt"
DISPATCH = "executor.dispatch"
HARVEST = "executor.harvest"
POOL_DEATH = "executor.pool_death"
POOL_DEGRADE = "executor.degrade"
RETRY = "retry.backoff"
JOB_DEADLINE = "job.deadline"
WORKER_KILL = "worker.kill"
CACHE_LOCK = "cache.lock"
CACHE_QUARANTINE = "cache.quarantine"
CACHE_STORE_FAILED = "cache.store_failed"
FSCK_BEGIN = "fsck.begin"
FSCK_REPAIR = "fsck.repair"
FSCK_EVICT = "fsck.evict"
FSCK_END = "fsck.end"
FLEET_REGION_BEGIN = "fleet.region.begin"
FLEET_SHARD = "fleet.shard"
FLEET_REGION_END = "fleet.region.end"
COLDSTART_SWEEP_BEGIN = "coldstart.sweep.begin"
COLDSTART_POINT = "coldstart.point"
COLDSTART_SWEEP_END = "coldstart.sweep.end"

KINDS = frozenset({
    SWEEP_BEGIN, SWEEP_END,
    CACHE_HIT, CACHE_MISS, CACHE_STORE, CACHE_EVICT, CACHE_CORRUPT,
    CACHE_LOCK, CACHE_QUARANTINE, CACHE_STORE_FAILED,
    DISPATCH, HARVEST, POOL_DEATH, POOL_DEGRADE,
    RETRY,
    JOB_DEADLINE, WORKER_KILL,
    FSCK_BEGIN, FSCK_REPAIR, FSCK_EVICT, FSCK_END,
    FLEET_REGION_BEGIN, FLEET_SHARD, FLEET_REGION_END,
    COLDSTART_SWEEP_BEGIN, COLDSTART_POINT, COLDSTART_SWEEP_END,
})

#: Top-level JSON keys that payload fields may not shadow.
_RESERVED_KEYS = frozenset({"schema", "seq", "kind", "t"})

#: Scalar types a payload field may carry (traces are JSON, not pickles).
_SCALAR_TYPES = (bool, int, float, str)


@dataclass(frozen=True)
class TraceEvent:
    """One observable engine action, in picklable, JSON-stable form."""

    seq: int
    kind: str
    #: Injected-clock reading at emission; ``None`` without a clock.  This
    #: is the only field allowed to differ between identical runs.
    t: Optional[float] = None
    fields: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(seq: int, kind: str, t: Optional[float] = None,
             **fields: Any) -> "TraceEvent":
        """Build a validated event; payload keys are sorted for stability."""
        event = TraceEvent(seq=seq, kind=kind, t=t,
                           fields=tuple(sorted(fields.items())))
        validate_event(event.to_json())
        return event

    def fields_dict(self) -> Dict[str, Any]:
        return dict(self.fields)

    def to_json(self) -> Dict[str, Any]:
        """The canonical flat JSON form (one trace-file line)."""
        record: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "t": self.t,
        }
        record.update(self.fields)
        return record

    def to_jsonl(self) -> str:
        """One canonical JSONL line (sorted keys, compact separators)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @staticmethod
    def from_json(record: Mapping[str, Any]) -> "TraceEvent":
        """Parse (and schema-validate) one trace-file record."""
        validate_event(record)
        fields = tuple(sorted(
            (k, v) for k, v in record.items() if k not in _RESERVED_KEYS))
        return TraceEvent(seq=record["seq"], kind=record["kind"],
                          t=record["t"], fields=fields)


def validate_event(record: Any) -> None:
    """Schema-validate one flat record; raise :class:`TraceSchemaError`.

    Checks the envelope (schema version, monotonic-friendly ``seq``, a
    known ``kind``, a numeric-or-null ``t``) and that every payload field
    is a JSON scalar under a non-reserved string key -- the guarantees
    :mod:`repro.obs.summarize` and the golden-trace tests build on.
    """
    if not isinstance(record, Mapping):
        raise TraceSchemaError(
            f"trace record must be a JSON object, got "
            f"{type(record).__name__}")
    for key in ("schema", "seq", "kind"):
        if key not in record:
            raise TraceSchemaError(f"trace record is missing {key!r}: "
                                   f"{dict(record)!r}")
    if record["schema"] != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"trace schema {record['schema']!r} is not the supported "
            f"version {SCHEMA_VERSION}")
    seq = record["seq"]
    if not (isinstance(seq, int) and not isinstance(seq, bool)) or seq < 0:
        raise TraceSchemaError(f"trace seq must be a non-negative integer, "
                               f"got {seq!r}")
    kind = record["kind"]
    if kind not in KINDS:
        raise TraceSchemaError(
            f"unknown trace event kind {kind!r}; expected one of "
            f"{', '.join(sorted(KINDS))}")
    t = record.get("t")
    if t is not None and not isinstance(t, (int, float)):
        raise TraceSchemaError(f"trace t must be a number or null, got {t!r}")
    for key, value in record.items():
        if key in _RESERVED_KEYS:
            continue
        if not isinstance(key, str):
            raise TraceSchemaError(f"trace field key {key!r} must be a string")
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise TraceSchemaError(
                f"trace field {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}")
