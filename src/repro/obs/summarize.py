"""Trace aggregation: turn a JSONL event stream into a sweep report.

``python -m repro.obs summarize trace.jsonl`` reads a trace written by
:class:`~repro.obs.tracer.JsonlSink`, validates every record against the
schema, and reduces it to the quantities an experimenter actually wants:
cache hit rate, retry and failure counts, per-job wall time (harvest
minus dispatch, using the injected-clock readings), and the slowest
cells.  The same functions back the integration tests that cross-check a
trace against the engine's :class:`~repro.engine.sweep.SweepStats`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import TraceSchemaError
from repro.obs import records
from repro.obs.records import TraceEvent


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Parse a JSONL trace file, validating each record.

    Malformed lines raise :class:`TraceSchemaError` with the 1-based line
    number, so a truncated or hand-edited trace fails loudly instead of
    skewing the report.
    """
    path = Path(path)
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from exc
            try:
                events.append(TraceEvent.from_json(record))
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from exc
    return events


@dataclass
class JobTiming:
    """Dispatch/harvest clock readings for one sweep cell."""

    job: str
    dispatches: int = 0
    harvests: int = 0
    first_dispatch_t: Optional[float] = None
    last_harvest_t: Optional[float] = None

    @property
    def wall_time(self) -> Optional[float]:
        """Harvest-minus-dispatch seconds (``None`` without a clock)."""
        if self.first_dispatch_t is None or self.last_harvest_t is None:
            return None
        return self.last_harvest_t - self.first_dispatch_t


@dataclass
class TraceSummary:
    """The aggregate view of one trace."""

    events: int = 0
    sweeps: int = 0
    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_evictions: int = 0
    cache_corruptions: int = 0
    cache_quarantines: int = 0
    cache_store_failures: int = 0
    cache_locks: int = 0
    dispatches: int = 0
    harvests: int = 0
    retries: int = 0
    failures: int = 0
    pool_deaths: int = 0
    degrades: int = 0
    deadlines: int = 0
    worker_kills: int = 0
    fsck_repairs: int = 0
    fsck_evictions: int = 0
    fleet_regions: int = 0
    fleet_shards: int = 0
    fleet_invocations: int = 0
    fleet_dropped: int = 0
    coldstart_sweeps: int = 0
    coldstart_points: int = 0
    coldstart_cold_points: int = 0
    timings: Dict[str, JobTiming] = field(default_factory=dict)

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def slowest(self, n: int = 5) -> List[JobTiming]:
        """The ``n`` slowest cells by wall time (ties broken by job id)."""
        timed = [t for t in self.timings.values() if t.wall_time is not None]
        timed.sort(key=lambda t: (-t.wall_time, t.job))
        return timed[:n]


def summarize(events: Sequence[TraceEvent]) -> TraceSummary:
    """Reduce an event sequence to a :class:`TraceSummary`.

    Cross-checks the stream against itself: counted ``cache.hit`` and
    ``retry.backoff`` events must match the deltas the ``sweep.end``
    records report; reported misses (simulated cells) must match the
    first-attempt ``executor.dispatch`` count, and -- whenever a result
    cache was in play -- the ``cache.miss`` count too.  A mismatch means
    the trace was truncated or the emitters disagree, and raises
    :class:`TraceSchemaError` rather than reporting wrong numbers.
    """
    summary = TraceSummary()
    reported_hits = reported_misses = reported_retries = 0
    first_dispatches = 0
    saw_sweep_end = False
    for event in events:
        summary.events += 1
        kind = event.kind
        fields = event.fields_dict()
        if kind == records.SWEEP_BEGIN:
            summary.sweeps += 1
            summary.jobs += int(fields.get("jobs", 0))
        elif kind == records.SWEEP_END:
            saw_sweep_end = True
            reported_hits += int(fields.get("hits", 0))
            reported_misses += int(fields.get("misses", 0))
            reported_retries += int(fields.get("retries", 0))
            summary.failures += int(fields.get("failures", 0))
        elif kind == records.CACHE_HIT:
            summary.cache_hits += 1
        elif kind == records.CACHE_MISS:
            summary.cache_misses += 1
        elif kind == records.CACHE_STORE:
            summary.cache_stores += 1
        elif kind == records.CACHE_EVICT:
            summary.cache_evictions += 1
        elif kind == records.CACHE_CORRUPT:
            summary.cache_corruptions += 1
        elif kind == records.DISPATCH:
            summary.dispatches += 1
            if (int(fields.get("attempt", 0)) == 0
                    and int(fields.get("dispatch", 0)) == 0):
                first_dispatches += 1
            timing = summary.timings.setdefault(
                str(fields.get("job", "?")),
                JobTiming(job=str(fields.get("job", "?"))))
            timing.dispatches += 1
            if timing.first_dispatch_t is None and event.t is not None:
                timing.first_dispatch_t = event.t
        elif kind == records.HARVEST:
            summary.harvests += 1
            timing = summary.timings.setdefault(
                str(fields.get("job", "?")),
                JobTiming(job=str(fields.get("job", "?"))))
            timing.harvests += 1
            if event.t is not None:
                timing.last_harvest_t = event.t
        elif kind == records.RETRY:
            summary.retries += 1
        elif kind == records.POOL_DEATH:
            summary.pool_deaths += 1
        elif kind == records.POOL_DEGRADE:
            summary.degrades += 1
        elif kind == records.CACHE_QUARANTINE:
            summary.cache_quarantines += 1
        elif kind == records.CACHE_STORE_FAILED:
            summary.cache_store_failures += 1
        elif kind == records.CACHE_LOCK:
            summary.cache_locks += 1
        elif kind == records.JOB_DEADLINE:
            summary.deadlines += 1
        elif kind == records.WORKER_KILL:
            summary.worker_kills += 1
        elif kind == records.FSCK_REPAIR:
            summary.fsck_repairs += 1
        elif kind == records.FSCK_EVICT:
            summary.fsck_evictions += 1
        elif kind == records.FLEET_REGION_BEGIN:
            summary.fleet_regions += 1
        elif kind == records.FLEET_SHARD:
            summary.fleet_shards += 1
        elif kind == records.FLEET_REGION_END:
            summary.fleet_invocations += int(fields.get("invocations", 0))
            summary.fleet_dropped += int(fields.get("dropped", 0))
        elif kind == records.COLDSTART_SWEEP_BEGIN:
            summary.coldstart_sweeps += 1
        elif kind == records.COLDSTART_POINT:
            summary.coldstart_points += 1
            if fields.get("regime") == "cold":
                summary.coldstart_cold_points += 1
    if saw_sweep_end:
        checks = [
            ("cache.hit", summary.cache_hits, reported_hits),
            ("retry.backoff", summary.retries, reported_retries),
            # A "miss" on sweep.end means "cell simulated": exactly one
            # first-attempt dispatch per simulated cell, cache or no cache.
            ("first-attempt executor.dispatch", first_dispatches,
             reported_misses),
        ]
        if summary.cache_lookups or summary.cache_stores:
            # Only when a result cache was in play does every simulated
            # cell also leave a cache.miss record.
            checks.append(
                ("cache.miss", summary.cache_misses, reported_misses))
        for label, counted, reported in checks:
            if counted != reported:
                raise TraceSchemaError(
                    f"trace is inconsistent: counted {counted} {label} "
                    f"events but sweep.end records report {reported}; the "
                    f"trace is truncated or the emitters disagree")
    return summary


def render_summary(summary: TraceSummary, slowest: int = 5) -> str:
    """Human-readable report for the CLI."""
    lines = [
        f"events            {summary.events}",
        f"sweeps            {summary.sweeps}",
        f"jobs              {summary.jobs}",
        f"cache hits        {summary.cache_hits}",
        f"cache misses      {summary.cache_misses}",
        f"cache hit rate    {summary.hit_rate:.1%}"
        if summary.cache_lookups else "cache hit rate    n/a",
        f"cache stores      {summary.cache_stores}",
        f"cache evictions   {summary.cache_evictions}",
        f"retries           {summary.retries}",
        f"failures          {summary.failures}",
        f"pool deaths       {summary.pool_deaths}",
    ]
    # Recovery-layer counters only appear when the guard/fsck machinery
    # actually acted, keeping quiet traces quiet.
    for label, count in (
            ("deadlines hit", summary.deadlines),
            ("workers killed", summary.worker_kills),
            ("quarantined", summary.cache_quarantines),
            ("store failures", summary.cache_store_failures),
            ("fsck repairs", summary.fsck_repairs),
            ("fsck evictions", summary.fsck_evictions)):
        if count:
            lines.append(f"{label:<17} {count}")
    # Fleet counters only appear when a region was actually simulated.
    if summary.fleet_regions:
        lines.append(f"fleet regions     {summary.fleet_regions}")
        lines.append(f"fleet shards      {summary.fleet_shards}")
        lines.append(f"fleet invocations {summary.fleet_invocations}")
        if summary.fleet_dropped:
            lines.append(f"fleet dropped     {summary.fleet_dropped}")
    # Spectrum counters only appear when a sweep actually ran.
    if summary.coldstart_sweeps:
        lines.append(f"spectrum sweeps   {summary.coldstart_sweeps}")
        lines.append(f"spectrum points   {summary.coldstart_points}")
        lines.append(f"spectrum cold pts {summary.coldstart_cold_points}")
    slow = summary.slowest(slowest)
    if slow:
        lines.append("slowest cells:")
        for timing in slow:
            lines.append(
                f"  {timing.job}  {timing.wall_time:.6f}s "
                f"({timing.dispatches} dispatch, {timing.harvests} harvest)")
    return "\n".join(lines)


def summary_to_json(summary: TraceSummary,
                    slowest: int = 5) -> Dict[str, object]:
    """Canonical JSON form of a summary (for ``summarize --json``)."""
    return {
        "events": summary.events,
        "sweeps": summary.sweeps,
        "jobs": summary.jobs,
        "cache": {
            "hits": summary.cache_hits,
            "misses": summary.cache_misses,
            "hit_rate": summary.hit_rate,
            "stores": summary.cache_stores,
            "evictions": summary.cache_evictions,
            "corruptions": summary.cache_corruptions,
            "quarantines": summary.cache_quarantines,
            "store_failures": summary.cache_store_failures,
            "locks": summary.cache_locks,
        },
        "executor": {
            "dispatches": summary.dispatches,
            "harvests": summary.harvests,
            "pool_deaths": summary.pool_deaths,
            "degrades": summary.degrades,
        },
        "guard": {
            "deadlines": summary.deadlines,
            "worker_kills": summary.worker_kills,
        },
        "fsck": {
            "repairs": summary.fsck_repairs,
            "evictions": summary.fsck_evictions,
        },
        "fleet": {
            "regions": summary.fleet_regions,
            "shards": summary.fleet_shards,
            "invocations": summary.fleet_invocations,
            "dropped": summary.fleet_dropped,
        },
        "coldstart": {
            "sweeps": summary.coldstart_sweeps,
            "points": summary.coldstart_points,
            "cold_points": summary.coldstart_cold_points,
        },
        "retries": summary.retries,
        "failures": summary.failures,
        "slowest": [
            {
                "job": timing.job,
                "wall_time": timing.wall_time,
                "dispatches": timing.dispatches,
                "harvests": timing.harvests,
            }
            for timing in summary.slowest(slowest)
        ],
    }
