"""``repro.obs``: the determinism-safe observability layer.

Three pieces, all injected rather than global:

* :class:`Tracer` -- typed span/event records for sweep, cache,
  executor, and retry activity, timestamped only by an injectable clock
  (:class:`TickClock` / :class:`FrozenClock` for deterministic tests);
* :class:`MetricsRegistry` -- counters/gauges/histograms with canonical
  JSON export, published into by ``engine.sweep`` and ``sim.stats``;
* ``python -m repro.obs summarize`` -- the trace aggregation report.

See DESIGN.md §10 for the record schema and determinism rules.
"""

from repro.obs.clock import FrozenClock, TickClock
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.records import (
    KINDS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event,
)
from repro.obs.summarize import (
    TraceSummary,
    read_trace,
    render_summary,
    summarize,
    summary_to_json,
)
from repro.obs.tracer import (
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
)

__all__ = [
    "Counter",
    "FrozenClock",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KINDS",
    "MemorySink",
    "MetricsRegistry",
    "NullTracer",
    "SCHEMA_VERSION",
    "TickClock",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "read_trace",
    "render_summary",
    "summarize",
    "summary_to_json",
    "validate_event",
]
