"""The ``Tracer``: typed event emission with pluggable sinks.

A tracer is *injected* -- constructed per engine context (or per test)
and handed to whatever it observes; there is deliberately no module-level
tracer singleton, and lint rule REPRO008 rejects one.  That keeps traces
scoped to a run, keeps parallel contexts from interleaving records, and
keeps the observability layer out of :meth:`repro.engine.job.Job.key`:
jobs never reference a tracer, so tracing can never perturb the
content-addressed result cache.

Every tracer keeps a bounded in-memory window of recent events plus
per-kind counters (the always-on collector the runner's footer reads);
optional sinks fan records out, e.g. a :class:`JsonlSink` behind the
CLI's ``--trace FILE``.  Timestamps come only from the injected clock
(see :mod:`repro.obs.clock`); with no clock, ``t`` is ``None`` and the
trace is a pure event sequence.

:class:`NullTracer` is the explicit no-op for hot paths that want zero
observability overhead (e.g. microbenchmarks).
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.lint import contracts
from repro.obs.records import TraceEvent

#: Recent events kept in memory per tracer (older ones age out; counters
#: keep counting).  Bounded so month-long sweeps cannot exhaust RAM.
DEFAULT_MEMORY_LIMIT = 65536


class MemorySink:
    """Collect events into a bounded in-memory window."""

    def __init__(self, limit: Optional[int] = DEFAULT_MEMORY_LIMIT) -> None:
        if limit is not None and limit < 1:
            raise ConfigurationError(
                f"memory sink limit must be >= 1 (or None), got {limit}")
        self._events: deque = deque(maxlen=limit)

    def write(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def close(self) -> None:
        """Nothing to release; kept for sink-protocol symmetry."""


class JsonlSink:
    """Append events to a JSONL file, one canonical line per record."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ConfigurationError(
                f"trace sink {self.path} is closed; events can no longer "
                f"be recorded")
        self._fh.write(event.to_jsonl() + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class Tracer:
    """Emit typed :class:`TraceEvent` records to sinks + in-memory window.

    ``clock`` is the *only* source of timestamps; leave it ``None`` for
    timestamp-free deterministic traces.  ``seq`` increases by exactly one
    per event, so any two tracers fed the same actions produce the same
    records (modulo ``t``).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 sinks: Sequence[Any] = (),
                 memory_limit: Optional[int] = DEFAULT_MEMORY_LIMIT) -> None:
        self._clock = clock
        self._sinks = tuple(sinks)
        self._memory = MemorySink(memory_limit)
        self._counts: Dict[str, int] = {}
        self._seq = 0

    #: Tracers report as enabled; the NullTracer reports False so guarded
    #: callers can skip building event payloads entirely.
    enabled = True

    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        """Record one event; returns the (validated) record."""
        t = self._clock() if self._clock is not None else None
        event = TraceEvent.make(self._seq, kind, t=t, **fields)
        contracts.check_trace_event(event)
        self._seq += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._memory.write(event)
        for sink in self._sinks:
            sink.write(event)
        return event

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The in-memory window of recent events (oldest first)."""
        return self._memory.events

    @property
    def counts(self) -> Dict[str, int]:
        """Events emitted per kind (never ages out), in sorted-kind order."""
        return {kind: self._counts[kind] for kind in sorted(self._counts)}

    @property
    def events_emitted(self) -> int:
        """Total events emitted over this tracer's lifetime."""
        return self._seq

    def describe(self) -> str:
        if not self._seq:
            return "obs: no events"
        top = ", ".join(f"{kind}={count}"
                        for kind, count in self.counts.items())
        return f"obs: {self._seq} events ({top})"

    def close(self) -> None:
        """Flush and close every sink (the in-memory window survives)."""
        for sink in self._sinks:
            sink.close()


class NullTracer:
    """The explicit no-op tracer: every emit is a constant-time discard."""

    enabled = False
    events: Tuple[TraceEvent, ...] = ()
    events_emitted = 0

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    @property
    def counts(self) -> Dict[str, int]:
        return {}

    def describe(self) -> str:
        return "obs: disabled"

    def close(self) -> None:
        """Nothing to flush."""
