"""Unit constants and small address-math helpers shared across the library.

All addresses in the library are *virtual* byte addresses in a 48-bit address
space (the paper assumes 48-bit virtual addresses, Sec. 3.2).  Cache lines are
64 bytes everywhere, matching Table 1.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Cache-line (block) size in bytes, fixed across the whole hierarchy (Table 1).
LINE_SIZE = 64
#: log2 of :data:`LINE_SIZE`.
LINE_SHIFT = 6

#: Page size used by the TLB and page-walk models.
PAGE_SIZE = 4 * KB
PAGE_SHIFT = 12

#: Width of the virtual address space (Sec. 3.2 assumes 48-bit VAs).
VA_BITS = 48


def block_of(addr: int) -> int:
    """Return the cache-block *number* containing byte address ``addr``."""
    return addr >> LINE_SHIFT


def block_addr(addr: int) -> int:
    """Return the byte address of the cache block containing ``addr``."""
    return addr & ~(LINE_SIZE - 1)


def page_of(addr: int) -> int:
    """Return the page number containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two ``value``, raising otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
