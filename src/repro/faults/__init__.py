"""Deterministic fault injection for the sweep engine.

Real serverless platforms lose workers, hit flaky dependencies, and read
corrupted snapshots; a reproduction whose engine claims to survive the
same must be able to *cause* those failures on purpose, deterministically,
in tests and demos.  A :class:`FaultPlan` is a picklable set of
:class:`FaultSpec` records activated through
``engine.configure(faults=...)`` (or ``lukewarm-repro --inject-fault``):

* ``fail`` -- raise an injected error inside the worker executing a
  matching cell (transient by default, so retry policies can recover);
* ``kill`` -- hard-kill the pool worker (``os._exit``) dispatching a
  matching cell, exercising pool replacement.  Ignored outside pool
  workers, so a serial run of the same plan completes normally;
* ``corrupt`` -- overwrite the matching cell's result-cache entry with
  garbage before lookup, exercising the cache's evict-on-corruption path;
* ``hang`` -- wedge the worker executing a matching cell: with a
  ``<seconds>`` option it sleeps that long (anywhere), without one it
  livelocks forever -- but only inside daemonic pool workers, so the
  serial oracle of the same plan completes.  An unbounded hang is only
  survivable under a ``job_timeout_s`` guard, which is the point;
* ``slow`` -- sleep ``<seconds>`` (default 0.05) in the worker before the
  cell runs, for exercising deadline margins without wedging anything;
* ``enospc`` -- arm a one-shot ``OSError(ENOSPC)`` on the parent-side
  cache store of a matching cell, exercising degrade-to-no-store;
* ``torn`` -- truncate the matching cell's freshly stored cache entry
  mid-payload (a simulated crash between write and rename), exercising
  frame verification, quarantine, and ``fsck``.

Specs select cells by sweep submission index (``#3``), by job field
(``config=jukebox``), by an arbitrary predicate, or match everything
(``*``).  ``fail``/``slow`` faults fire while ``attempt < times`` and
``kill``/``hang`` faults while ``dispatch < times`` (``times=0`` means
always), so a default plan injects exactly one failure and a retried or
re-dispatched cell then succeeds -- every schedule is a pure function of
the plan.  ``corrupt``/``enospc``/``torn`` are parent-side disk faults
and fire on every match (``enospc`` degrades the cache after one shot
anyway).

Spec-string grammar (CLI)::

    ACTION ":" SELECTOR (":" OPTION)*
    ACTION   = fail | kill | corrupt | hang | slow | enospc | torn
    SELECTOR = #<index> | config=<name> | function=<abbrev>
             | provider=<module> | *
    OPTION   = x<times> | always | transient | permanent | <seconds>

Examples: ``fail:#3``, ``fail:config=jukebox:permanent``,
``fail:*:x2``, ``kill:#2``, ``corrupt:#0``, ``hang:#1`` (forever, pool
only), ``hang:#1:0.2`` (bounded), ``slow:*:0.1``, ``enospc:#0``,
``torn:#2``.
"""

from __future__ import annotations

import errno as _errno
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Tuple, Union

from repro.engine.resilience import (
    ERROR_CLASSES,
    PERMANENT,
    TRANSIENT,
    register_error_class,
)
from repro.errors import ConfigurationError, ReproError

#: Exit status a ``kill`` fault terminates its pool worker with.
KILL_EXIT_CODE = 86

_ACTIONS = ("fail", "kill", "corrupt", "hang", "slow", "enospc", "torn")
_FIELDS = ("config", "function", "provider")

#: Actions accepting a ``<seconds>`` option (``amount``).
_TIMED_ACTIONS = ("hang", "slow")

#: Default added delay (seconds) of a ``slow`` fault with no amount.
DEFAULT_SLOW_S = 0.05

#: Sleep quantum of an unbounded ``hang`` (re-slept forever; any value
#: works, the hung worker only ever exits by being killed).
_HANG_QUANTUM_S = 3600.0


class InjectedFaultError(ReproError):
    """Base class of errors raised by ``fail`` faults."""


class InjectedTransientError(InjectedFaultError):
    """An injected failure classified transient (retryable)."""


class InjectedPermanentError(InjectedFaultError):
    """An injected failure classified permanent (never retried)."""


register_error_class(InjectedTransientError, TRANSIENT)
register_error_class(InjectedPermanentError, PERMANENT)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what to do, to which cells, how often."""

    action: str
    index: Optional[int] = None
    field: Optional[str] = None
    value: Optional[str] = None
    #: Programmatic selector; must be picklable (a module-level function)
    #: to cross into pool workers.
    predicate: Optional[Callable[[Any], bool]] = None
    #: Fire while the attempt (``fail``/``slow``) / dispatch
    #: (``kill``/``hang``) counter is below this; 0 means fire every time.
    times: int = 1
    #: Error class injected by ``fail`` faults.
    error: str = TRANSIENT
    #: Seconds for timed actions: hang duration (None = forever), slow
    #: delay (None = :data:`DEFAULT_SLOW_S`).
    amount: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{', '.join(_ACTIONS)}")
        if self.field is not None and self.field not in _FIELDS:
            raise ConfigurationError(
                f"unknown fault selector field {self.field!r}; expected "
                f"one of {', '.join(_FIELDS)}")
        if self.times < 0:
            raise ConfigurationError(
                f"fault times must be >= 0 (0 = always), got {self.times}")
        if self.error not in ERROR_CLASSES:
            raise ConfigurationError(
                f"unknown injected error class {self.error!r}; expected "
                f"one of {', '.join(ERROR_CLASSES)}")
        if self.amount is not None:
            if self.action not in _TIMED_ACTIONS:
                raise ConfigurationError(
                    f"a seconds amount only applies to "
                    f"{' or '.join(_TIMED_ACTIONS)} faults, not "
                    f"{self.action!r}")
            if self.amount < 0:
                raise ConfigurationError(
                    f"fault seconds must be >= 0, got {self.amount}")

    @staticmethod
    def parse(spec: str) -> "FaultSpec":
        """Parse one CLI fault spec (see the module grammar)."""
        parts = [part.strip() for part in spec.split(":")]
        if len(parts) < 2 or not parts[0]:
            raise ConfigurationError(
                f"malformed fault spec {spec!r}; expected "
                f"ACTION:SELECTOR[:OPTION...] (e.g. 'fail:#3', 'kill:#2', "
                f"'fail:config=jukebox:always')")
        action, selector, options = parts[0], parts[1], parts[2:]
        index: Optional[int] = None
        fld: Optional[str] = None
        value: Optional[str] = None
        if selector.startswith("#"):
            try:
                index = int(selector[1:])
            except ValueError:
                raise ConfigurationError(
                    f"fault spec {spec!r}: selector {selector!r} is not a "
                    f"job index (#<int>)") from None
        elif "=" in selector:
            fld, _, value = selector.partition("=")
        elif selector != "*":
            raise ConfigurationError(
                f"fault spec {spec!r}: selector {selector!r} must be "
                f"#<index>, <field>=<value>, or '*'")
        times = 1
        error = TRANSIENT
        amount: Optional[float] = None
        for option in options:
            if option == "always":
                times = 0
            elif option.startswith("x"):
                try:
                    times = int(option[1:])
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {spec!r}: option {option!r} is not "
                        f"x<times>") from None
            elif option in ERROR_CLASSES:
                error = option
            else:
                try:
                    amount = float(option)
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {spec!r}: unknown option {option!r}; "
                        f"expected x<times>, 'always', <seconds>, "
                        f"{' or '.join(repr(c) for c in ERROR_CLASSES)}"
                    ) from None
        return FaultSpec(action=action, index=index, field=fld, value=value,
                         times=times, error=error, amount=amount)

    def matches(self, job: Any, index: int) -> bool:
        if self.index is not None:
            return index == self.index
        if self.predicate is not None:
            return bool(self.predicate(job))
        if self.field is not None:
            return str(getattr(job, self.field)) == self.value
        return True

    def fires(self, count: int) -> bool:
        return self.times == 0 or count < self.times

    def make_error(self, job: Any, index: int, attempt: int) -> InjectedFaultError:
        exc_type = (InjectedTransientError if self.error == TRANSIENT
                    else InjectedPermanentError)
        return exc_type(
            f"injected {self.error} fault on cell #{index} "
            f"({job.describe()}), attempt {attempt}")

    def describe(self) -> str:
        if self.index is not None:
            selector = f"#{self.index}"
        elif self.predicate is not None:
            selector = f"<{getattr(self.predicate, '__name__', 'predicate')}>"
        elif self.field is not None:
            selector = f"{self.field}={self.value}"
        else:
            selector = "*"
        times = "always" if self.times == 0 else f"x{self.times}"
        amount = f":{self.amount:g}s" if self.amount is not None else ""
        return f"{self.action}:{selector}:{times}{amount}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of fault specs.

    The plan travels inside each :class:`~repro.engine.resilience.Task`
    to pool workers, so its decisions are identical whichever process
    asks.
    """

    specs: Tuple[FaultSpec, ...] = ()

    @staticmethod
    def coerce(faults: Union["FaultPlan", FaultSpec, str,
                             Iterable[Union[FaultSpec, str]], None],
               ) -> Optional["FaultPlan"]:
        """Normalize user input (plan, spec(s), string(s)) into a plan."""
        if faults is None or isinstance(faults, FaultPlan):
            return faults
        if isinstance(faults, (FaultSpec, str)):
            faults = (faults,)
        specs = tuple(FaultSpec.parse(s) if isinstance(s, str) else s
                      for s in faults)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"fault plans hold FaultSpec entries, got {spec!r}")
        return FaultPlan(specs=specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def on_execute(self, job: Any, index: int, attempt: int,
                   dispatch: int) -> None:
        """Worker-side hook: kill, hang, slow, or fail the dispatch.

        ``kill`` faults -- and *unbounded* ``hang`` faults, which are
        lethal in the same way -- only act inside daemonic pool workers:
        a serial run of the same plan (the bit-identical oracle in tests)
        ignores them rather than killing or wedging the main process.
        Bounded hangs and ``slow`` delays run anywhere.
        """
        for spec in self.specs:
            if (spec.action == "kill" and spec.matches(job, index)
                    and spec.fires(dispatch)
                    and multiprocessing.current_process().daemon):
                os._exit(KILL_EXIT_CODE)
        for spec in self.specs:
            if (spec.action == "hang" and spec.matches(job, index)
                    and spec.fires(dispatch)):
                if spec.amount is not None:
                    time.sleep(spec.amount)
                elif multiprocessing.current_process().daemon:
                    while True:  # reaped only by the deadline guard
                        time.sleep(_HANG_QUANTUM_S)
        for spec in self.specs:
            if (spec.action == "slow" and spec.matches(job, index)
                    and spec.fires(attempt)):
                time.sleep(spec.amount if spec.amount is not None
                           else DEFAULT_SLOW_S)
        for spec in self.specs:
            if (spec.action == "fail" and spec.matches(job, index)
                    and spec.fires(attempt)):
                raise spec.make_error(job, index, attempt)

    def should_corrupt(self, job: Any, index: int) -> bool:
        """Whether the cell's cache entry should be corrupted pre-lookup."""
        return any(spec.action == "corrupt" and spec.matches(job, index)
                   for spec in self.specs)

    def store_errno(self, job: Any, index: int) -> Optional[int]:
        """Errno to arm on the cell's parent-side cache store, or None.

        The ``enospc`` disk fault: the sweep layer passes this to
        :meth:`~repro.engine.cache.ResultCache.induce_store_error` so the
        next ``put`` fails with a real ``OSError`` and the cache walks
        its genuine degradation path.
        """
        for spec in self.specs:
            if spec.action == "enospc" and spec.matches(job, index):
                return _errno.ENOSPC
        return None

    def should_tear(self, job: Any, index: int) -> bool:
        """Whether the cell's freshly stored entry should be torn.

        The ``torn`` disk fault: applied by the sweep layer *after* a
        successful store, leaving exactly what a crash between write and
        rename leaves -- a frame whose payload is cut short.
        """
        return any(spec.action == "torn" and spec.matches(job, index)
                   for spec in self.specs)

    def describe(self) -> str:
        return ", ".join(spec.describe() for spec in self.specs) or "no faults"


def parse_fault_plan(specs: Iterable[str]) -> FaultPlan:
    """Parse CLI ``--inject-fault`` spec strings into one plan."""
    return FaultPlan.coerce(tuple(specs)) or FaultPlan()
