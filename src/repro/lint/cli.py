"""Command-line front-end: ``python -m repro.lint [paths]``.

Exit status is 0 when the tree is clean and 1 when any violation remains
(pass ``--errors-only`` to let warnings through).  ``--fix`` applies the
autofixes carried by fixable rules (currently REPRO006's ``sorted(...)``
wrap) in place, then reports what is left.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import (
    Violation,
    apply_fixes,
    iter_python_files,
    lint_file,
)
from repro.lint.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("Determinism & invariant static analysis for the "
                     "lukewarm-serverless reproduction."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply available autofixes in place before reporting",
    )
    parser.add_argument(
        "--errors-only", action="store_true",
        help="exit 0 when only warnings remain",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-violation output; print only the summary",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _print_rules() -> None:
    for rule in ALL_RULES:
        fix = "autofixable" if rule.autofixable else "no autofix"
        scope = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.id} [{rule.severity}, {fix}] ({scope})")
        print(f"    {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"repro-lint: error: no such file or directory: {p}",
                  file=sys.stderr)
        return 2

    violations: List[Violation] = []
    files_seen = 0
    fixes_applied = 0
    for file, root in iter_python_files(Path(p) for p in paths):
        files_seen += 1
        found = lint_file(file, root=root)
        if args.fix and any(v.fixes for v in found):
            source = file.read_text(encoding="utf-8")
            new_source, fixed = apply_fixes(source, found)
            if fixed:
                file.write_text(new_source, encoding="utf-8")
                fixes_applied += fixed
                found = lint_file(file, root=root)
        violations.extend(found)

    for violation in violations:
        if not args.quiet:
            print(violation.format())

    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    if fixes_applied:
        print(f"repro-lint: applied {fixes_applied} autofix(es)")
    if violations:
        print(f"repro-lint: {len(violations)} violation(s) "
              f"({errors} error(s), {warnings} warning(s)) "
              f"in {files_seen} file(s)")
    else:
        print(f"repro-lint: clean ({files_seen} file(s))")
    if args.errors_only:
        return 1 if errors else 0
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
