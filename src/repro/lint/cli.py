"""Command-line front-end: ``python -m repro.lint [paths]``.

Exit status is 0 when the tree is clean (or every finding is
grandfathered in the baseline) and 1 when any fresh violation remains
(pass ``--errors-only`` to let warnings through).  ``--fix`` applies the
autofixes carried by fixable rules (currently REPRO006's ``sorted(...)``
wrap) in place, then reports what is left.

Target classes
--------------
``src/`` trees get the full REPRO00x rule set plus, when the ``repro``
package root is found under one of the lint paths, the *whole-program*
passes: the interprocedural taint analysis (:mod:`repro.lint.flow`) and
the cache-key/worker-safety soundness rules REPRO009/REPRO010
(:mod:`repro.lint.soundness`).  ``tests/``, ``benchmarks/`` and
``examples/`` are auxiliary targets: they are linted with REPRO001/
REPRO004/REPRO005 only (scope restrictions lifted), because determinism
of fixtures and harnesses matters but simulation-path rules do not apply
there.

Machine output and baselines
----------------------------
``--format json|sarif`` renders canonical machine-readable reports
(:mod:`repro.lint.formats`).  A committed baseline file
(``lint-baseline.json`` by default, see :mod:`repro.lint.baseline`)
grandfathers known findings: the exit code only reflects findings *not*
in the baseline, and ``--write-baseline`` regenerates the file.
``--changed-only`` restricts the per-file pass to files reported changed
by git (whole-program closures are still computed globally, so a helper
edit still re-audits every provider that imports it).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.lint import baseline as baseline_mod
from repro.lint.engine import (
    Violation,
    apply_fixes,
    iter_python_files,
    lint_file,
)
from repro.lint.rules import ALL_RULES, get_rule

#: Directory names treated as auxiliary lint targets.
AUX_DIRS = ("tests", "benchmarks", "examples")

#: Rules applied to auxiliary targets (with path scopes lifted).
AUX_RULE_IDS = ("REPRO001", "REPRO004", "REPRO005")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("Determinism & invariant static analysis for the "
                     "lukewarm-serverless reproduction."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=("files or directories to lint (default: src/ plus any of "
              "tests/, benchmarks/, examples/ that exist, else .)"),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry (per-file and whole-program) and exit",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply available autofixes in place before reporting",
    )
    parser.add_argument(
        "--errors-only", action="store_true",
        help="exit 0 when only warnings remain",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-violation output; print only the summary",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json and sarif are canonical documents)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        default=baseline_mod.DEFAULT_BASELINE,
        help=("baseline file of grandfathered findings (default: "
              "%(default)s if present; a missing file is an empty "
              "baseline)"),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; every finding is fresh",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help=("lint only files git reports as changed (staged, unstaged "
              "or untracked); whole-program closures are still computed "
              "globally"),
    )
    parser.add_argument(
        "--no-whole-program", action="store_true",
        help=("skip the whole-program passes (taint flow, REPRO009/"
              "REPRO010) even when the repro package root is found"),
    )
    return parser


def _default_paths() -> List[str]:
    if not Path("src").is_dir():
        return ["."]
    paths = ["src"]
    paths.extend(d for d in AUX_DIRS if Path(d).is_dir())
    return paths


def _print_rules() -> None:
    from repro.lint.soundness import WHOLE_PROGRAM_RULES

    for rule in ALL_RULES:
        fix = "autofixable" if rule.autofixable else "no autofix"
        scope = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.id} [{rule.severity}, {fix}] ({scope})")
        print(f"    {rule.description}")
    for wp_rule in WHOLE_PROGRAM_RULES:
        print(f"{wp_rule.id} [{wp_rule.severity}, no autofix] "
              f"(whole-program)")
        print(f"    {wp_rule.description}")


def _aux_rules() -> List:
    """Unscoped instances of the auxiliary-target rule subset."""
    rules = []
    for rule_id in AUX_RULE_IDS:
        rule = type(get_rule(rule_id))()
        rule.scopes = None
        rule.excludes = ()
        rules.append(rule)
    return rules


def _is_aux(file: Path, root: Path) -> bool:
    """Whether a file belongs to an auxiliary target tree.

    Classified by the *lint root* (``tests/`` passed as a path) or by an
    auxiliary directory component below it (linting ``.`` still treats
    ``./tests/...`` as auxiliary).  An explicitly passed fixture tree
    (e.g. ``tests/lint/fixtures`` as the root) keeps the full rule set:
    the caller asked about that tree specifically.
    """
    if root.name in AUX_DIRS:
        return True
    try:
        rel_parts = Path(file).resolve().relative_to(root.resolve()).parts
    except ValueError:
        return False
    return any(part in AUX_DIRS for part in rel_parts[:-1])


def _changed_files() -> Optional[Set[Path]]:
    """Resolved paths git reports changed vs HEAD, plus untracked files.

    Returns None (with a message on stderr) when git is unavailable or
    the tree is not a repository -- the caller then falls back to a full
    lint rather than silently linting nothing.
    """
    changed: Set[Path] = set()
    for cmd in (["git", "diff", "--name-only", "HEAD"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            result = subprocess.run(cmd, capture_output=True, text=True,
                                    check=True)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"repro-lint: --changed-only unavailable "
                  f"({' '.join(cmd)}: {exc}); linting everything",
                  file=sys.stderr)
            return None
        for line in result.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(Path(line).resolve())
    return changed


def _find_repro_root(paths: Sequence[str]) -> Optional[Path]:
    """The ``repro`` package directory under the lint paths, if any."""
    for raw in paths:
        path = Path(raw).resolve()
        for candidate in (path, path / "repro", path / "src" / "repro"):
            if (candidate.name == "repro"
                    and (candidate / "__init__.py").is_file()):
                return candidate
    return None


def _whole_program_violations(root: Path) -> List[Violation]:
    from repro.lint import flow, soundness
    from repro.lint.graph import ProjectGraph

    graph = ProjectGraph.from_package(root, "repro")
    violations = flow.analyze(graph)
    violations.extend(soundness.check_cache_soundness(graph))
    violations.extend(soundness.check_worker_safety(graph))
    return violations


def _rule_descriptions() -> dict:
    from repro.lint.soundness import WHOLE_PROGRAM_RULES

    descriptions = {rule.id: rule.description for rule in ALL_RULES}
    descriptions.update(
        {rule.id: rule.description for rule in WHOLE_PROGRAM_RULES})
    return descriptions


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"repro-lint: error: no such file or directory: {p}",
                  file=sys.stderr)
        return 2

    changed: Optional[Set[Path]] = None
    if args.changed_only:
        changed = _changed_files()

    aux_rules = _aux_rules()
    violations: List[Violation] = []
    files_seen = 0
    fixes_applied = 0
    for file, root in iter_python_files(Path(p) for p in paths):
        if changed is not None and file.resolve() not in changed:
            continue
        aux = _is_aux(file, root)
        if aux and "fixtures" in file.parts:
            # Lint-rule fixtures *are* deliberate violations; linting
            # them as part of the tests/ target would fail the gate on
            # the very files that test the rules.
            continue
        files_seen += 1
        rules = aux_rules if aux else None
        found = lint_file(file, rules=rules, root=root)
        if args.fix and any(v.fixes for v in found):
            source = file.read_text(encoding="utf-8")
            new_source, fixed = apply_fixes(source, found)
            if fixed:
                file.write_text(new_source, encoding="utf-8")
                fixes_applied += fixed
                found = lint_file(file, rules=rules, root=root)
        violations.extend(found)

    repro_root = None if args.no_whole_program else _find_repro_root(paths)
    if repro_root is not None:
        violations.extend(_whole_program_violations(repro_root))

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))

    if args.write_baseline:
        baseline_mod.Baseline.from_violations(violations).write(
            Path(args.baseline))
        print(f"repro-lint: wrote {len(violations)} finding(s) to "
              f"baseline {args.baseline}")
        return 0

    baseline = (baseline_mod.Baseline.empty() if args.no_baseline
                else baseline_mod.Baseline.load(Path(args.baseline)))
    fresh, grandfathered = baseline.partition(violations)

    if args.format == "json":
        from repro.lint.formats import render_json
        print(render_json(fresh, baselined=grandfathered,
                          files=files_seen, fixes_applied=fixes_applied))
    elif args.format == "sarif":
        from repro.lint.formats import render_sarif
        print(render_sarif(fresh, rule_descriptions=_rule_descriptions()))
    else:
        for violation in fresh:
            if not args.quiet:
                print(violation.format())
        errors = sum(1 for v in fresh if v.severity == "error")
        warnings = len(fresh) - errors
        if fixes_applied:
            print(f"repro-lint: applied {fixes_applied} autofix(es)")
        suffix = (f", {len(grandfathered)} grandfathered"
                  if grandfathered else "")
        if fresh:
            print(f"repro-lint: {len(fresh)} violation(s) "
                  f"({errors} error(s), {warnings} warning(s)) "
                  f"in {files_seen} file(s){suffix}")
        else:
            print(f"repro-lint: clean ({files_seen} file(s){suffix})")

    if args.errors_only:
        return 1 if any(v.severity == "error" for v in fresh) else 0
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
