"""Machine-readable lint output: ``--format json`` and ``--format sarif``.

Both serializations are canonical (sorted keys, fixed separators) so that
identical findings always produce byte-identical reports -- CI diffs of
lint output are then meaningful.  The SARIF document targets the 2.1.0
schema subset GitHub code scanning ingests: one run, one driver, one
result per violation with a physical location.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.engine import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def violation_to_dict(violation: Violation,
                      baselined: bool = False) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "rule": violation.rule_id,
        "severity": violation.severity,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col + 1,
        "message": violation.message,
        "fixable": violation.fixable,
    }
    if baselined:
        entry["baselined"] = True
    return entry


def render_json(violations: Sequence[Violation],
                baselined: Sequence[Violation] = (),
                files: int = 0, fixes_applied: int = 0) -> str:
    """The ``--format json`` document (one canonical-JSON object)."""
    errors = sum(1 for v in violations if v.severity == "error")
    doc = {
        "version": 1,
        "files": files,
        "fixes_applied": fixes_applied,
        "violations": [violation_to_dict(v) for v in violations],
        "baselined": [violation_to_dict(v, baselined=True)
                      for v in baselined],
        "summary": {
            "total": len(violations),
            "errors": errors,
            "warnings": len(violations) - errors,
            "grandfathered": len(baselined),
        },
    }
    return json.dumps(doc, sort_keys=True, indent=2)


def render_sarif(violations: Sequence[Violation],
                 rule_descriptions: Optional[Dict[str, str]] = None) -> str:
    """The ``--format sarif`` document (SARIF 2.1.0)."""
    rule_descriptions = rule_descriptions or {}
    rule_ids = sorted({v.rule_id for v in violations}
                      | set(rule_descriptions))
    rules: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule: Dict[str, Any] = {"id": rule_id}
        description = rule_descriptions.get(rule_id)
        if description:
            rule["shortDescription"] = {"text": description}
        rules.append(rule)
    results = []
    for violation in violations:
        results.append({
            "ruleId": violation.rule_id,
            "level": "error" if violation.severity == "error" else "warning",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        })
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/lukewarm-serverless",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, sort_keys=True, indent=2)
