"""Interprocedural nondeterminism taint analysis over the call graph.

The per-file rules REPRO001/REPRO006 flag a nondeterministic call *in the
file where it appears*, and only inside their scoped directories.  This
module upgrades them to whole-program reachability: starting from the
simulation entry points (the worker's :func:`~repro.engine.executors
.execute_job`, the config dispatcher ``run_config``, and every builder
registered with ``@register_config``), it walks the
:class:`~repro.lint.graph.ProjectGraph` call graph and reports any path
that reaches a *taint source*:

* wall-clock reads (``time.time`` and friends, ``datetime.now``,
  ``uuid.uuid4``, ``os.urandom``, ...),
* unseeded module-level RNG (``random.random``, ``numpy.random.rand``),
* filesystem-order dependence (``os.listdir`` not wrapped in
  ``sorted(...)``),
* interpreter-identity leaks (``id()``, ``hash()`` of strings -- both
  vary per process under hash randomization), and
* iteration over ``set``/``frozenset`` values (element order follows the
  per-process hash seed).

A path that crosses a *sanctioned boundary* is silent: functions defined
in an injected-clock module (``*.obs.clock`` by default) exist precisely
to own the host-time read, so taint never propagates out of them.
Findings are reported under the ids of the per-file rules they upgrade
(REPRO001 for RNG, REPRO006 for everything else) and deduplicated against
them: a source the per-file pass already flags in its own file is not
re-reported here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Violation, scope_key
from repro.lint.graph import FunctionInfo, ProjectGraph, dotted_name
from repro.lint.rules import UnseededRandomness, WallClock

#: Call-graph entry points of the simulation hot path, as
#: ``module:qualname`` (module matched exactly or as a dotted suffix).
DEFAULT_ENTRY_POINTS: Tuple[str, ...] = (
    "engine.executors:execute_job",
    "experiments.common:run_config",
)

#: Functions decorated with any of these (matched on the decorator's last
#: dotted component) are additional entry points: the config registry
#: dispatches to them dynamically, invisibly to static call resolution.
ENTRY_DECORATORS: Tuple[str, ...] = ("register_config",)

#: Module-name suffixes whose functions are sanctioned nondeterminism
#: boundaries: taint inside them never propagates to their callers.
SANCTIONED_MODULE_SUFFIXES: Tuple[str, ...] = ("obs.clock",)

_CLOCK_CALLS = WallClock._CLOCK_CALLS
_LISTING_CALLS = WallClock._LISTING_CALLS
_SEEDED_FACTORIES = UnseededRandomness._SEEDED_FACTORIES

#: Taint kind -> the per-file rule id the finding is reported under.
KIND_RULE_IDS: Dict[str, str] = {
    "wall-clock": "REPRO006",
    "fs-order": "REPRO006",
    "unseeded-rng": "REPRO001",
    "object-identity": "REPRO006",
    "str-hash": "REPRO006",
    "set-iteration": "REPRO006",
}


@dataclass(frozen=True)
class TaintSource:
    """One nondeterministic operation found in one function body."""

    kind: str
    call: str
    function: str  # "module:qualname"
    line: int


@dataclass(frozen=True)
class TaintPath:
    """A witness call chain from an entry point to a taint source."""

    entry: str
    chain: Tuple[str, ...]  # function ids, entry first, source fn last
    source: TaintSource

    def render(self) -> str:
        hops = " -> ".join(fid.split(":", 1)[1] for fid in self.chain)
        return f"{hops} -> {self.source.call}()"


def classify_call(dotted: str, sanitized: bool) -> Optional[str]:
    """Taint kind of one canonical dotted call, or None if benign."""
    if dotted in _CLOCK_CALLS:
        return "wall-clock"
    if dotted in _LISTING_CALLS:
        return None if sanitized else "fs-order"
    parts = dotted.split(".")
    if parts[0] == "random" and len(parts) == 2:
        return None if parts[1] in _SEEDED_FACTORIES else "unseeded-rng"
    if parts[0] == "numpy" and len(parts) == 3 and parts[1] == "random":
        return None if parts[2] in _SEEDED_FACTORIES else "unseeded-rng"
    if dotted == "id":
        return "object-identity"
    if dotted == "hash":
        return "str-hash"
    return None


def direct_sources(info: FunctionInfo) -> List[TaintSource]:
    """Taint sources appearing directly in one function's body."""
    sources: List[TaintSource] = []
    for dotted, lineno, sanitized in info.raw_calls:
        kind = classify_call(dotted, sanitized)
        if kind is not None:
            sources.append(TaintSource(kind=kind, call=dotted,
                                       function=info.id, line=lineno))
    sources.extend(_set_iteration_sources(info))
    sources.sort(key=lambda s: (s.line, s.kind, s.call))
    return sources


def _set_iteration_sources(info: FunctionInfo) -> List[TaintSource]:
    """``for x in s`` where ``s`` is a set built in the same function."""
    set_names: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    set_names.add(target.id)
    sources: List[TaintSource] = []
    for node in ast.walk(info.node):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        iter_expr = node.iter
        direct = _is_set_expr(iter_expr)
        named = (isinstance(iter_expr, ast.Name)
                 and iter_expr.id in set_names)
        if direct or named:
            what = (iter_expr.id if named else "a set expression")
            sources.append(TaintSource(
                kind="set-iteration", call=f"iter({what})",
                function=info.id, line=node.lineno))
    return sources


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


def resolve_entries(graph: ProjectGraph,
                    entries: Sequence[str] = DEFAULT_ENTRY_POINTS,
                    entry_decorators: Sequence[str] = ENTRY_DECORATORS
                    ) -> Tuple[str, ...]:
    """Resolve entry specs + decorator-marked builders to function ids."""
    table = graph.functions()
    resolved: Set[str] = set()
    for spec in entries:
        mod, _, qual = spec.partition(":")
        for info in table.values():
            if info.qualname != qual:
                continue
            if info.module == mod or info.module.endswith("." + mod):
                resolved.add(info.id)
    for info in table.values():
        for dec in info.decorators:
            if dec.rsplit(".", 1)[-1] in entry_decorators:
                resolved.add(info.id)
    return tuple(sorted(resolved))


def _is_sanctioned(module: str,
                   sanctioned_suffixes: Sequence[str]) -> bool:
    return any(module == suffix or module.endswith("." + suffix)
               for suffix in sanctioned_suffixes)


def trace_taint(graph: ProjectGraph,
                entries: Optional[Sequence[str]] = None,
                sanctioned: Sequence[str] = SANCTIONED_MODULE_SUFFIXES
                ) -> List[TaintPath]:
    """Shortest witness paths from entry points to reachable sources.

    Breadth-first over the call graph, never entering sanctioned-boundary
    modules; each (function, source) pair is reported once, with the
    shortest entry chain that reaches it.  Output order is deterministic:
    sorted by source location.
    """
    table = graph.functions()
    entry_ids = (resolve_entries(graph) if entries is None
                 else resolve_entries(graph, entries))
    parents: Dict[str, Optional[str]] = {}
    order: List[str] = []
    frontier = [fid for fid in entry_ids
                if not _is_sanctioned(table[fid].module, sanctioned)]
    for fid in frontier:
        parents.setdefault(fid, None)
    while frontier:
        next_frontier: List[str] = []
        for fid in frontier:
            order.append(fid)
            for callee in sorted(table[fid].calls):
                if callee in parents or callee not in table:
                    continue
                if _is_sanctioned(table[callee].module, sanctioned):
                    continue
                parents[callee] = fid
                next_frontier.append(callee)
        frontier = next_frontier
    paths: List[TaintPath] = []
    for fid in order:
        info = table[fid]
        for source in direct_sources(info):
            chain: List[str] = []
            cursor: Optional[str] = fid
            while cursor is not None:
                chain.append(cursor)
                cursor = parents[cursor]
            chain.reverse()
            paths.append(TaintPath(entry=chain[0], chain=tuple(chain),
                                   source=source))
    paths.sort(key=lambda p: (graph.modules[p.source.function.split(":")[0]]
                              .path.as_posix(), p.source.line, p.source.kind))
    return paths


def _per_file_rule_covers(source: TaintSource, module_path: Path) -> bool:
    """Whether the per-file REPRO001/REPRO006 pass already flags this
    source in its own file (no point reporting it twice)."""
    scope = scope_key(module_path)
    if source.kind == "unseeded-rng":
        return UnseededRandomness().applies_to(scope)
    if source.kind in ("wall-clock", "fs-order"):
        return WallClock().applies_to(scope)
    return False  # id()/hash()/set-iteration have no per-file rule


def analyze(graph: ProjectGraph,
            entries: Optional[Sequence[str]] = None,
            sanctioned: Sequence[str] = SANCTIONED_MODULE_SUFFIXES,
            dedup_per_file: bool = True) -> List[Violation]:
    """Run the taint analysis and render findings as lint violations."""
    violations: List[Violation] = []
    seen: Set[Tuple[str, str, int]] = set()
    for path in trace_taint(graph, entries=entries, sanctioned=sanctioned):
        source = path.source
        module = graph.modules[source.function.split(":")[0]]
        if dedup_per_file and _per_file_rule_covers(source, module.path):
            continue
        key = (source.function, source.call, source.line)
        if key in seen:
            continue
        seen.add(key)
        violations.append(Violation(
            rule_id=KIND_RULE_IDS[source.kind],
            severity="error",
            path=str(module.path),
            line=source.line,
            col=0,
            message=(f"whole-program: {source.kind} nondeterminism "
                     f"reachable from sim entry point "
                     f"{path.entry.split(':', 1)[1]!r}: {path.render()}"),
        ))
    return violations
