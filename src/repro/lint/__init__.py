"""Determinism & invariant analysis for the reproduction.

Three layers keep the simulator trustworthy:

* **per-file static rules** (:mod:`repro.lint.rules`, run by
  :mod:`repro.lint.engine` and ``python -m repro.lint``): AST checks
  REPRO001-REPRO008 for unseeded randomness, float equality, magic
  size/latency literals, mutable defaults, swallowed exceptions,
  wall-clock reads in simulation paths, broad exception handlers in
  engine code outside the sanctioned resilience capture point, and
  module-level observability singletons;
* **whole-program analysis** (:mod:`repro.lint.graph` builds an
  AST-only import + call graph; :mod:`repro.lint.flow` runs an
  interprocedural nondeterminism taint analysis over it;
  :mod:`repro.lint.soundness` audits cache-key soundness [REPRO009,
  every module in a provider's import closure must be digested] and
  worker safety [REPRO010, picklable pool-boundary classes, no
  worker-reachable module-state mutation]);
* **runtime contracts** (:mod:`repro.lint.contracts`): cheap invariant
  checks wired into the simulator's lifecycle points -- stats balance,
  Top-Down components sum to total cycles, metadata record counts match
  replayed counts, sweep-engine counters stay consistent even when a
  sweep aborts mid-batch.

Suppress a static finding inline with
``# repro-lint: disable=REPRO003 -- reason`` (or ``disable=all``), or
file-wide with ``# repro-lint: disable-file=REPRO003``.  Whole-tree
debt is grandfathered through :mod:`repro.lint.baseline`; machine
output (``--format json|sarif``) lives in :mod:`repro.lint.formats`.
"""

from repro.lint import contracts
from repro.lint.baseline import Baseline
from repro.lint.engine import (
    TextEdit,
    Violation,
    apply_fixes,
    lint_file,
    lint_paths,
    lint_source,
    scope_key,
)
from repro.lint.graph import ProjectGraph
from repro.lint.rules import ALL_RULES, Rule, get_rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "ProjectGraph",
    "Rule",
    "TextEdit",
    "Violation",
    "apply_fixes",
    "contracts",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "scope_key",
]
