"""Determinism & invariant analysis for the reproduction.

Two halves keep the simulator trustworthy:

* **static rules** (:mod:`repro.lint.rules`, run by
  :mod:`repro.lint.engine` and ``python -m repro.lint``): AST checks
  REPRO001-REPRO007 for unseeded randomness, float equality, magic
  size/latency literals, mutable defaults, swallowed exceptions,
  wall-clock reads in simulation paths, and broad exception handlers
  in engine code outside the sanctioned resilience capture point;
* **runtime contracts** (:mod:`repro.lint.contracts`): cheap invariant
  checks wired into the simulator's lifecycle points -- stats balance,
  Top-Down components sum to total cycles, metadata record counts match
  replayed counts, sweep-engine counters stay consistent even when a
  sweep aborts mid-batch.

Suppress a static finding inline with
``# repro-lint: disable=REPRO003`` (or ``disable=all``), or file-wide
with ``# repro-lint: disable-file=REPRO003``.
"""

from repro.lint import contracts
from repro.lint.engine import (
    TextEdit,
    Violation,
    apply_fixes,
    lint_file,
    lint_paths,
    lint_source,
    scope_key,
)
from repro.lint.rules import ALL_RULES, Rule, get_rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "TextEdit",
    "Violation",
    "apply_fixes",
    "contracts",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "scope_key",
]
