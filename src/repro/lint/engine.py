"""The static-analysis engine: file discovery, suppression, fix application.

The engine walks Python sources, parses each into an ``ast`` tree and runs
every applicable :class:`repro.lint.rules.Rule` over it.  Rules are scoped
by *package-relative* paths (``sim/``, ``core/``, ...) so the same rule set
works whether the tree is linted as ``src/``, ``src/repro/`` or a test
fixture directory mirroring the package layout.

Suppression comments::

    x = time.time()  # repro-lint: disable=REPRO006
    y = a == 1.0     # repro-lint: disable=all
    # repro-lint: disable-file=REPRO003   (anywhere in the file)

Violations may carry :class:`TextEdit` fixes; :func:`apply_fixes` applies
them to a source string (used by ``python -m repro.lint --fix``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Pseudo-rule id reported for files that fail to parse.
PARSE_ERROR_ID = "REPRO000"

_LINE_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class TextEdit:
    """A replacement of ``[start, end)`` (1-based line, 0-based column) with
    ``replacement``.  A zero-width span is an insertion."""

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass
class Violation:
    """One finding of one rule at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fixes: Tuple[TextEdit, ...] = ()

    @property
    def fixable(self) -> bool:
        return bool(self.fixes)

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} [{self.severity}] {self.message}")


def scope_key(path: Path, root: Optional[Path] = None) -> str:
    """Map a file path to the package-relative key rules are scoped by.

    If the path contains a ``repro`` package directory, the key is the
    POSIX path below its *last* occurrence (``.../src/repro/sim/cache.py``
    -> ``sim/cache.py``).  Otherwise the key is the path relative to
    ``root`` (or to the file's parent), with any leading ``src/`` or
    ``repro/`` components stripped -- which is what makes fixture trees
    mirroring the package layout scope correctly.
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        last = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        tail = parts[last + 1:]
        if tail:
            return "/".join(tail)
    base = root.resolve() if root is not None else resolved.parent
    if base.is_file():
        base = base.parent
    try:
        tail = resolved.relative_to(base).parts
    except ValueError:
        tail = (resolved.name,)
    tail = list(tail)
    while tail and tail[0] in ("src", "repro"):
        tail.pop(0)
    return "/".join(tail) if tail else resolved.name


def iter_python_files(paths: Iterable[Path]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under ``paths``,
    deterministically ordered, skipping ``__pycache__``."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root, root.parent
            continue
        for file in sorted(root.rglob("*.py")):
            if "__pycache__" in file.parts:
                continue
            yield file, root


def _parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Return ``(file_wide_ids, line -> ids)``; ``"ALL"`` means every rule."""
    file_wide: Set[str] = set()
    by_line: Dict[int, Set[str]] = {}

    def ids_of(match: "re.Match[str]") -> Set[str]:
        names = {part.strip().upper() for part in match.group(1).split(",")}
        return {"ALL" if name == "ALL" else name for name in names if name}

    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _FILE_SUPPRESS_RE.search(text)
        if match:
            file_wide |= ids_of(match)
            continue
        match = _LINE_SUPPRESS_RE.search(text)
        if match:
            by_line.setdefault(lineno, set()).update(ids_of(match))
    return file_wide, by_line


def _is_suppressed(violation: Violation, file_wide: Set[str],
                   by_line: Dict[int, Set[str]]) -> bool:
    if "ALL" in file_wide or violation.rule_id in file_wide:
        return True
    line_ids = by_line.get(violation.line, ())
    return "ALL" in line_ids or violation.rule_id in line_ids


def lint_source(source: str, path: str, scope: str,
                rules: Sequence) -> List[Violation]:
    """Lint one in-memory source file under scope key ``scope``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(
            rule_id=PARSE_ERROR_ID,
            severity="error",
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )]
    file_wide, by_line = _parse_suppressions(source)
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(scope):
            continue
        for violation in rule.check(tree, source, path):
            if not _is_suppressed(violation, file_wide, by_line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return violations


def lint_file(path: Path, rules: Optional[Sequence] = None,
              root: Optional[Path] = None) -> List[Violation]:
    """Lint one file on disk."""
    if rules is None:
        from repro.lint.rules import ALL_RULES
        rules = ALL_RULES
    source = Path(path).read_text(encoding="utf-8")
    scope = scope_key(Path(path), root)
    return lint_source(source, str(path), scope, rules)


def lint_paths(paths: Iterable, rules: Optional[Sequence] = None
               ) -> List[Violation]:
    """Lint every Python file under ``paths`` (files or directories)."""
    if rules is None:
        from repro.lint.rules import ALL_RULES
        rules = ALL_RULES
    violations: List[Violation] = []
    for file, root in iter_python_files(Path(p) for p in paths):
        violations.extend(lint_file(file, rules=rules, root=root))
    return violations


def apply_fixes(source: str, violations: Sequence[Violation]) -> Tuple[str, int]:
    """Apply every fix carried by ``violations`` to ``source``.

    Returns ``(new_source, fixes_applied)``.  Edits are applied bottom-up
    so earlier edits never invalidate later spans.
    """
    edits: List[TextEdit] = []
    fixed = 0
    for violation in violations:
        if violation.fixes:
            edits.extend(violation.fixes)
            fixed += 1
    if not edits:
        return source, 0
    lines = source.splitlines(keepends=True)
    for edit in sorted(edits, key=lambda e: (e.line, e.col), reverse=True):
        start_idx = edit.line - 1
        end_idx = edit.end_line - 1
        if start_idx >= len(lines) or end_idx >= len(lines):
            continue
        if start_idx == end_idx:
            text = lines[start_idx]
            lines[start_idx] = (text[:edit.col] + edit.replacement
                                + text[edit.end_col:])
        else:
            first = lines[start_idx][:edit.col] + edit.replacement
            lines[start_idx:end_idx + 1] = [first + lines[end_idx][edit.end_col:]]
    return "".join(lines), fixed
