"""Whole-program import and call graphs, built from source text only.

:class:`ProjectGraph` parses every module of a package with :mod:`ast` --
nothing is imported, so analysing a tree can never execute it -- and
resolves

* absolute imports (``import repro.sim.cache``),
* relative imports at any level (``from ..core import crrb``),
* re-exports through ``__init__`` (``from repro.engine import Job`` finds
  the defining module ``repro.engine.job`` by following the package
  ``__init__``'s own ``from``-imports), and
* attribute calls on imported modules (``cache.fingerprint(...)``).

Two derived structures feed the downstream analyses:

* the **import closure** of a module (:meth:`ProjectGraph.closure`):
  every project module whose source can influence it, computed with a
  cycle-safe iterative traversal, memoized, and always returned sorted --
  this is what :func:`repro.engine.job.provider_version` digests and what
  rule REPRO009 audits;
* the **call graph** (:meth:`ProjectGraph.functions`,
  :attr:`FunctionInfo.calls`): one node per function/method with edges to
  every project-internal callee that static resolution can pin down, plus
  the canonical dotted names of unresolved/external calls
  (:attr:`FunctionInfo.raw_calls`) -- this is what the taint analysis in
  :mod:`repro.lint.flow` walks.

Resolution is deliberately *under*-approximate for call edges (an edge we
cannot prove is dropped, so findings stay precise) and
*over*-approximate for import edges (a lazy ``import`` inside a function
still counts: it is a real dependency of the module's behaviour).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

#: Mutable-constructor names shared with rule REPRO004 / REPRO010.
MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict",
    "OrderedDict", "Counter", "deque",
})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class ImportBinding:
    """One local name bound by an import statement.

    ``module`` is the resolved absolute source module; ``attr`` is the
    imported attribute for ``from module import attr`` and ``None`` for a
    plain ``import module [as alias]`` binding.
    """

    module: str
    attr: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function/method node of the call graph.

    ``id`` is ``"module:qualname"`` (``repro.sim.cache:LRUCache.lookup``).
    ``calls`` holds resolved project-internal callee ids; ``raw_calls``
    holds ``(canonical_dotted_name, lineno, sanitized)`` triples for every
    call whose target is external or unresolved -- canonicalized through
    the module's import bindings, so ``from time import time; time()``
    surfaces as ``time.time``.  ``sanitized`` marks calls appearing as the
    first argument of ``sorted(...)``.
    """

    id: str
    module: str
    qualname: str
    lineno: int
    node: ast.AST
    calls: Set[str] = field(default_factory=set)
    raw_calls: List[Tuple[str, int, bool]] = field(default_factory=list)
    decorators: Tuple[str, ...] = ()
    #: Local ``name = Ctor(...)`` assignments (first one wins), letting
    #: ``core = LukewarmCore(...); core.run(...)`` resolve into methods.
    ctor_assigns: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleNode:
    """One parsed module: its tree, resolved deps and name bindings."""

    name: str
    path: Path
    tree: ast.Module
    is_package: bool
    internal_deps: Set[str] = field(default_factory=set)
    external_deps: Set[str] = field(default_factory=set)
    bindings: Dict[str, ImportBinding] = field(default_factory=dict)
    definitions: Set[str] = field(default_factory=set)


class ProjectGraph:
    """Import + call graph over one package directory tree."""

    def __init__(self, package: str, root: Path,
                 modules: Dict[str, ModuleNode]) -> None:
        self.package = package
        self.root = root
        self.modules = modules
        self._closures: Dict[str, Tuple[str, ...]] = {}
        self._functions: Optional[Dict[str, FunctionInfo]] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_package(cls, root: Path, package: Optional[str] = None
                     ) -> "ProjectGraph":
        """Build the graph for the package rooted at directory ``root``.

        ``package`` defaults to ``root.name``.  Every ``*.py`` under the
        root participates; ``__pycache__`` is skipped.
        """
        root = Path(root).resolve()
        if not root.is_dir():
            raise ConfigurationError(
                f"cannot build project graph: {root} is not a directory")
        package = package or root.name
        modules: Dict[str, ModuleNode] = {}
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root)
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            name = ".".join([package] + parts) if parts else package
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"),
                                 filename=str(path))
            except SyntaxError:
                # Unparsable files are reported by the per-file linter
                # (REPRO000); the graph simply has no node for them.
                continue
            modules[name] = ModuleNode(name=name, path=path, tree=tree,
                                       is_package=is_package)
        graph = cls(package, root, modules)
        for node in modules.values():
            graph._resolve_module(node)
        return graph

    def _resolve_module(self, node: ModuleNode) -> None:
        for stmt in ast.walk(node.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self._bind_import(node, alias)
            elif isinstance(stmt, ast.ImportFrom):
                self._bind_import_from(node, stmt)
        for stmt in node.tree.body:
            for name in _defined_names(stmt):
                node.definitions.add(name)

    def _bind_import(self, node: ModuleNode, alias: ast.alias) -> None:
        target = alias.name
        if self._is_internal(target):
            self._add_internal_dep(node, target)
            local = alias.asname or target.split(".")[0]
            bound = target if alias.asname else target.split(".")[0]
            node.bindings[local] = ImportBinding(module=bound)
        else:
            node.external_deps.add(target.split(".")[0])
            local = alias.asname or target.split(".")[0]
            bound = target if alias.asname else target.split(".")[0]
            node.bindings[local] = ImportBinding(module=bound)

    def _bind_import_from(self, node: ModuleNode,
                          stmt: ast.ImportFrom) -> None:
        base = self._resolve_from_base(node, stmt.module, stmt.level)
        if base is None:
            return
        if not self._is_internal(base):
            node.external_deps.add(base.split(".")[0])
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                node.bindings[alias.asname or alias.name] = ImportBinding(
                    module=base, attr=alias.name)
            return
        self._add_internal_dep(node, base)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            sub = f"{base}.{alias.name}"
            if sub in self.modules:
                self._add_internal_dep(node, sub)
            node.bindings[alias.asname or alias.name] = ImportBinding(
                module=base, attr=alias.name)

    def _resolve_from_base(self, node: ModuleNode, module: Optional[str],
                           level: int) -> Optional[str]:
        if level == 0:
            return module
        anchor = node.name if node.is_package else (
            node.name.rsplit(".", 1)[0] if "." in node.name else "")
        parts = anchor.split(".") if anchor else []
        drop = level - 1
        if drop > len(parts):
            return None
        prefix = ".".join(parts[:len(parts) - drop])
        if module:
            return f"{prefix}.{module}" if prefix else module
        return prefix or None

    def _is_internal(self, module: str) -> bool:
        return (module == self.package
                or module.startswith(self.package + "."))

    def _add_internal_dep(self, node: ModuleNode, target: str) -> None:
        # Importing a.b.c executes a and a.b's __init__ too: every known
        # prefix (and the longest known prefix of an unknown leaf) is a
        # real dependency of the importing module.
        name = target
        while True:
            if name in self.modules and name != node.name:
                node.internal_deps.add(name)
            if "." not in name:
                break
            name = name.rsplit(".", 1)[0]

    # -- closures --------------------------------------------------------

    def closure(self, module: str) -> Tuple[str, ...]:
        """Sorted transitive import closure of ``module``, itself included.

        Iterative traversal with an explicit visited set, so import cycles
        terminate; results are memoized per graph and stable across runs
        (the module set is discovered in sorted path order and the result
        is sorted by name).
        """
        if module in self._closures:
            return self._closures[module]
        if module not in self.modules:
            raise ConfigurationError(
                f"module {module!r} is not part of the "
                f"{self.package!r} project graph")
        visited: Set[str] = set()
        stack = [module]
        while stack:
            name = stack.pop()
            if name in visited:
                continue
            visited.add(name)
            node = self.modules.get(name)
            if node is None:
                continue
            stack.extend(sorted(node.internal_deps - visited))
        result = tuple(sorted(visited))
        self._closures[module] = result
        return result

    def importers_of(self, module: str) -> Tuple[str, ...]:
        """Sorted names of modules whose closure contains ``module``."""
        return tuple(sorted(
            name for name in self.modules if module in self.closure(name)))

    # -- symbol resolution ----------------------------------------------

    def resolve_export(self, module: str, name: str,
                       _seen: Optional[Set[Tuple[str, str]]] = None
                       ) -> Optional[Tuple[str, Optional[str]]]:
        """Resolve attribute ``name`` of ``module`` to its definition.

        Returns ``(defining_module, symbol)``; ``symbol`` is ``None`` when
        the attribute is itself a module (a submodule, or a module bound
        by the ``__init__``).  Follows ``from``-import chains through any
        number of re-exporting ``__init__`` files, with a cycle guard.
        """
        node = self.modules.get(module)
        if node is None:
            return None
        if _seen is None:
            _seen = set()
        key = (module, name)
        if key in _seen:
            return None
        _seen.add(key)
        if name in node.definitions:
            return (module, name)
        binding = node.bindings.get(name)
        if binding is not None:
            if binding.attr is None:
                return ((binding.module, None)
                        if binding.module in self.modules else None)
            if binding.module in self.modules:
                resolved = self.resolve_export(binding.module, binding.attr,
                                               _seen)
                if resolved is not None:
                    return resolved
                sub = f"{binding.module}.{binding.attr}"
                return (sub, None) if sub in self.modules else None
            return None
        sub = f"{module}.{name}"
        if sub in self.modules:
            return (sub, None)
        return None

    # -- call graph ------------------------------------------------------

    def functions(self) -> Dict[str, FunctionInfo]:
        """The call graph: ``"module:qualname"`` -> :class:`FunctionInfo`.

        Classes contribute one pseudo-node per class (``module:Class``,
        carrying the ``__init__`` body's calls, so instantiations link
        into constructors) plus one node per method.
        """
        if self._functions is None:
            table: Dict[str, FunctionInfo] = {}
            for name in sorted(self.modules):
                _CallGraphBuilder(self, self.modules[name], table).build()
            self._link_calls(table)
            self._functions = table
        return self._functions

    def _link_calls(self, table: Dict[str, FunctionInfo]) -> None:
        """Second pass: resolve recorded call expressions to node ids."""
        for info in table.values():
            module = self.modules[info.module]
            resolved: Set[str] = set()
            remaining: List[Tuple[str, int, bool]] = []
            for dotted, lineno, sanitized in info.raw_calls:
                target = self._resolve_call(module, info, dotted, table)
                if target is not None:
                    resolved.add(target)
                else:
                    remaining.append((self._canonical_dotted(module, dotted),
                                      lineno, sanitized))
            info.calls |= resolved
            info.raw_calls = remaining

    def _resolve_call(self, module: ModuleNode, info: FunctionInfo,
                      dotted: str, table: Dict[str, FunctionInfo],
                      _seen: Optional[Set[str]] = None) -> Optional[str]:
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        # self.method() -> a method of the enclosing class.
        if head == "self" and len(rest) == 1 and "." in info.qualname:
            cls = info.qualname.split(".")[0]
            target = f"{info.module}:{cls}.{rest[0]}"
            return target if target in table else None
        # x.method() where x was assigned a resolvable constructor call.
        if head in info.ctor_assigns and len(rest) == 1:
            if _seen is None:
                _seen = set()
            if dotted not in _seen:
                _seen.add(dotted)
                owner = self._resolve_call(module, info,
                                           info.ctor_assigns[head], table,
                                           _seen)
                if owner is not None:
                    target = f"{owner}.{rest[0]}"
                    if target in table:
                        return target
        # A name defined in this module (function, class, nested def).
        if not rest:
            if "." in info.qualname:
                nested = f"{info.module}:{info.qualname}.{head}"
                if nested in table:
                    return nested
            local = f"{info.module}:{head}"
            if local in table:
                return local
        # A name imported from a project module (possibly re-exported).
        binding = module.bindings.get(head)
        if binding is None:
            return None
        if binding.attr is not None:
            base = self.resolve_export(binding.module, binding.attr)
        else:
            base = (binding.module, None) \
                if binding.module in self.modules else None
        if base is None:
            return None
        base_module, base_attr = base
        chain = ([base_attr] if base_attr else []) + rest
        # Walk module-valued attributes (import repro.sim; repro.sim.x.f()).
        while len(chain) > 1 and f"{base_module}.{chain[0]}" in self.modules:
            base_module = f"{base_module}.{chain[0]}"
            chain = chain[1:]
        if len(chain) != 1:
            return None
        resolved = self.resolve_export(base_module, chain[0])
        if resolved is None or resolved[1] is None:
            return None
        target = f"{resolved[0]}:{resolved[1]}"
        return target if target in table else None

    def _canonical_dotted(self, module: ModuleNode, dotted: str) -> str:
        """Rewrite a call's head through import bindings to an absolute
        dotted name (``t.time`` -> ``time.time`` under ``import time as
        t``; bare ``time`` -> ``time.time`` under ``from time import
        time``)."""
        parts = dotted.split(".")
        binding = module.bindings.get(parts[0])
        if binding is None:
            return dotted
        if binding.attr is None:
            return ".".join([binding.module] + parts[1:])
        return ".".join([binding.module, binding.attr] + parts[1:])


def _defined_names(stmt: ast.stmt) -> Iterator[str]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        yield stmt.name
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield element.id
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id
    elif isinstance(stmt, (ast.If, ast.Try)):
        for sub in ast.iter_child_nodes(stmt):
            if isinstance(sub, ast.stmt):
                yield from _defined_names(sub)


class _CallGraphBuilder:
    """Extract :class:`FunctionInfo` nodes for one module."""

    def __init__(self, graph: ProjectGraph, module: ModuleNode,
                 table: Dict[str, FunctionInfo]) -> None:
        self.graph = graph
        self.module = module
        self.table = table

    def build(self) -> None:
        self._visit_body(self.module.tree.body, prefix="")

    def _visit_body(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, prefix)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(stmt, prefix)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                self._visit_body([s for s in ast.iter_child_nodes(stmt)
                                  if isinstance(s, ast.stmt)], prefix)

    def _add_class(self, node: ast.ClassDef, prefix: str) -> None:
        qual = f"{prefix}{node.name}"
        info = FunctionInfo(
            id=f"{self.module.name}:{qual}",
            module=self.module.name, qualname=qual, lineno=node.lineno,
            node=node, decorators=self._decorator_names(node))
        self.table[info.id] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(stmt, prefix=f"{qual}.")
                if stmt.name == "__init__":
                    # Instantiating the class runs __init__: the class
                    # pseudo-node forwards straight into it.
                    info.calls.add(method.id)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(stmt, prefix=f"{qual}.")

    def _add_function(self, node: ast.AST, prefix: str) -> FunctionInfo:
        qual = f"{prefix}{node.name}"
        info = FunctionInfo(
            id=f"{self.module.name}:{qual}",
            module=self.module.name, qualname=qual, lineno=node.lineno,
            node=node, decorators=self._decorator_names(node))
        self.table[info.id] = info
        sanitized = _sorted_wrapped_calls(node)
        for child in _walk_function_body(node):
            if isinstance(child, ast.Call):
                dotted = dotted_name(child.func)
                if dotted is not None:
                    info.raw_calls.append(
                        (dotted, child.lineno, id(child) in sanitized))
            elif isinstance(child, ast.Assign):
                if (len(child.targets) == 1
                        and isinstance(child.targets[0], ast.Name)
                        and isinstance(child.value, ast.Call)):
                    ctor = dotted_name(child.value.func)
                    if ctor is not None:
                        info.ctor_assigns.setdefault(
                            child.targets[0].id, ctor)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(child, prefix=f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                self._add_class(child, prefix=f"{qual}.")
        return info

    def _decorator_names(self, node: ast.AST) -> Tuple[str, ...]:
        names = []
        for dec in getattr(node, "decorator_list", []):
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted = dotted_name(target)
            if dotted is not None:
                names.append(self.graph._canonical_dotted(self.module,
                                                          dotted))
        return tuple(names)


def _walk_function_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, stopping at nested defs/classes
    (they become their own call-graph nodes).  Decorator expressions are
    excluded: they run at definition time, not when the function is
    called, so they must not create call edges out of the function."""
    decorators = {id(d) for d in getattr(node, "decorator_list", [])}
    stack: List[ast.AST] = [child for child in ast.iter_child_nodes(node)
                            if id(child) not in decorators]
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _sorted_wrapped_calls(node: ast.AST) -> Set[int]:
    """ids of Call nodes appearing as the first argument of sorted()."""
    wrapped: Set[int] = set()
    for child in ast.walk(node):
        if (isinstance(child, ast.Call) and isinstance(child.func, ast.Name)
                and child.func.id == "sorted" and child.args):
            wrapped.add(id(child.args[0]))
    return wrapped
