"""The REPRO00x static-analysis rule set.

Every rule is a pluggable :class:`Rule` subclass with an ``id``, a
``severity`` (``error`` or ``warning``), an ``autofixable`` flag and an
optional path ``scopes`` tuple restricting where it fires (keys are
package-relative, see :func:`repro.lint.engine.scope_key`).  To add a rule:
subclass :class:`Rule`, implement :meth:`Rule.check`, and append an
instance to :data:`ALL_RULES`.

| id       | checks                                                        |
|----------|---------------------------------------------------------------|
| REPRO001 | unseeded ``random.*`` / ``numpy.random.*`` use                |
| REPRO002 | float ``==`` / ``!=`` in cycle/metric code                    |
| REPRO003 | magic size/latency literals bypassing ``repro.units``/params  |
| REPRO004 | mutable default args & shared mutable class attributes        |
| REPRO005 | bare ``except:`` / silently swallowed exceptions              |
| REPRO006 | wall-clock or filesystem-order nondeterminism in sim paths    |
| REPRO007 | broad ``except Exception`` in engine code outside resilience  |
| REPRO008 | module-level tracer/metrics singletons (observability must be |
|          | injected per context, never ambient global state)             |
| REPRO011 | unbounded blocking waits (``.wait()``/``.get()``/             |
|          | ``.acquire()`` with no arguments) in engine code              |

Two further rules, REPRO009 (cache-key soundness) and REPRO010 (worker
safety), are *whole-program* analyses over the import/call graph; they
live in :mod:`repro.lint.soundness` rather than here because they check
relationships between files, not patterns within one.  The
interprocedural taint pass in :mod:`repro.lint.flow` additionally
re-reports REPRO001/REPRO006 findings that are only visible through the
call graph (a sim-path function reaching ``time.time()`` via helpers in
unscoped modules).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from repro.lint.engine import TextEdit, Violation


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Rule:
    """Base class for one lint rule."""

    id: str = "REPRO000"
    severity: str = "error"
    autofixable: bool = False
    #: Package-relative path prefixes this rule is restricted to
    #: (None = fires everywhere).
    scopes: Optional[Tuple[str, ...]] = None
    #: Package-relative paths exempt from the rule.
    excludes: Tuple[str, ...] = ()
    description: str = ""

    def applies_to(self, scope: str) -> bool:
        if any(scope == ex or scope.startswith(ex) for ex in self.excludes):
            return False
        if self.scopes is None:
            return True
        return any(scope.startswith(prefix) for prefix in self.scopes)

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        raise NotImplementedError

    def violation(self, node: ast.AST, path: str, message: str,
                  fixes: Tuple[TextEdit, ...] = ()) -> Violation:
        return Violation(
            rule_id=self.id,
            severity=self.severity,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fixes=fixes,
        )


class UnseededRandomness(Rule):
    """REPRO001: module-level RNG use breaks bit-reproducibility.

    Every stochastic component must draw from an explicitly seeded
    ``random.Random(seed)`` / ``numpy.random.default_rng(seed)`` instance;
    the module-level convenience APIs share hidden global state.
    """

    id = "REPRO001"
    severity = "error"
    description = ("unseeded random.* / numpy.random.* use; draw from an "
                   "explicitly seeded generator instance instead")

    #: Constructors that are fine *if* given an explicit seed argument.
    _SEEDED_FACTORIES = frozenset({
        "Random", "default_rng", "RandomState", "Generator", "SeedSequence",
        "PCG64", "Philox", "MT19937", "SFC64", "BitGenerator",
    })

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        numpy_aliases = {"numpy"}
        factory_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                violations.extend(
                    self._check_import_from(node, path, factory_aliases))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                violations.extend(
                    self._check_call(node, path, numpy_aliases,
                                     factory_aliases))
        return violations

    def _check_import_from(self, node: ast.ImportFrom, path: str,
                           factory_aliases: Set[str]) -> List[Violation]:
        violations: List[Violation] = []
        if node.module == "random" or node.module == "numpy.random":
            for alias in node.names:
                if alias.name in self._SEEDED_FACTORIES:
                    factory_aliases.add(alias.asname or alias.name)
                else:
                    violations.append(self.violation(
                        node, path,
                        f"importing {alias.name!r} from {node.module} pulls "
                        f"in shared global RNG state; use a seeded "
                        f"Random(seed)/default_rng(seed) instance",
                    ))
        return violations

    def _check_call(self, node: ast.Call, path: str,
                    numpy_aliases: Set[str],
                    factory_aliases: Set[str]) -> List[Violation]:
        has_args = bool(node.args) or bool(node.keywords)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in factory_aliases and not has_args:
                return [self.violation(
                    node, path,
                    f"{func.id}() constructed without a seed; pass an "
                    f"explicit seed for reproducible runs",
                )]
            return []
        dotted = _dotted_name(func)
        if dotted is None:
            return []
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            return self._flag_module_fn(node, path, "random", parts[1],
                                        has_args)
        if (parts[0] in numpy_aliases and len(parts) == 3
                and parts[1] == "random"):
            return self._flag_module_fn(node, path, f"{parts[0]}.random",
                                        parts[2], has_args)
        return []

    def _flag_module_fn(self, node: ast.Call, path: str, module: str,
                        fn: str, has_args: bool) -> List[Violation]:
        if fn in self._SEEDED_FACTORIES:
            if has_args:
                return []
            return [self.violation(
                node, path,
                f"{module}.{fn}() constructed without a seed; pass an "
                f"explicit seed for reproducible runs",
            )]
        return [self.violation(
            node, path,
            f"{module}.{fn}() uses hidden global RNG state; draw from a "
            f"seeded Random(seed)/default_rng(seed) instance instead",
        )]


class FloatEquality(Rule):
    """REPRO002: exact float comparison in cycle/metric code.

    Cycle counts and metrics are floats accumulated in different orders
    across refactors; exact equality silently flips.  Compare with
    ``math.isclose`` or an explicit tolerance.
    """

    id = "REPRO002"
    severity = "error"
    scopes = ("sim/", "analysis/", "experiments/")
    description = ("float == / != comparison in cycle/metric code; use "
                   "math.isclose or an explicit tolerance")

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    violations.append(self.violation(
                        node, path,
                        f"exact float {symbol} comparison; use "
                        f"math.isclose(...) or compare against a tolerance",
                    ))
        return violations


class MagicNumber(Rule):
    """REPRO003: size/latency literals in ``sim/`` bypassing the
    ``repro.units`` constants and ``sim/params.py``.

    Flags integer literals that look like cache/buffer sizes (>= 1KB and a
    multiple of 1024 or a power of two).  Hash/mixing constants are odd by
    construction and never trip this.  ALL_CAPS module-level constant
    definitions are exempt: naming the number *is* the fix.
    """

    id = "REPRO003"
    severity = "warning"
    scopes = ("sim/",)
    excludes = ("sim/params.py",)
    description = ("magic size/latency literal; use repro.units (KB/MB/"
                   "LINE_SIZE) or a sim.params constant")

    _THRESHOLD = 1024

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        exempt = self._constant_definition_nodes(tree)
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Constant)
                    and type(node.value) is int):
                continue
            if id(node) in exempt:
                continue
            value = node.value
            if value < self._THRESHOLD:
                continue
            if value % 1024 == 0 or _is_power_of_two(value):
                violations.append(self.violation(
                    node, path,
                    f"magic size/latency literal {value}; express it via "
                    f"repro.units (KB/MB/LINE_SIZE) or a named "
                    f"sim.params constant",
                ))
        return violations

    @staticmethod
    def _constant_definition_nodes(tree: ast.Module) -> Set[int]:
        """ids of Constant nodes inside module-level ALL_CAPS assignments."""
        exempt: Set[int] = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names and all(name.isupper() or name.startswith("_")
                             for name in names):
                value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
                for child in ast.walk(value):
                    if isinstance(child, ast.Constant):
                        exempt.add(id(child))
        return exempt


class MutableDefault(Rule):
    """REPRO004: mutable default arguments and shared mutable class
    attributes.

    A ``def f(acc=[])`` default or a ``history = []`` class attribute is
    one object shared by every call/instance -- state leaks straight
    across invocations and kills run-to-run reproducibility.
    """

    id = "REPRO004"
    severity = "error"
    description = ("mutable default argument / shared mutable class "
                   "attribute; default to None or use "
                   "field(default_factory=...)")

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict",
                      "OrderedDict", "Counter", "deque"})

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                args = node.args
                for default in list(args.defaults) + list(args.kw_defaults):
                    if default is not None and self._is_mutable(default):
                        violations.append(self.violation(
                            default, path,
                            "mutable default argument is shared across "
                            "calls; default to None and create it inside "
                            "the function",
                        ))
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    value = None
                    targets: List[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        value = stmt.value
                        targets = stmt.targets
                    elif isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                        targets = [stmt.target]
                    names = [t.id for t in targets if isinstance(t, ast.Name)]
                    if names and all(n.lstrip("_").isupper() for n in names):
                        continue  # ALL_CAPS class constant by convention
                    if value is not None and self._is_mutable(value):
                        violations.append(self.violation(
                            value, path,
                            f"mutable class attribute on {node.name!r} is "
                            f"shared by every instance; initialise it in "
                            f"__init__ or use field(default_factory=...)",
                        ))
        return violations

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and not node.args and not node.keywords:
            name = node.func.id if isinstance(node.func, ast.Name) else None
            return name in self._MUTABLE_CALLS
        return False


class SwallowedException(Rule):
    """REPRO005: bare ``except:`` or handlers that silently discard the
    exception in record/replay and experiment-driver code.

    A swallowed exception turns a corrupted run into a silently wrong
    figure.  Handle a *specific* exception and act on it, or let it
    propagate.
    """

    id = "REPRO005"
    severity = "error"
    scopes = ("core/", "experiments/")
    description = ("bare except / silently swallowed exception; catch a "
                   "specific type and handle or re-raise it")

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                violations.append(self.violation(
                    node, path,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exception type",
                ))
            elif self._swallows(node):
                violations.append(self.violation(
                    node, path,
                    "exception handler silently discards the error; handle "
                    "it, log it, or re-raise",
                ))
        return violations

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Pass):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring / ellipsis
            return False
        return True


class WallClock(Rule):
    """REPRO006: wall-clock and filesystem-order nondeterminism in
    simulation paths.

    Simulated time is the only clock the simulator may read; host time and
    unsorted directory listings make runs non-reproducible.  The
    ``os.listdir``/``glob.glob`` case is autofixable by wrapping the call
    in ``sorted(...)``.
    """

    id = "REPRO006"
    severity = "error"
    autofixable = True
    #: ``server/`` and ``experiments/`` joined the scope with the
    #: simulate() migration: both now sit directly on the simulation path
    #: (stressors mutate hierarchy state; experiment builders are the
    #: engine's memoized cell bodies), so host-clock reads there are just
    #: as result-corrupting as inside ``sim/``.  ``fleet/`` joined with
    #: the region simulator: shard results are content-addressed cache
    #: entries, so any host-clock read there poisons the cache.
    #: ``coldstart/`` joined with the spectrum model: restore and init
    #: charges land inside memoized spectrum cells, so they must be pure
    #: arithmetic over profiles -- never host-time measurements.
    scopes = ("sim/", "core/", "analysis/", "workloads/", "engine/",
              "obs/", "server/", "experiments/", "fleet/", "coldstart/")
    description = ("wall-clock / nondeterministic call in a simulation "
                   "path; use simulated cycles and sorted listings")

    _CLOCK_CALLS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    })
    _LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        sorted_args = self._directly_sorted_calls(tree)
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in self._CLOCK_CALLS:
                violations.append(self.violation(
                    node, path,
                    f"{dotted}() reads host state; simulation code must "
                    f"use simulated cycles / seeded entropy",
                ))
            elif dotted in self._LISTING_CALLS and id(node) not in sorted_args:
                violations.append(self.violation(
                    node, path,
                    f"{dotted}() returns entries in filesystem order; wrap "
                    f"it in sorted(...)",
                    fixes=self._sorted_wrap_fixes(node),
                ))
        return violations

    @staticmethod
    def _directly_sorted_calls(tree: ast.Module) -> Set[int]:
        """ids of Call nodes appearing as the first arg of ``sorted(...)``."""
        wrapped: Set[int] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted" and node.args):
                wrapped.add(id(node.args[0]))
        return wrapped

    @staticmethod
    def _sorted_wrap_fixes(node: ast.Call) -> Tuple[TextEdit, ...]:
        if node.end_lineno is None or node.end_col_offset is None:
            return ()
        return (
            TextEdit(node.lineno, node.col_offset,
                     node.lineno, node.col_offset, "sorted("),
            TextEdit(node.end_lineno, node.end_col_offset,
                     node.end_lineno, node.end_col_offset, ")"),
        )


class BroadExceptInEngine(Rule):
    """REPRO007: broad exception handlers in sweep-engine code.

    The engine's failure semantics depend on errors reaching exactly one
    chokepoint: ``resilience.execute_task`` captures *everything* into a
    typed :class:`~repro.engine.resilience.JobError` so the taxonomy can
    classify it.  A broad ``except Exception`` (or bare ``except``, or
    ``except BaseException``) anywhere else in ``engine/`` would swallow
    failures before that capture, mis-counting stats and silently
    converting crashes into wrong results -- so ``resilience.py`` is the
    only file allowed to catch broadly.

    The observability layer (``obs/``) is held to the same bar: a tracer
    or summarizer that swallowed an error would report a clean run that
    was not.
    """

    id = "REPRO007"
    severity = "error"
    scopes = ("engine/", "obs/")
    excludes = ("engine/resilience.py",)
    description = ("broad except Exception / bare except in engine code; "
                   "only resilience.execute_task may capture broadly")

    _BROAD_NAMES = frozenset({"Exception", "BaseException"})

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                violations.append(self.violation(
                    node, path,
                    "bare except in engine code swallows failures before "
                    "the resilience layer can classify them; catch a "
                    "specific exception type",
                ))
                continue
            for name in self._broad_names_in(node.type):
                violations.append(self.violation(
                    node, path,
                    f"except {name} in engine code swallows failures "
                    f"before the resilience layer can classify them; "
                    f"catch a specific exception type (only "
                    f"engine/resilience.py may capture broadly)",
                ))
        return violations

    def _broad_names_in(self, type_node: ast.expr) -> List[str]:
        nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        names: List[str] = []
        for node in nodes:
            dotted = _dotted_name(node)
            if dotted is not None and dotted in self._BROAD_NAMES:
                names.append(dotted)
        return names


class GlobalObservability(Rule):
    """REPRO008: module-level tracer/metrics singletons.

    Observability state must be *injected*: a tracer or metrics registry
    constructed at module level is ambient global state -- two engine
    contexts would interleave their event streams, imports would mutate
    shared counters, and a test could never isolate the trace of the run
    under test.  Construct observability objects inside a context
    (``engine.configure``), a fixture, or a ``field(default_factory=...)``
    -- never at import time.

    Cold-start models are policed the same way: a
    :class:`~repro.coldstart.model.SpectrumColdStart` (and the
    :class:`PageReplayState`/:class:`SnapshotState` it owns) carries the
    recorded page trace as mutable per-instance state, so a module-level
    model shared across simulations would leak one run's working-set
    recording into the next and break cache soundness.
    """

    id = "REPRO008"
    severity = "error"
    description = ("module-level Tracer/MetricsRegistry/ColdStartModel "
                   "singleton; stateful collaborators must be injected "
                   "per context, not ambient global state")

    _OBS_FACTORIES = frozenset({
        "Tracer", "NullTracer", "MetricsRegistry", "MemorySink", "JsonlSink",
        # Cold-start model state (recorded page traces, snapshot images)
        # is per-simulation; module-level construction shares it.
        "ConstantColdStart", "SpectrumColdStart", "PageReplayState",
        "SnapshotState", "make_coldstart_model",
    })

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        # Only module-level statements are singleton definitions; the same
        # constructor inside a function, method, or field(default_factory=)
        # builds per-context state and is exactly what we want.
        for stmt in tree.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is None:
                continue
            for call in ast.walk(value):
                if not isinstance(call, ast.Call):
                    continue
                name = self._factory_name(call.func)
                if name is not None:
                    violations.append(self.violation(
                        call, path,
                        f"module-level {name}() creates an ambient "
                        f"stateful singleton; construct it inside an "
                        f"engine context, fixture, or default_factory "
                        f"instead",
                    ))
        return violations

    def _factory_name(self, func: ast.expr) -> Optional[str]:
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        leaf = dotted.rsplit(".", 1)[-1]
        return leaf if leaf in self._OBS_FACTORIES else None


class UnboundedBlockingWait(Rule):
    """REPRO011: argument-less blocking waits in engine code.

    The deadline guard (PR 8) can only bound a sweep in time if no code
    path under ``engine/`` can block forever between watchdog polls.  A
    zero-argument ``.wait()`` / ``.get()`` / ``.acquire()`` on a pool
    result, queue, event, or lock blocks indefinitely -- one wedged
    worker and the parent hangs with it, deadline or no deadline.  Every
    such wait must state its bound (``result.get(poll_interval)``) or
    make its blocking mode an explicit argument
    (``lock.acquire(blocking=True)``): passing *anything* proves the
    author chose the blocking behaviour instead of inheriting it.

    Only zero-argument calls are flagged, so ``dict.get(key)`` and
    friends never trip the rule.
    """

    id = "REPRO011"
    severity = "error"
    scopes = ("engine/",)
    description = ("argument-less .wait()/.get()/.acquire() blocks forever "
                   "and defeats the deadline guard; pass a timeout or an "
                   "explicit blocking mode")

    _BLOCKING_METHODS = frozenset({"wait", "get", "acquire"})

    def check(self, tree: ast.Module, source: str,
              path: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and not node.args
                    and not node.keywords
                    and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            if method not in self._BLOCKING_METHODS:
                continue
            violations.append(self.violation(
                node, path,
                f".{method}() with no arguments can block forever and "
                f"defeats the deadline guard; pass a timeout (e.g. "
                f".{method}(poll_interval)) or an explicit blocking mode",
            ))
        return violations


#: The registry walked by the engine and CLI, in id order.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomness(),
    FloatEquality(),
    MagicNumber(),
    MutableDefault(),
    SwallowedException(),
    WallClock(),
    BroadExceptInEngine(),
    GlobalObservability(),
    UnboundedBlockingWait(),
)


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by its ``REPRO00x`` id."""
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown lint rule {rule_id!r}")
