"""Grandfathered-finding baselines for incremental adoption of new rules.

A baseline file records the findings a repository has consciously decided
to live with (typically when a new rule lands against an existing tree).
The gate then fails only on findings *not* in the baseline, so new debt
cannot sneak in while old debt is paid down deliberately.

Fingerprints are **line-independent**: a finding is identified by its
rule id, its repo-relative path, and its message.  Inserting a line above
a grandfathered finding does not un-baseline it; changing the finding's
substance (message) or moving it to another file does.  Identical
findings in one file are counted -- a baseline entry with ``count: 2``
absorbs at most two occurrences, so adding a third identical violation
still fails.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Violation

#: Default committed baseline filename, resolved against the CWD.
DEFAULT_BASELINE = "lint-baseline.json"

_FORMAT_VERSION = 1


def _normalize_path(path: str) -> str:
    """Repo-relative POSIX path when possible, so fingerprints agree
    between absolute-path and relative-path invocations."""
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def fingerprint(violation: Violation) -> str:
    """Stable line-independent identity of one finding."""
    payload = "|".join([violation.rule_id,
                        _normalize_path(violation.path),
                        violation.message])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """An in-memory multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Dict[str, int] = None,
                 entries: Dict[str, Dict[str, str]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})
        #: Human-readable context per fingerprint (rule/path/message),
        #: kept so the committed file reviews meaningfully.
        self.entries: Dict[str, Dict[str, str]] = dict(entries or {})

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls.empty()
        doc = json.loads(path.read_text(encoding="utf-8"))
        counts: Dict[str, int] = {}
        entries: Dict[str, Dict[str, str]] = {}
        for fp, entry in doc.get("findings", {}).items():
            counts[fp] = int(entry.get("count", 1))
            entries[fp] = {k: entry[k] for k in ("rule", "path", "message")
                           if k in entry}
        return cls(counts, entries)

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        baseline = cls.empty()
        for violation in violations:
            fp = fingerprint(violation)
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
            baseline.entries.setdefault(fp, {
                "rule": violation.rule_id,
                "path": _normalize_path(violation.path),
                "message": violation.message,
            })
        return baseline

    def write(self, path: Path) -> None:
        findings = {}
        for fp in sorted(self.counts):
            entry = dict(self.entries.get(fp, {}))
            entry["count"] = self.counts[fp]
            findings[fp] = entry
        doc = {"version": _FORMAT_VERSION, "findings": findings}
        Path(path).write_text(json.dumps(doc, sort_keys=True, indent=2)
                              + "\n", encoding="utf-8")

    def partition(self, violations: Sequence[Violation]
                  ) -> Tuple[List[Violation], List[Violation]]:
        """Split findings into ``(fresh, grandfathered)``.

        Each baseline entry absorbs at most its recorded count, in the
        deterministic order violations arrive (path, line, rule).
        """
        budget = dict(self.counts)
        fresh: List[Violation] = []
        grandfathered: List[Violation] = []
        for violation in violations:
            fp = fingerprint(violation)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                grandfathered.append(violation)
            else:
                fresh.append(violation)
        return fresh, grandfathered

    def __len__(self) -> int:
        return sum(self.counts.values())
