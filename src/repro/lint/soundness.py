"""Whole-program soundness rules: cache keys (REPRO009) and worker
safety (REPRO010).

**REPRO009 -- cache-key soundness.**  A sweep cell's cache key embeds
:func:`repro.engine.job.code_version` (a digest of the simulation
subtrees) and :func:`repro.engine.job.provider_version` (a digest of the
provider module's import closure).  The rule recomputes each registered
provider's *static* import closure from the :class:`~repro.lint.graph
.ProjectGraph` and fails if any closure module escapes the union of the
``code_version()`` subtrees and the modules ``provider_version()``
actually digests: such a module could change without invalidating the
provider's memoized cells -- a silent stale-cache hazard.  Because the
engine side digests the analyzer-computed closure, the rule is a
cross-validation: it fires exactly when someone bypasses or narrows the
closure digest.

**REPRO010 -- worker safety.**  Objects crossing the
:class:`~repro.engine.executors.ProcessExecutor` pickle boundary (the
classes named by :data:`repro.engine.executors.PICKLE_BOUNDARY`) must not
carry unpicklable members (lambdas, open handles, locks, generators), and
worker-reachable code must not mutate module-level mutable state: each
pool worker has its own copy, so such mutations silently diverge between
serial and parallel runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Violation
from repro.lint.graph import (
    MUTABLE_CALLS,
    ModuleNode,
    ProjectGraph,
    dotted_name,
)


@dataclass(frozen=True)
class WholeProgramRule:
    """Registry descriptor for a whole-program rule (no per-file check)."""

    id: str
    severity: str
    description: str


REPRO009 = WholeProgramRule(
    id="REPRO009", severity="error",
    description=("cache-key soundness: every module in a provider's "
                 "import closure must be covered by code_version() or "
                 "digested by provider_version()"))

REPRO010 = WholeProgramRule(
    id="REPRO010", severity="error",
    description=("worker safety: no unpicklable members on classes "
                 "crossing the ProcessExecutor boundary; no module-level "
                 "mutable state mutated in worker-reachable code"))

WHOLE_PROGRAM_RULES: Tuple[WholeProgramRule, ...] = (REPRO009, REPRO010)

#: Decorator (last dotted component) that marks a function as a config
#: builder; the module defining it is a cache *provider*.
PROVIDER_DECORATOR = "register_config"

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault",
})

_UNPICKLABLE_CALLS = frozenset({
    "open",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Barrier",
})


def discover_providers(graph: ProjectGraph) -> Tuple[str, ...]:
    """Modules that register config builders (``@register_config``),
    plus the default provider module when it is part of the graph."""
    providers: Set[str] = set()
    for info in graph.functions().values():
        for dec in info.decorators:
            if dec.rsplit(".", 1)[-1] == PROVIDER_DECORATOR:
                providers.add(info.module)
    default = f"{graph.package}.experiments.common"
    if default in graph.modules:
        providers.add(default)
    return tuple(sorted(providers))


def _default_covered_prefixes(graph: ProjectGraph) -> Tuple[str, ...]:
    """Module-name prefixes covered by the engine's code_version()."""
    if graph.package != "repro":
        return ()
    from repro.engine import job as _job

    prefixes = tuple(f"repro.{subtree}" for subtree in _job._CODE_SUBTREES)
    files = tuple(
        "repro." + name[:-3].replace("/", ".") if name.endswith(".py")
        else "repro." + name.replace("/", ".")
        for name in _job._CODE_FILES)
    return prefixes + files


def _covered(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def check_cache_soundness(
        graph: ProjectGraph,
        providers: Optional[Sequence[str]] = None,
        covered_prefixes: Optional[Sequence[str]] = None,
        digested: Optional[Callable[[str], Iterable[str]]] = None,
) -> List[Violation]:
    """REPRO009: audit provider closures against the engine's digests.

    ``digested(provider)`` must return the module names whose sources the
    engine folds into ``provider_version(provider)``; it defaults to
    :func:`repro.engine.job.provider_closure`, making the default run a
    cross-validation of the real engine.  Tests pass a narrowed function
    (e.g. single-file digests) to prove the rule catches the hazard.
    """
    if providers is None:
        providers = discover_providers(graph)
    if covered_prefixes is None:
        covered_prefixes = _default_covered_prefixes(graph)
    if digested is None:
        from repro.engine.job import provider_closure as digested

    violations: List[Violation] = []
    for provider in providers:
        if provider not in graph.modules:
            continue
        closure = graph.closure(provider)
        digested_set = set(digested(provider))
        for module in closure:
            if _covered(module, covered_prefixes):
                continue
            if module in digested_set:
                continue
            node = graph.modules[provider]
            violations.append(Violation(
                rule_id=REPRO009.id,
                severity=REPRO009.severity,
                path=str(node.path),
                line=1,
                col=0,
                message=(f"cache-key soundness: provider {provider!r} "
                         f"depends on {module!r}, which is neither in a "
                         f"code_version() subtree nor digested by "
                         f"provider_version(); editing it would leave "
                         f"{provider!r}'s cached cells stale"),
            ))
    return violations


def _default_boundary(graph: ProjectGraph) -> Tuple[str, ...]:
    if graph.package != "repro":
        return ()
    from repro.engine.executors import PICKLE_BOUNDARY
    return PICKLE_BOUNDARY


def check_worker_safety(
        graph: ProjectGraph,
        boundary: Optional[Sequence[str]] = None,
        entries: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """REPRO010: pickle-boundary classes and worker-visible module state."""
    if boundary is None:
        boundary = _default_boundary(graph)
    violations: List[Violation] = []
    violations.extend(_check_boundary_classes(graph, boundary))
    violations.extend(_check_module_state_mutation(graph, entries))
    violations.sort(key=lambda v: (v.path, v.line, v.col))
    return violations


def _check_boundary_classes(graph: ProjectGraph,
                            boundary: Sequence[str]) -> List[Violation]:
    violations: List[Violation] = []
    table = graph.functions()
    for spec in boundary:
        module_name, _, qualname = spec.partition(":")
        info = table.get(f"{module_name}:{qualname}")
        if info is None or not isinstance(info.node, ast.ClassDef):
            continue
        module = graph.modules[module_name]
        for value, what in _member_values(info.node):
            reason = _unpicklable_reason(module, value)
            if reason is not None:
                violations.append(Violation(
                    rule_id=REPRO010.id, severity=REPRO010.severity,
                    path=str(module.path), line=value.lineno,
                    col=value.col_offset,
                    message=(f"worker safety: {what} of {qualname!r} is "
                             f"{reason}, but instances of {qualname!r} "
                             f"cross the ProcessExecutor pickle boundary"),
                ))
    return violations


def _member_values(cls: ast.ClassDef):
    """(value expression, description) pairs for class members."""
    for stmt in cls.body:
        value = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        if value is not None:
            yield value, "a class attribute"
        if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            yield sub.value, \
                                f"instance attribute {target.attr!r}"


def _unpicklable_reason(module: ModuleNode,
                        value: ast.expr) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda (unpicklable)"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression (unpicklable)"
    if isinstance(value, ast.Call):
        # field(default_factory=...) values are built per instance; the
        # factory itself never crosses the boundary -- but a *default*
        # that is itself unpicklable does.
        dotted = dotted_name(value.func)
        if dotted is not None:
            canonical = _canonical(module, dotted)
            if canonical in _UNPICKLABLE_CALLS:
                return f"a {canonical}() value (unpicklable)"
        for kw in value.keywords:
            if kw.arg == "default" and isinstance(kw.value, ast.Lambda):
                return "a lambda default (unpicklable)"
    return None


def _canonical(module: ModuleNode, dotted: str) -> str:
    parts = dotted.split(".")
    binding = module.bindings.get(parts[0])
    if binding is None:
        return dotted
    if binding.attr is None:
        return ".".join([binding.module] + parts[1:])
    return ".".join([binding.module, binding.attr] + parts[1:])


def _module_mutables(node: ModuleNode) -> Set[str]:
    """Names of module-level assignments holding mutable containers."""
    mutables: Set[str] = set()
    for stmt in node.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_expr(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


def _is_mutable_expr(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = value.func.id if isinstance(value.func, ast.Name) else None
        return name in MUTABLE_CALLS
    return False


def _worker_reachable(graph: ProjectGraph,
                      entries: Optional[Sequence[str]]) -> Set[str]:
    from repro.lint import flow

    table = graph.functions()
    entry_ids = (flow.resolve_entries(graph) if entries is None
                 else flow.resolve_entries(graph, entries))
    reachable: Set[str] = set()
    stack = list(entry_ids)
    while stack:
        fid = stack.pop()
        if fid in reachable or fid not in table:
            continue
        reachable.add(fid)
        stack.extend(sorted(table[fid].calls))
    return reachable


def _check_module_state_mutation(
        graph: ProjectGraph,
        entries: Optional[Sequence[str]]) -> List[Violation]:
    mutables_by_module = {name: _module_mutables(node)
                          for name, node in graph.modules.items()}
    table = graph.functions()
    violations: List[Violation] = []
    for fid in sorted(_worker_reachable(graph, entries)):
        info = table[fid]
        module = graph.modules[info.module]
        local_names = _locally_bound_names(info.node)
        for name, line, how in _mutations_in(info.node, module,
                                             mutables_by_module):
            if name in local_names:
                continue  # shadowed by a local binding; not module state
            violations.append(Violation(
                rule_id=REPRO010.id, severity=REPRO010.severity,
                path=str(module.path), line=line, col=0,
                message=(f"worker safety: {info.qualname!r} is reachable "
                         f"from the worker entry points and {how} "
                         f"module-level mutable {name!r}; each pool "
                         f"worker mutates its own copy, so serial and "
                         f"parallel runs silently diverge"),
            ))
    return violations


def _locally_bound_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(child, ast.AnnAssign):
            if isinstance(child.target, ast.Name):
                names.add(child.target.id)
    # `global X` declarations un-shadow: mutations hit module state.
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            names.difference_update(child.names)
    return names


def _mutations_in(node: ast.AST, module: ModuleNode,
                  mutables_by_module: Dict[str, Set[str]]):
    """Yield ``(module_level_name, lineno, verb)`` mutation witnesses."""
    own = mutables_by_module.get(module.name, set())

    def classify_target(expr: ast.expr) -> Optional[str]:
        # NAME[...] or NAME.method style bases; also alias.NAME for
        # imported-module attributes.
        if isinstance(expr, ast.Name) and expr.id in own:
            return expr.id
        if isinstance(expr, ast.Attribute) and isinstance(expr.value,
                                                          ast.Name):
            binding = module.bindings.get(expr.value.id)
            if binding is None:
                return None
            # `import pkg.state as state` binds the module directly;
            # `from pkg import state` binds ("pkg", "state") -- treat it
            # as module-valued when pkg.state is a known module.
            if binding.attr is None:
                bound = binding.module
            else:
                bound = f"{binding.module}.{binding.attr}"
            if bound in mutables_by_module:
                remote = mutables_by_module[bound]
                if expr.attr in remote:
                    return f"{bound}.{expr.attr}"
        return None

    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS):
                name = classify_target(func.value)
                if name is not None:
                    yield name, child.lineno, f"calls .{func.attr}() on"
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (child.targets if isinstance(child, ast.Assign)
                       else [child.target])
            for target in targets:
                if isinstance(target, ast.Subscript):
                    name = classify_target(target.value)
                    if name is not None:
                        yield name, child.lineno, "stores into"
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(target, ast.Subscript):
                    name = classify_target(target.value)
                    if name is not None:
                        yield name, child.lineno, "deletes from"
